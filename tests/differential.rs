//! Differential tests: every mapper in the workspace, run over a seeded
//! grid of QUEKO circuits and three device topologies, must (a) produce a
//! routing the independent verifier accepts, (b) preserve the original
//! gate multiset exactly (modulo inserted SWAPs and qubit relabeling),
//! and (c) — for the batch engine — produce *identical* results whether
//! the roster runs on one thread or four (determinism under parallelism).

use circuit::{verify_routing, Circuit, GateKind};
use engine::{BatchEngine, MapJob};
use qlosure::Mapper;
use std::sync::Arc;
use topology::{backends, CouplingGraph};

/// The seeded instance grid: 2 depths × 2 seeds of QUEKO traffic
/// generated for a 16-qubit Aspen-style device.
fn queko_grid() -> Vec<(String, Circuit)> {
    let gen_device = backends::aspen16();
    let mut out = Vec::new();
    for depth in [30, 60] {
        for seed in 0..2u64 {
            let bench = queko::QuekoSpec::new(&gen_device, depth)
                .seed(seed)
                .generate();
            out.push((format!("queko16-d{depth}-s{seed}"), bench.circuit));
        }
    }
    out
}

/// The three target topologies of the differential sweep: heavy-hex,
/// square lattice and an 8-neighbour king grid — different degrees,
/// diameters and routing pressure.
fn devices() -> Vec<CouplingGraph> {
    vec![
        backends::sherbrooke(),
        backends::ankaa3(),
        backends::king_grid(5, 5),
    ]
}

/// The evaluation roster, shared with the bench harness so a mapper added
/// there automatically enters the differential sweep too.
fn mappers() -> Vec<Box<dyn Mapper + Send + Sync>> {
    bench_support::all_mappers()
}

/// The multiset of non-SWAP operations as sortable fingerprints: gate
/// kind, parameter bits and arity. Routing permutes qubit operands and
/// inserts SWAPs but must never drop, duplicate or alter a logical gate.
fn gate_multiset(c: &Circuit) -> Vec<(String, Vec<u64>, usize)> {
    let mut out: Vec<(String, Vec<u64>, usize)> = c
        .gates()
        .iter()
        .filter(|g| g.kind != GateKind::Swap)
        .map(|g| {
            (
                g.kind.name().to_string(),
                g.params.iter().map(|p| p.to_bits()).collect(),
                g.qubits.len(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn every_mapper_verifies_and_preserves_gates_on_the_grid() {
    for device in devices() {
        for (label, circuit) in queko_grid() {
            let original = gate_multiset(&circuit);
            assert!(
                circuit.gates().iter().all(|g| g.kind != GateKind::Swap),
                "{label}: grid circuits must be swap-free for the multiset check"
            );
            for mapper in mappers() {
                let r = mapper.map(&circuit, &device);
                verify_routing(
                    &circuit,
                    &r.routed,
                    &|a, b| device.is_adjacent(a, b),
                    &r.initial_layout,
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "{} failed verification on {label}/{}: {e}",
                        mapper.name(),
                        device.name()
                    )
                });
                assert_eq!(
                    gate_multiset(&r.routed),
                    original,
                    "{} altered the gate multiset on {label}/{}",
                    mapper.name(),
                    device.name()
                );
                let swap_count = r
                    .routed
                    .gates()
                    .iter()
                    .filter(|g| g.kind == GateKind::Swap)
                    .count();
                assert_eq!(
                    swap_count,
                    r.swaps,
                    "{} misreported its swap count on {label}/{}",
                    mapper.name(),
                    device.name()
                );
            }
        }
    }
}

/// Builds the engine roster: every grid instance × every mapper on one
/// mid-sized device.
fn roster() -> Vec<MapJob> {
    let device = Arc::new(backends::ankaa3());
    let mut jobs = Vec::new();
    for (label, circuit) in queko_grid() {
        let circuit = Arc::new(circuit);
        for mapper in mappers() {
            jobs.push(MapJob {
                label: format!("{label}-{}", mapper.name()),
                circuit: circuit.clone(),
                device: device.clone(),
                mapper: Arc::from(mapper),
            });
        }
    }
    jobs
}

#[test]
fn engine_results_are_identical_at_one_and_four_threads() {
    let one = BatchEngine::with_threads(1).run_jobs(roster());
    let four = BatchEngine::with_threads(4).run_jobs(roster());
    assert_eq!(one.jobs.len(), four.jobs.len());
    assert_eq!(one.threads, 1);
    assert_eq!(four.threads, 4);
    for (a, b) in one.jobs.iter().zip(&four.jobs) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.label, b.label);
        // The full MappingResult — routed circuit, both layouts and the
        // swap count — must be identical, not merely equivalent.
        assert_eq!(
            a.result, b.result,
            "job {} diverged across thread counts",
            a.label
        );
        assert_eq!((a.swaps, a.depth), (b.swaps, b.depth));
    }
}

#[test]
fn engine_single_thread_matches_direct_sequential_mapping() {
    // ENGINE_THREADS=1 must reproduce today's sequential results
    // bit-for-bit: the engine adds no RNG, reordering or state of its own.
    let report = BatchEngine::with_threads(1).run_jobs(roster());
    let mut direct = Vec::new();
    let device = backends::ankaa3();
    for (_, circuit) in queko_grid() {
        for mapper in mappers() {
            direct.push(mapper.map(&circuit, &device));
        }
    }
    assert_eq!(report.jobs.len(), direct.len());
    for (job, expected) in report.jobs.iter().zip(&direct) {
        assert_eq!(
            job.result, *expected,
            "engine diverged from sequential on {}",
            job.label
        );
    }
}
