//! Integration suite for the hierarchical partitioned mapper.
//!
//! Mirrors the differential suite's guarantees for `HierMapper`: routed
//! outputs verify and preserve the gate multiset on the differential
//! device roster, results are identical whether the engine runs the
//! roster on one thread or four, and the fragment memo is semantically
//! invisible — a warm (memoized) run is bit-for-bit the cold run.

use circuit::{verify_routing, Circuit, GateKind};
use engine::{BatchEngine, MapJob};
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use std::sync::Arc;
use topology::{backends, CouplingGraph};

/// The seeded instance grid of the differential suite: 2 depths × 2
/// seeds of QUEKO traffic generated for a 16-qubit Aspen-style device.
fn queko_grid() -> Vec<(String, Circuit)> {
    let gen_device = backends::aspen16();
    let mut out = Vec::new();
    for depth in [30, 60] {
        for seed in 0..2u64 {
            let bench = queko::QuekoSpec::new(&gen_device, depth)
                .seed(seed)
                .generate();
            out.push((format!("queko16-d{depth}-s{seed}"), bench.circuit));
        }
    }
    out
}

/// The differential target topologies plus a parametric square grid (the
/// hierarchy's structured fast path).
fn devices() -> Vec<CouplingGraph> {
    vec![
        backends::sherbrooke(),
        backends::ankaa3(),
        backends::king_grid(5, 5),
        backends::by_name("grid:6x6").expect("parametric grid resolves"),
    ]
}

/// Gate multiset modulo SWAPs and qubit relabeling (the differential
/// suite's preservation fingerprint).
fn gate_multiset(c: &Circuit) -> Vec<(String, Vec<u64>, usize)> {
    let mut out: Vec<(String, Vec<u64>, usize)> = c
        .gates()
        .iter()
        .filter(|g| g.kind != GateKind::Swap)
        .map(|g| {
            (
                g.kind.name().to_string(),
                g.params.iter().map(|p| p.to_bits()).collect(),
                g.qubits.len(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn hier_verifies_and_preserves_gates_on_the_differential_roster() {
    let mapper = HierMapper::default();
    for device in devices() {
        for (label, circuit) in queko_grid() {
            let original = gate_multiset(&circuit);
            let r = mapper.map(&circuit, &device);
            verify_routing(
                &circuit,
                &r.routed,
                &|a, b| device.is_adjacent(a, b),
                &r.initial_layout,
            )
            .unwrap_or_else(|e| {
                panic!("hier failed verification on {label}/{}: {e}", device.name())
            });
            assert_eq!(
                gate_multiset(&r.routed),
                original,
                "hier altered the gate multiset on {label}/{}",
                device.name()
            );
            let swap_count = r
                .routed
                .gates()
                .iter()
                .filter(|g| g.kind == GateKind::Swap)
                .count();
            assert_eq!(
                swap_count,
                r.swaps,
                "hier misreported its swap count on {label}/{}",
                device.name()
            );
        }
    }
}

#[test]
fn hier_vs_flat_agree_on_the_circuit_they_route() {
    // Flat and hier disagree on SWAP placement, never on the logical
    // computation: same multiset, both verified, on the same instance.
    let device = backends::ankaa3();
    let flat = QlosureMapper::default();
    let hier = HierMapper::default();
    for (label, circuit) in queko_grid() {
        let rf = flat.map(&circuit, &device);
        let rh = hier.map(&circuit, &device);
        assert_eq!(
            gate_multiset(&rf.routed),
            gate_multiset(&rh.routed),
            "{label}: flat and hier must route the same computation"
        );
        for r in [&rf, &rh] {
            verify_routing(
                &circuit,
                &r.routed,
                &|a, b| device.is_adjacent(a, b),
                &r.initial_layout,
            )
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// The hier engine roster: every grid instance on two devices.
fn roster() -> Vec<MapJob> {
    let mut jobs = Vec::new();
    for device in [
        Arc::new(backends::ankaa3()),
        Arc::new(backends::by_name("grid:6x6").expect("grid resolves")),
    ] {
        for (label, circuit) in queko_grid() {
            jobs.push(MapJob {
                label: format!("{label}-hier-{}", device.name()),
                circuit: Arc::new(circuit),
                device: device.clone(),
                mapper: Arc::new(HierMapper::default()),
            });
        }
    }
    jobs
}

#[test]
fn hier_engine_results_are_identical_at_one_and_four_threads() {
    // The fragment memo is shared across worker threads; results must
    // not depend on which thread computed (or reused) a plan.
    let one = BatchEngine::with_threads(1).run_jobs(roster());
    let four = BatchEngine::with_threads(4).run_jobs(roster());
    assert_eq!(one.jobs.len(), four.jobs.len());
    for (a, b) in one.jobs.iter().zip(&four.jobs) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.result, b.result,
            "hier job {} diverged across thread counts",
            a.label
        );
    }
}

#[test]
fn hier_warm_memo_run_is_bit_for_bit_the_cold_run() {
    // Unique instance (distinct seed) so this test owns its fragments.
    let gen_device = backends::aspen16();
    let bench = queko::QuekoSpec::new(&gen_device, 45).seed(77).generate();
    let device = backends::by_name("grid:6x6").expect("grid resolves");
    let mapper = HierMapper::default();
    let (hits_before, _) = hier::subroute_memo_stats();
    let cold = mapper.map(&bench.circuit, &device);
    let warm = mapper.map(&bench.circuit, &device);
    assert_eq!(cold, warm, "memoized rerun must be bit-for-bit identical");
    let (hits_after, _) = hier::subroute_memo_stats();
    assert!(
        hits_after > hits_before,
        "the second run must replay at least one memoized fragment"
    );
    verify_routing(
        &bench.circuit,
        &cold.routed,
        &|a, b| device.is_adjacent(a, b),
        &cold.initial_layout,
    )
    .expect("hier routing verifies");
}

#[test]
fn hier_pipeline_reports_per_pass_timings() {
    let device = backends::by_name("grid:6x6").expect("grid resolves");
    let gen_device = backends::aspen16();
    let bench = queko::QuekoSpec::new(&gen_device, 30).seed(3).generate();
    let timed = qlosure::run_mapper_timed(&HierMapper::default(), &bench.circuit, &device);
    assert_eq!(
        timed.pipeline,
        "weights → regions → hier-layout → hier-route"
    );
    let labels: Vec<&str> = timed.passes.iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "analysis:weights",
            "analysis:regions",
            "layout:hier-layout",
            "routing:hier-route",
        ]
    );
}
