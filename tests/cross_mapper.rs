//! Cross-mapper integration tests: every mapper in the workspace produces
//! verified routings on shared workloads, and the relative quality
//! ordering the paper reports holds in aggregate.

use baselines::{CirqMapper, QmapMapper, SabreMapper, TketMapper};
use circuit::{verify_routing, Circuit};
use qlosure::{Mapper, QlosureMapper};
use topology::{backends, CouplingGraph};

fn mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(SabreMapper::default()),
        Box::new(QmapMapper::default()),
        Box::new(CirqMapper::default()),
        Box::new(TketMapper::default()),
        Box::new(QlosureMapper::default()),
    ]
}

fn check_all(circuit: &Circuit, device: &CouplingGraph) -> Vec<(String, usize, usize)> {
    mappers()
        .iter()
        .map(|m| {
            let r = m.map(circuit, device);
            verify_routing(
                circuit,
                &r.routed,
                &|a, b| device.is_adjacent(a, b),
                &r.initial_layout,
            )
            .unwrap_or_else(|e| panic!("{} failed verification: {e}", m.name()));
            (m.name().to_string(), r.swaps, r.routed.depth())
        })
        .collect()
}

#[test]
fn every_mapper_verifies_on_queko() {
    let gen_device = backends::aspen16();
    let device = backends::ankaa3();
    let bench = queko::QuekoSpec::new(&gen_device, 80).seed(2).generate();
    let rows = check_all(&bench.circuit, &device);
    assert_eq!(rows.len(), 5);
}

#[test]
fn every_mapper_verifies_on_qasmbench_families() {
    let device = backends::sherbrooke();
    for circuit in [
        qasmbench::ghz(23),
        qasmbench::bernstein_vazirani(30),
        qasmbench::w_state(27),
        qasmbench::swap_test(25),
    ] {
        check_all(&circuit, &device);
    }
}

#[test]
fn qlosure_wins_queko_swaps_in_aggregate() {
    // The paper's Table III: every baseline inserts more SWAPs than
    // Qlosure on QUEKO, on average. Check the aggregate over a few
    // instances (individual instances may vary).
    let gen_device = backends::sycamore54();
    let device = backends::sherbrooke();
    let mut totals: std::collections::HashMap<String, usize> = Default::default();
    for seed in 0..2 {
        let bench = queko::QuekoSpec::new(&gen_device, 80).seed(seed).generate();
        for (name, swaps, _) in check_all(&bench.circuit, &device) {
            *totals.entry(name).or_default() += swaps;
        }
    }
    let qlosure = totals["qlosure"];
    for (name, swaps) in &totals {
        if name != "qlosure" {
            assert!(
                *swaps as f64 >= qlosure as f64 * 0.95,
                "{name} beat qlosure on aggregate swaps: {swaps} vs {qlosure}"
            );
        }
    }
}

#[test]
fn mappers_handle_single_qubit_only_circuits() {
    let device = backends::line(4);
    let mut c = Circuit::new(3);
    c.h(0);
    c.rz(0.5, 1);
    c.measure_all();
    for (name, swaps, _) in check_all(&c, &device) {
        assert_eq!(swaps, 0, "{name} inserted swaps in a 1q-only circuit");
    }
}

#[test]
fn mappers_handle_empty_circuit() {
    let device = backends::line(3);
    let c = Circuit::new(2);
    for (_, swaps, depth) in check_all(&c, &device) {
        assert_eq!(swaps, 0);
        assert_eq!(depth, 0);
    }
}

#[test]
fn mappers_handle_full_connectivity() {
    // On a complete graph nothing ever needs routing.
    let device = backends::complete(8);
    let circuit = qasmbench::qft(8);
    for (name, swaps, _) in check_all(&circuit, &device) {
        assert_eq!(swaps, 0, "{name} inserted swaps on a complete graph");
    }
}

#[test]
fn ring_worst_case_terminates_for_everyone() {
    // Diametrically opposed pairs on a ring: the adversarial case for
    // greedy routers (every swap looks equally good).
    let device = backends::ring(12);
    let mut c = Circuit::new(12);
    for i in 0..6u32 {
        c.cx(i, i + 6);
    }
    check_all(&c, &device);
}
