//! Golden-equivalence suite for the pass-pipeline refactor.
//!
//! The `reference` module below is a **frozen copy of the pre-refactor
//! routing code**: the monolithic Qlosure loop (`router.rs` as of PR 2)
//! and the four baseline loops with their shared `RouterState`, rebuilt
//! verbatim on the public primitives (`Layout`, `SwapCost`,
//! `DependenceGraph`, `DependenceAnalysis`, the vendored `rand`). Every
//! pipeline-composed mapper must reproduce these results **bit-for-bit**
//! — same routed gates, same layouts, same swap counts — across the
//! differential-test roster, both when called directly and through the
//! batch engine at 1 and 4 threads.
//!
//! If a change to the pass pipeline or `RoutingState` alters any mapper's
//! output, this suite is the tripwire: either the change is a bug, or it
//! is an intentional algorithm change and the frozen reference must be
//! updated *in the same PR* with a note in CHANGES.md.

use circuit::Circuit;
use engine::{BatchEngine, MapJob};
use qlosure::Mapper;
use std::sync::Arc;
use topology::{backends, CouplingGraph};

/// The pre-refactor implementations, frozen.
mod reference {
    use affine::{DependenceAnalysis, WeightMode};
    use circuit::{Circuit, DependenceGraph, Gate};
    use qlosure::{CostVariant, Layout, MappingResult, OmegaScaling, ScoredGate, SwapCost};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    use topology::{CouplingGraph, DistanceMatrix};

    // ---------------- Qlosure (monolithic route loop) ----------------

    pub struct QlosureParams {
        pub cost: CostVariant,
        pub omega_smoothing: u64,
        pub omega_scaling: OmegaScaling,
        pub future_weight: f64,
        pub weight_mode: WeightMode,
        pub decay_delta: f64,
        pub lookahead_margin: usize,
        pub seed: u64,
        pub stall_slack: usize,
        pub busy_weight: f64,
        pub tie_epsilon: f64,
    }

    impl Default for QlosureParams {
        fn default() -> Self {
            QlosureParams {
                cost: CostVariant::DependencyWeighted,
                omega_smoothing: 1,
                omega_scaling: OmegaScaling::Linear,
                future_weight: 0.25,
                weight_mode: WeightMode::Auto,
                decay_delta: 0.001,
                lookahead_margin: 1,
                seed: 0xC105,
                stall_slack: 16,
                busy_weight: 0.05,
                tie_epsilon: 0.005,
            }
        }
    }

    pub fn qlosure(circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let params = QlosureParams::default();
        let analysis = DependenceAnalysis::new(circuit, params.weight_mode);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        let dist = device.shared_distances();
        route(
            circuit,
            device,
            &dist,
            analysis.weights(),
            layout,
            &params,
            &mut rng,
        )
    }

    struct Window {
        gates: Vec<ScoredGate>,
        front_logicals: Vec<u32>,
    }

    #[allow(clippy::too_many_arguments)]
    fn route(
        circuit: &Circuit,
        device: &CouplingGraph,
        dist: &DistanceMatrix,
        weights: &[u64],
        mut layout: Layout,
        config: &QlosureParams,
        rng: &mut StdRng,
    ) -> MappingResult {
        let dag = DependenceGraph::new(circuit);
        let n_gates = circuit.gates().len();
        let mut indeg = dag.in_degrees();
        let mut front: Vec<u32> = dag.initial_front();
        let mut routed = Circuit::with_capacity(device.n_qubits(), n_gates + n_gates / 4);
        let initial_layout = layout.as_assignment().to_vec();
        let mut decay = vec![1.0f64; device.n_qubits()];
        let mut clock = vec![0u32; device.n_qubits()];
        let mut clock_max = 0u32;
        let cost = SwapCost::with_scaling(
            config.cost,
            config.omega_smoothing,
            config.omega_scaling,
            config.future_weight,
        );
        let c_const = device.max_degree() + config.lookahead_margin.max(1);
        let stall_limit = 3 * dist.diameter() as usize + config.stall_slack;
        let mut stall = 0usize;
        let mut swaps = 0usize;

        let executable = |gate: &Gate, layout: &Layout| -> bool {
            match gate.qubit_pair() {
                Some((a, b)) => device.is_adjacent(layout.phys(a), layout.phys(b)),
                None => true,
            }
        };

        while !front.is_empty() {
            let mut ready: Vec<u32> = front
                .iter()
                .copied()
                .filter(|&g| executable(&circuit.gates()[g as usize], &layout))
                .collect();
            if !ready.is_empty() {
                ready.sort_unstable();
                for &g in &ready {
                    let gate = &circuit.gates()[g as usize];
                    emit_mapped(&mut routed, gate, &layout);
                    advance_clock(&mut clock, &mut clock_max, gate, &layout);
                }
                front.retain(|g| !ready.contains(g));
                for &g in &ready {
                    for &s in dag.succs(g) {
                        indeg[s as usize] -= 1;
                        if indeg[s as usize] == 0 {
                            front.push(s);
                        }
                    }
                }
                decay.fill(1.0);
                stall = 0;
                continue;
            }
            let window = build_window(circuit, &dag, &front, &indeg, weights, c_const);
            let candidates = swap_candidates(&window, &layout, device);
            let busy = |p: u32| -> f64 {
                if clock_max == 0 {
                    0.0
                } else {
                    config.busy_weight * f64::from(clock[p as usize]) / f64::from(clock_max)
                }
            };
            let mut scored: Vec<((u32, u32), f64)> = Vec::with_capacity(candidates.len());
            let mut best_score = f64::INFINITY;
            for &(p1, p2) in &candidates {
                layout.apply_swap(p1, p2);
                let d1 = decay[p1 as usize] + busy(p1);
                let d2 = decay[p2 as usize] + busy(p2);
                let score = cost.score(&window.gates, &layout, dist, d1.max(d2));
                layout.apply_swap(p1, p2); // undo
                best_score = best_score.min(score);
                scored.push(((p1, p2), score));
            }
            let front_sum = |layout: &Layout| -> u32 {
                window
                    .gates
                    .iter()
                    .filter(|g| g.layer <= 1)
                    .map(|g| u32::from(dist.get(layout.phys(g.q1), layout.phys(g.q2))))
                    .sum()
            };
            let base_front = front_sum(&layout);
            let cutoff = best_score + best_score.abs() * config.tie_epsilon + 1e-9;
            let mut best: Vec<(u32, u32)> = Vec::new();
            let mut best_key = (false, u32::MAX);
            for &((p1, p2), score) in &scored {
                if score > cutoff {
                    continue;
                }
                layout.apply_swap(p1, p2);
                let progress = front_sum(&layout) < base_front;
                layout.apply_swap(p1, p2);
                let done = clock[p1 as usize].max(clock[p2 as usize]) + 1;
                let key = (progress, done);
                let better = match (key.0, best_key.0) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => done < best_key.1,
                };
                if better {
                    best_key = key;
                    best.clear();
                    best.push((p1, p2));
                } else if key == best_key {
                    best.push((p1, p2));
                }
            }
            let (p1, p2) = best[rng.random_range(0..best.len())];
            routed.swap(p1, p2);
            layout.apply_swap(p1, p2);
            let done = clock[p1 as usize].max(clock[p2 as usize]) + 1;
            clock[p1 as usize] = done;
            clock[p2 as usize] = done;
            clock_max = clock_max.max(done);
            decay[p1 as usize] += config.decay_delta;
            decay[p2 as usize] += config.decay_delta;
            swaps += 1;
            stall += 1;
            if stall > stall_limit {
                let &g = front
                    .iter()
                    .max_by_key(|&&g| weights.get(g as usize).copied().unwrap_or(0))
                    .expect("front non-empty");
                let (a, b) = circuit.gates()[g as usize]
                    .qubit_pair()
                    .expect("blocked gates are two-qubit");
                let (pa, pb) = (layout.phys(a), layout.phys(b));
                let path = device
                    .shortest_path(pa, pb)
                    .expect("device must be connected");
                for win in path.windows(2).take(path.len().saturating_sub(2)) {
                    routed.swap(win[0], win[1]);
                    layout.apply_swap(win[0], win[1]);
                    let done = clock[win[0] as usize].max(clock[win[1] as usize]) + 1;
                    clock[win[0] as usize] = done;
                    clock[win[1] as usize] = done;
                    clock_max = clock_max.max(done);
                    swaps += 1;
                }
                decay.fill(1.0);
                stall = 0;
            }
        }
        let final_layout = layout.as_assignment().to_vec();
        MappingResult {
            routed,
            initial_layout,
            final_layout,
            swaps,
        }
    }

    fn emit_mapped(routed: &mut Circuit, gate: &Gate, layout: &Layout) {
        let mapped = Gate {
            kind: gate.kind.clone(),
            qubits: gate.qubits.iter().map(|&q| layout.phys(q)).collect(),
            params: gate.params.clone(),
        };
        routed.push(mapped);
    }

    fn advance_clock(clock: &mut [u32], clock_max: &mut u32, gate: &Gate, layout: &Layout) {
        if gate.qubits.is_empty() {
            return;
        }
        let ready = gate
            .qubits
            .iter()
            .map(|&q| clock[layout.phys(q) as usize])
            .max()
            .expect("non-empty");
        let dur = u32::from(gate.is_scheduled());
        let done = ready + dur;
        for &q in &gate.qubits {
            clock[layout.phys(q) as usize] = done;
        }
        *clock_max = (*clock_max).max(done);
    }

    fn build_window(
        circuit: &Circuit,
        dag: &DependenceGraph,
        front: &[u32],
        indeg: &[u32],
        weights: &[u64],
        c_const: usize,
    ) -> Window {
        let mut gates: Vec<ScoredGate> = Vec::new();
        let mut front_logicals: Vec<u32> = Vec::new();
        let mut layer: Vec<u32> = vec![0; dag.n_gates()];
        let mut visited: Vec<bool> = vec![false; dag.n_gates()];
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        for &g in front {
            visited[g as usize] = true;
            heap.push(Reverse(g));
        }
        let nf = {
            let mut qs: Vec<u32> = front
                .iter()
                .filter_map(|&g| circuit.gates()[g as usize].qubit_pair())
                .flat_map(|(a, b)| [a, b])
                .collect();
            qs.sort_unstable();
            qs.dedup();
            qs.len()
        };
        let k = c_const * nf.max(1);
        let mut collected = 0usize;
        while let Some(Reverse(g)) = heap.pop() {
            let gate = &circuit.gates()[g as usize];
            let is_front = indeg[g as usize] == 0;
            let l = if is_front {
                u32::from(gate.is_two_qubit())
            } else {
                let base = dag
                    .preds(g)
                    .iter()
                    .map(|&p| layer[p as usize])
                    .max()
                    .unwrap_or(0);
                base + u32::from(gate.is_two_qubit())
            };
            layer[g as usize] = l;
            if let Some((a, b)) = gate.qubit_pair() {
                gates.push(ScoredGate {
                    q1: a,
                    q2: b,
                    omega: weights.get(g as usize).copied().unwrap_or(0),
                    layer: l,
                });
                if is_front {
                    front_logicals.push(a);
                    front_logicals.push(b);
                } else {
                    collected += 1;
                    if collected >= k {
                        break;
                    }
                }
            }
            for &s in dag.succs(g) {
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    heap.push(Reverse(s));
                }
            }
        }
        front_logicals.sort_unstable();
        front_logicals.dedup();
        Window {
            gates,
            front_logicals,
        }
    }

    fn swap_candidates(
        window: &Window,
        layout: &Layout,
        device: &CouplingGraph,
    ) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for &l in &window.front_logicals {
            let p1 = layout.phys(l);
            for &p2 in device.neighbors(p1) {
                let pair = (p1.min(p2), p1.max(p2));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out
    }

    // ---------------- shared RouterState of the old baselines ----------------

    struct RouterState<'a> {
        circuit: &'a Circuit,
        device: &'a CouplingGraph,
        dist: &'a DistanceMatrix,
        dag: DependenceGraph,
        indeg: Vec<u32>,
        front: Vec<u32>,
        layout: Layout,
        routed: Circuit,
        initial_layout: Vec<u32>,
        swaps: usize,
    }

    impl<'a> RouterState<'a> {
        fn new(
            circuit: &'a Circuit,
            device: &'a CouplingGraph,
            dist: &'a DistanceMatrix,
            layout: Layout,
        ) -> Self {
            let dag = DependenceGraph::new(circuit);
            let indeg = dag.in_degrees();
            let front = dag.initial_front();
            let initial_layout = layout.as_assignment().to_vec();
            RouterState {
                circuit,
                device,
                dist,
                dag,
                indeg,
                front,
                layout,
                routed: Circuit::with_capacity(device.n_qubits(), circuit.gates().len()),
                initial_layout,
                swaps: 0,
            }
        }

        fn executable(&self, g: u32) -> bool {
            match self.circuit.gates()[g as usize].qubit_pair() {
                Some((a, b)) => self
                    .device
                    .is_adjacent(self.layout.phys(a), self.layout.phys(b)),
                None => true,
            }
        }

        fn execute_ready(&mut self) -> usize {
            let mut ran = 0;
            loop {
                let mut ready: Vec<u32> = self
                    .front
                    .iter()
                    .copied()
                    .filter(|&g| self.executable(g))
                    .collect();
                if ready.is_empty() {
                    return ran;
                }
                ready.sort_unstable();
                for &g in &ready {
                    let gate = &self.circuit.gates()[g as usize];
                    let mapped = Gate {
                        kind: gate.kind.clone(),
                        qubits: gate.qubits.iter().map(|&q| self.layout.phys(q)).collect(),
                        params: gate.params.clone(),
                    };
                    self.routed.push(mapped);
                    ran += 1;
                }
                self.front.retain(|g| !ready.contains(g));
                for &g in &ready {
                    for &s in self.dag.succs(g) {
                        self.indeg[s as usize] -= 1;
                        if self.indeg[s as usize] == 0 {
                            self.front.push(s);
                        }
                    }
                }
            }
        }

        fn apply_swap(&mut self, p1: u32, p2: u32) {
            self.routed.swap(p1, p2);
            self.layout.apply_swap(p1, p2);
            self.swaps += 1;
        }

        fn blocked_front(&self) -> Vec<u32> {
            self.front
                .iter()
                .copied()
                .filter(|&g| self.circuit.gates()[g as usize].is_two_qubit())
                .collect()
        }

        fn front_physicals(&self) -> Vec<u32> {
            let mut out: Vec<u32> = self
                .blocked_front()
                .iter()
                .filter_map(|&g| self.circuit.gates()[g as usize].qubit_pair())
                .flat_map(|(a, b)| [self.layout.phys(a), self.layout.phys(b)])
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }

        fn swap_candidates(&self) -> Vec<(u32, u32)> {
            let mut out: Vec<(u32, u32)> = Vec::new();
            for p1 in self.front_physicals() {
                for &p2 in self.device.neighbors(p1) {
                    let pair = (p1.min(p2), p1.max(p2));
                    if !out.contains(&pair) {
                        out.push(pair);
                    }
                }
            }
            out
        }

        fn distance_sum(&self, gates: &[u32]) -> f64 {
            gates
                .iter()
                .filter_map(|&g| self.circuit.gates()[g as usize].qubit_pair())
                .map(|(a, b)| self.dist.get(self.layout.phys(a), self.layout.phys(b)) as f64)
                .sum()
        }

        fn lookahead(&self, limit: usize) -> Vec<u32> {
            let mut out = Vec::with_capacity(limit);
            let mut visited = vec![false; self.dag.n_gates()];
            let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
            for &g in &self.front {
                visited[g as usize] = true;
                heap.push(Reverse(g));
            }
            while let Some(Reverse(g)) = heap.pop() {
                let in_front = self.indeg[g as usize] == 0;
                if !in_front && self.circuit.gates()[g as usize].is_two_qubit() {
                    out.push(g);
                    if out.len() >= limit {
                        break;
                    }
                }
                for &s in self.dag.succs(g) {
                    if !visited[s as usize] {
                        visited[s as usize] = true;
                        heap.push(Reverse(s));
                    }
                }
            }
            out
        }

        fn force_route(&mut self, g: u32) {
            let (a, b) = self.circuit.gates()[g as usize]
                .qubit_pair()
                .expect("blocked gates are two-qubit");
            let (pa, pb) = (self.layout.phys(a), self.layout.phys(b));
            let path = self.device.shortest_path(pa, pb).expect("connected device");
            for win in path.windows(2).take(path.len().saturating_sub(2)) {
                self.apply_swap(win[0], win[1]);
            }
        }

        fn into_result(self) -> MappingResult {
            MappingResult {
                routed: self.routed,
                final_layout: self.layout.as_assignment().to_vec(),
                initial_layout: self.initial_layout,
                swaps: self.swaps,
            }
        }
    }

    // ---------------- SABRE ----------------

    pub fn sabre(circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let cfg = baselines::SabreConfig::default();
        let dist = device.shared_distances();
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        let mut st = RouterState::new(circuit, device, &dist, layout);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut decay = vec![1.0f64; device.n_qubits()];
        let stall_limit = 3 * dist.diameter() as usize + cfg.stall_slack;
        let mut stall = 0usize;
        let mut rounds_since_reset = 0usize;
        loop {
            if st.execute_ready() > 0 {
                decay.fill(1.0);
                stall = 0;
                rounds_since_reset = 0;
            }
            let blocked = st.blocked_front();
            if blocked.is_empty() {
                break;
            }
            let extended = st.lookahead(cfg.extended_set_size);
            let candidates = st.swap_candidates();
            let mut best: Vec<(u32, u32)> = Vec::new();
            let mut best_score = f64::INFINITY;
            for &(p1, p2) in &candidates {
                st.layout.apply_swap(p1, p2);
                let h_front = st.distance_sum(&blocked) / blocked.len() as f64;
                let h_ext = if extended.is_empty() {
                    0.0
                } else {
                    st.distance_sum(&extended) / extended.len() as f64
                };
                st.layout.apply_swap(p1, p2);
                let d = decay[p1 as usize].max(decay[p2 as usize]);
                let score = d * (h_front + cfg.extended_set_weight * h_ext);
                if score < best_score - 1e-9 {
                    best_score = score;
                    best.clear();
                    best.push((p1, p2));
                } else if (score - best_score).abs() <= 1e-9 {
                    best.push((p1, p2));
                }
            }
            let (p1, p2) = best[rng.random_range(0..best.len())];
            st.apply_swap(p1, p2);
            decay[p1 as usize] += cfg.decay_delta;
            decay[p2 as usize] += cfg.decay_delta;
            stall += 1;
            rounds_since_reset += 1;
            if rounds_since_reset >= cfg.decay_reset_interval {
                decay.fill(1.0);
                rounds_since_reset = 0;
            }
            if stall > stall_limit {
                let g = blocked[0];
                st.force_route(g);
                decay.fill(1.0);
                stall = 0;
            }
        }
        st.into_result()
    }

    // ---------------- Cirq greedy ----------------

    pub fn cirq(circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let cfg = baselines::CirqConfig::default();
        let dist = device.shared_distances();
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        let mut st = RouterState::new(circuit, device, &dist, layout);
        let stall_limit = 2 * dist.diameter() as usize + cfg.stall_slack;
        let mut stall = 0usize;
        loop {
            if st.execute_ready() > 0 {
                stall = 0;
            }
            let slice = st.blocked_front();
            if slice.is_empty() {
                break;
            }
            let lookahead = st.lookahead(cfg.lookahead);
            let base = st.distance_sum(&slice) + cfg.lookahead_weight * st.distance_sum(&lookahead);
            let mut best: Option<(u32, u32)> = None;
            let mut best_score = base;
            for (p1, p2) in st.swap_candidates() {
                st.layout.apply_swap(p1, p2);
                let score =
                    st.distance_sum(&slice) + cfg.lookahead_weight * st.distance_sum(&lookahead);
                st.layout.apply_swap(p1, p2);
                if score < best_score - 1e-9 {
                    best_score = score;
                    best = Some((p1, p2));
                }
            }
            match best {
                Some((p1, p2)) if stall <= stall_limit => {
                    st.apply_swap(p1, p2);
                    stall += 1;
                }
                _ => {
                    st.force_route(slice[0]);
                    stall = 0;
                }
            }
        }
        st.into_result()
    }

    // ---------------- tket LexiRoute ----------------

    pub fn tket(circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let cfg = baselines::TketConfig::default();
        let dist = device.shared_distances();
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        let mut st = RouterState::new(circuit, device, &dist, layout);
        let stall_limit = 2 * dist.diameter() as usize + cfg.stall_slack;
        let mut stall = 0usize;
        let build_slices = |st: &RouterState<'_>, front: &[u32]| -> Vec<Vec<u32>> {
            let mut slices: Vec<Vec<u32>> = vec![front.to_vec()];
            let budget = cfg.slice_width * (cfg.depth_limit - 1).max(1);
            let upcoming = st.lookahead(budget);
            let mut level: HashMap<u32, usize> = front.iter().map(|&g| (g, 0usize)).collect();
            for &g in &upcoming {
                let l = st
                    .dag
                    .preds(g)
                    .iter()
                    .filter_map(|p| level.get(p))
                    .max()
                    .map_or(1, |&m| m + 1);
                level.insert(g, l);
                if l < cfg.depth_limit {
                    if slices.len() <= l {
                        slices.resize(l + 1, Vec::new());
                    }
                    if slices[l].len() < cfg.slice_width {
                        slices[l].push(g);
                    }
                }
            }
            slices
        };
        let lexi_key = |st: &RouterState<'_>, slices: &[Vec<u32>]| -> Vec<u16> {
            let mut key = Vec::new();
            for slice in slices {
                let mut ds: Vec<u16> = slice
                    .iter()
                    .filter_map(|&g| st.circuit.gates()[g as usize].qubit_pair())
                    .map(|(a, b)| st.dist.get(st.layout.phys(a), st.layout.phys(b)))
                    .collect();
                ds.sort_unstable_by(|a, b| b.cmp(a));
                key.extend(ds);
                key.push(0);
            }
            key
        };
        loop {
            if st.execute_ready() > 0 {
                stall = 0;
            }
            let front = st.blocked_front();
            if front.is_empty() {
                break;
            }
            let slices = build_slices(&st, &front);
            let mut best: Option<((u32, u32), Vec<u16>)> = None;
            for (p1, p2) in st.swap_candidates() {
                st.layout.apply_swap(p1, p2);
                let key = lexi_key(&st, &slices);
                st.layout.apply_swap(p1, p2);
                match &best {
                    Some((_, k)) if key >= *k => {}
                    _ => best = Some(((p1, p2), key)),
                }
            }
            let baseline = lexi_key(&st, &slices);
            match best {
                Some(((p1, p2), key)) if key < baseline && stall <= stall_limit => {
                    st.apply_swap(p1, p2);
                    stall += 1;
                }
                _ => {
                    st.force_route(front[0]);
                    stall = 0;
                }
            }
        }
        st.into_result()
    }

    // ---------------- QMAP A* ----------------

    type AStarNode = (Vec<u32>, usize, (u32, u32), u32);

    pub fn qmap(circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let cfg = baselines::QmapConfig::default();
        let dist = device.shared_distances();
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        let mut st = RouterState::new(circuit, device, &dist, layout);
        loop {
            st.execute_ready();
            let layer = st.blocked_front();
            if layer.is_empty() {
                break;
            }
            let mut pairs: Vec<(u32, u32)> = layer
                .iter()
                .filter_map(|&g| st.circuit.gates()[g as usize].qubit_pair())
                .collect();
            pairs.sort_by_key(|&(a, b)| st.dist.get(st.layout.phys(a), st.layout.phys(b)));
            pairs.truncate(cfg.max_layer_pairs);
            match astar_swaps(&st, &pairs, &cfg) {
                Some(swaps) => {
                    for (p1, p2) in swaps {
                        st.apply_swap(p1, p2);
                    }
                }
                None => {
                    st.force_route(layer[0]);
                }
            }
        }
        st.into_result()
    }

    fn astar_swaps(
        st: &RouterState<'_>,
        pairs: &[(u32, u32)],
        config: &baselines::QmapConfig,
    ) -> Option<Vec<(u32, u32)>> {
        let max_expansions = config.max_expansions;
        let mut logicals: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        logicals.sort_unstable();
        logicals.dedup();
        let slot_of: HashMap<u32, usize> =
            logicals.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let pair_slots: Vec<(usize, usize)> = pairs
            .iter()
            .map(|&(a, b)| (slot_of[&a], slot_of[&b]))
            .collect();
        let start: Vec<u32> = logicals.iter().map(|&l| st.layout.phys(l)).collect();
        let h = |pos: &[u32]| -> u32 {
            let raw: u32 = pair_slots
                .iter()
                .map(|&(i, j)| (st.dist.get(pos[i], pos[j]) as u32).saturating_sub(1))
                .sum();
            (raw as f64 * config.heuristic_weight) as u32
        };
        let goal = |pos: &[u32]| {
            pair_slots
                .iter()
                .all(|&(i, j)| st.device.is_adjacent(pos[i], pos[j]))
        };
        if goal(&start) {
            return Some(Vec::new());
        }
        let mut nodes: Vec<AStarNode> = vec![(start.clone(), usize::MAX, (0, 0), 0)];
        let mut best_g: HashMap<Vec<u32>, u32> = HashMap::from([(start.clone(), 0)]);
        let mut open: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::new();
        open.push(Reverse((h(&start), 0, 0)));
        let mut expansions = 0usize;
        while let Some(Reverse((_f, g, id))) = open.pop() {
            let (pos, _, _, node_g) = nodes[id].clone();
            if node_g != g {
                continue;
            }
            if goal(&pos) {
                let mut swaps = Vec::new();
                let mut cur = id;
                while nodes[cur].1 != usize::MAX {
                    swaps.push(nodes[cur].2);
                    cur = nodes[cur].1;
                }
                swaps.reverse();
                return Some(swaps);
            }
            expansions += 1;
            if expansions > max_expansions {
                return None;
            }
            let mut cand: Vec<(u32, u32)> = Vec::new();
            for &p in pos.iter() {
                for &q in st.device.neighbors(p) {
                    let pair = (p.min(q), p.max(q));
                    if !cand.contains(&pair) {
                        cand.push(pair);
                    }
                }
            }
            for (p1, p2) in cand {
                let mut next = pos.clone();
                for v in next.iter_mut() {
                    if *v == p1 {
                        *v = p2;
                    } else if *v == p2 {
                        *v = p1;
                    }
                }
                let ng = g + 1;
                if best_g.get(&next).is_none_or(|&old| ng < old) {
                    best_g.insert(next.clone(), ng);
                    let nh = h(&next);
                    let nid = nodes.len();
                    nodes.push((next, id, (p1, p2), ng));
                    open.push(Reverse((ng + nh, ng, nid)));
                }
            }
        }
        None
    }
}

/// The differential-suite roster: 2 depths × 2 seeds of QUEKO traffic for
/// a 16-qubit Aspen-style device.
fn queko_grid() -> Vec<(String, Circuit)> {
    let gen_device = backends::aspen16();
    let mut out = Vec::new();
    for depth in [30, 60] {
        for seed in 0..2u64 {
            let bench = queko::QuekoSpec::new(&gen_device, depth)
                .seed(seed)
                .generate();
            out.push((format!("queko16-d{depth}-s{seed}"), bench.circuit));
        }
    }
    out
}

fn devices() -> Vec<CouplingGraph> {
    vec![
        backends::sherbrooke(),
        backends::ankaa3(),
        backends::king_grid(5, 5),
    ]
}

type ReferenceFn = fn(&Circuit, &CouplingGraph) -> qlosure::MappingResult;

/// (name, frozen reference, pipeline-composed mapper) triples.
fn roster() -> Vec<(&'static str, ReferenceFn, Box<dyn Mapper + Send + Sync>)> {
    vec![
        (
            "qlosure",
            reference::qlosure as ReferenceFn,
            Box::new(qlosure::QlosureMapper::default()),
        ),
        (
            "sabre",
            reference::sabre as ReferenceFn,
            Box::new(baselines::SabreMapper::default()),
        ),
        (
            "qmap",
            reference::qmap as ReferenceFn,
            Box::new(baselines::QmapMapper::default()),
        ),
        (
            "cirq",
            reference::cirq as ReferenceFn,
            Box::new(baselines::CirqMapper::default()),
        ),
        (
            "tket",
            reference::tket as ReferenceFn,
            Box::new(baselines::TketMapper::default()),
        ),
    ]
}

#[test]
fn pipeline_mappers_match_the_frozen_reference_bit_for_bit() {
    for device in devices() {
        for (label, circuit) in queko_grid() {
            for (name, reference, mapper) in roster() {
                let expected = reference(&circuit, &device);
                let got = mapper.map(&circuit, &device);
                assert_eq!(
                    got,
                    expected,
                    "{name} diverged from the pre-refactor reference on {label}/{}",
                    device.name()
                );
                // The pipeline form is the same computation.
                let outcome = mapper
                    .pipeline()
                    .expect("all shipped mappers are pipeline-based")
                    .run(&circuit, &device)
                    .unwrap();
                assert_eq!(
                    outcome.result,
                    expected,
                    "{name} pipeline outcome diverged on {label}/{}",
                    device.name()
                );
            }
        }
    }
}

#[test]
fn engine_batches_match_the_frozen_reference_at_1_and_4_threads() {
    let device = Arc::new(backends::ankaa3());
    // Reference results, computed sequentially with the frozen code.
    let mut expected = Vec::new();
    let mut jobs = Vec::new();
    for (label, circuit) in queko_grid() {
        let circuit = Arc::new(circuit);
        for (name, reference, mapper) in roster() {
            expected.push(reference(&circuit, &device));
            jobs.push(MapJob {
                label: format!("{label}-{name}"),
                circuit: circuit.clone(),
                device: device.clone(),
                mapper: Arc::from(mapper),
            });
        }
    }
    for threads in [1usize, 4] {
        let report = BatchEngine::with_threads(threads).run_jobs(jobs.clone());
        assert_eq!(report.jobs.len(), expected.len());
        for (job, want) in report.jobs.iter().zip(&expected) {
            assert_eq!(
                job.result, *want,
                "{} diverged from the frozen reference at {threads} thread(s)",
                job.label
            );
        }
    }
}

#[test]
fn hier_fragment_prefetch_matches_sequential_at_1_and_4_threads() {
    // Intra-job parallelism: the hier router's speculative fragment
    // prefetch only warms the content-keyed plan memo — replay always
    // looks plans up by their true key, and a plan is a pure function of
    // that key. So at every thread count (batch-level workers × in-job
    // prefetch workers) the routed bytes must equal the 1-thread run,
    // which skips speculation entirely and is pure sequential replay.
    let device = Arc::new(backends::square_grid(8, 8));
    let gen_device = backends::square_grid(8, 8);
    let mk_mapper = |threads: usize| {
        hier::HierMapper::with_config(hier::HierConfig {
            budget: Some(16),
            threads: Some(threads),
            ..hier::HierConfig::default()
        })
    };
    let mut circuits = Vec::new();
    for depth in [20, 40] {
        for seed in 0..2u64 {
            let bench = queko::QuekoSpec::new(&gen_device, depth)
                .seed(seed)
                .generate();
            circuits.push((format!("queko64-d{depth}-s{seed}"), Arc::new(bench.circuit)));
        }
    }
    let expected: Vec<_> = circuits
        .iter()
        .map(|(_, c)| mk_mapper(1).map(c, &device))
        .collect();
    for threads in [1usize, 4] {
        let jobs: Vec<MapJob> = circuits
            .iter()
            .map(|(label, circuit)| MapJob {
                label: label.clone(),
                circuit: circuit.clone(),
                device: device.clone(),
                mapper: Arc::new(mk_mapper(threads)),
            })
            .collect();
        let report = BatchEngine::with_threads(threads).run_jobs(jobs);
        for (job, want) in report.jobs.iter().zip(&expected) {
            assert_eq!(
                job.result, *want,
                "hier {} diverged from the sequential routing at {threads} thread(s)",
                job.label
            );
        }
    }
}

#[test]
fn qlosure_matches_reference_on_lookahead_truncating_shapes() {
    // Regression for the §V-D candidate base: a long chain of repeated
    // cx(a, b) ahead of independent far pairs pushes the look-ahead
    // budget `k` under the chain length, so the window walk breaks
    // before popping the high-index front gates — their operands must
    // NOT contribute SWAP candidates (the pre-refactor behavior). The
    // QUEKO roster never exercises this shape; this seeded family does.
    let device = backends::ring(12);
    let mapper = qlosure::QlosureMapper::default();
    for seed in 0..400u64 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = |m: u64| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) % m) as u32
        };
        let mut c = Circuit::new(12);
        let a = next(12);
        let mut b = next(12);
        if a == b {
            b = (b + 1) % 12;
        }
        let reps = 8 + next(21);
        for _ in 0..reps {
            c.cx(a, b);
        }
        for _ in 0..3 {
            let x = next(12);
            let y = next(12);
            if x != y && ![a, b].contains(&x) && ![a, b].contains(&y) {
                c.cx(x, y);
            }
        }
        let expected = reference::qlosure(&c, &device);
        let got = mapper.map(&c, &device);
        assert_eq!(got, expected, "seed {seed} diverged from the reference");
    }
}

#[test]
fn qlosure_matches_reference_on_the_queko54_smoke_workload() {
    // The smoke/bench workload (queko-bss-54qbt d100 on Sherbrooke) does
    // hit the look-ahead truncation path; pin it to the frozen reference.
    let gen_device = backends::sycamore54();
    let device = backends::sherbrooke();
    let bench = queko::QuekoSpec::new(&gen_device, 100).seed(0).generate();
    let expected = reference::qlosure(&bench.circuit, &device);
    let got = qlosure::QlosureMapper::default().map(&bench.circuit, &device);
    assert_eq!(got, expected);
}
