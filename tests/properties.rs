//! Property-based tests (proptest) over the whole stack: Presburger
//! algebra laws, dependence-weight cross-validation, routing invariants
//! and generator guarantees.
//!
//! Every block pins an explicit RNG seed, so runs are deterministic and a
//! reported failing case index replays exactly. Two knobs for CI tiers:
//!
//! * `PROPTEST_CASES=<n>` caps the cases per property (fast smoke tier);
//! * `cargo test --test properties smoke_` runs only the fixed-input
//!   smoke subset at the bottom of this file.

use circuit::{verify_routing, Circuit, DependenceGraph};
use presburger::{BasicSet, Constraint, LinearExpr, Set};
use proptest::prelude::*;
use qlosure::{Layout, Mapper, PipelineError, QlosureMapper, RoutingState};
use topology::{backends, CouplingGraph};

// ---------- Presburger algebra ----------

/// Strategy: a random constraint over `dim` variables with small
/// coefficients (the regime the mapper exercises).
fn arb_constraint(dim: usize) -> impl Strategy<Value = Constraint> {
    let coeffs = prop::collection::vec(-3i64..=3, dim);
    (coeffs, -6i64..=6, 0u8..=2, 2i64..=4).prop_map(|(cs, k, kind, m)| {
        let expr = LinearExpr::new(cs, k);
        match kind {
            0 => Constraint::eq(expr),
            1 => Constraint::ge(expr),
            _ => Constraint::modulo(expr, m),
        }
    })
}

fn arb_basic_set(dim: usize) -> impl Strategy<Value = BasicSet> {
    // Intersect with a box so the sets stay bounded and enumerable.
    prop::collection::vec(arb_constraint(dim), 0..4).prop_map(move |cs| {
        let mut all = vec![
            Constraint::ge(LinearExpr::var(dim, 0).plus_const(5)),
            Constraint::ge(LinearExpr::var(dim, 0).neg().plus_const(5)),
        ];
        for v in 1..dim {
            all.push(Constraint::ge(LinearExpr::var(dim, v).plus_const(5)));
            all.push(Constraint::ge(LinearExpr::var(dim, v).neg().plus_const(5)));
        }
        all.extend(cs);
        BasicSet::new(dim, all)
    })
}

fn enumerate(dim: usize) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let mut point = vec![0i64; dim];
    fn rec(point: &mut Vec<i64>, d: usize, out: &mut Vec<Vec<i64>>) {
        if d == point.len() {
            out.push(point.clone());
            return;
        }
        for x in -5..=5 {
            point[d] = x;
            rec(point, d + 1, out);
        }
    }
    rec(&mut point, 0, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64).with_seed(0x0051_EC05_E7A1_0EB3))]

    #[test]
    fn set_union_matches_pointwise(a in arb_basic_set(2), b in arb_basic_set(2)) {
        let sa = Set::from(a.clone());
        let sb = Set::from(b.clone());
        let u = sa.union(&sb);
        for p in enumerate(2) {
            prop_assert_eq!(u.contains(&p), a.contains(&p) || b.contains(&p));
        }
    }

    #[test]
    fn set_subtract_matches_pointwise(a in arb_basic_set(2), b in arb_basic_set(2)) {
        let d = Set::from(a.clone()).subtract(&Set::from(b.clone()));
        for p in enumerate(2) {
            prop_assert_eq!(d.contains(&p), a.contains(&p) && !b.contains(&p));
        }
    }

    #[test]
    fn count_matches_enumeration(a in arb_basic_set(2)) {
        let counted = Set::from(a.clone()).count_points();
        let brute = enumerate(2).iter().filter(|p| a.contains(p)).count() as u64;
        prop_assert_eq!(counted, brute);
    }

    #[test]
    fn emptiness_matches_enumeration(a in arb_basic_set(2)) {
        let brute_empty = !enumerate(2).iter().any(|p| a.contains(p));
        prop_assert_eq!(a.is_empty(), brute_empty);
    }

    #[test]
    fn subset_is_a_partial_order(a in arb_basic_set(1), b in arb_basic_set(1)) {
        let sa = Set::from(a);
        let sb = Set::from(b);
        // Reflexive, and consistent with pointwise inclusion.
        prop_assert!(sa.is_subset(&sa));
        let pointwise = enumerate(1).iter().all(|p| !sa.contains(p) || sb.contains(p));
        prop_assert_eq!(sa.is_subset(&sb), pointwise);
    }
}

// ---------- Dependence weights ----------

/// Random small circuit as an interaction list.
fn arb_circuit(n_qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..n_qubits, 0..n_qubits), 1..max_gates).prop_map(move |pairs| {
        let mut c = Circuit::new(n_qubits as usize);
        for (a, b) in pairs {
            if a != b {
                c.cx(a, b);
            } else {
                c.h(a);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48).with_seed(0x0051_EC05_DE05_0E57))]

    #[test]
    fn affine_weights_dominate_graph_weights(c in arb_circuit(8, 40)) {
        use affine::{DependenceAnalysis, WeightMode};
        let graph = DependenceAnalysis::new(&c, WeightMode::Graph);
        let affine = DependenceAnalysis::new(&c, WeightMode::Affine);
        // Affine weights are exact or a sound over-approximation.
        for g in 0..c.gates().len() as u32 {
            prop_assert!(
                affine.weight(g) >= graph.weight(g),
                "gate {}: affine {} < exact {}",
                g, affine.weight(g), graph.weight(g)
            );
        }
        if affine.path() == affine::WeightPath::AffineExact {
            prop_assert_eq!(affine.weights(), graph.weights());
        }
    }

    #[test]
    fn graph_weights_match_reachability(c in arb_circuit(6, 30)) {
        use affine::{DependenceAnalysis, WeightMode};
        let analysis = DependenceAnalysis::new(&c, WeightMode::Graph);
        // Build the 2q-only shadow and check against per-gate DFS.
        let mut shadow = Circuit::new(c.n_qubits());
        let mut orig: Vec<u32> = Vec::new();
        for (gate, a, b) in c.interactions() {
            shadow.cx(a, b);
            orig.push(gate as u32);
        }
        let dag = DependenceGraph::new(&shadow);
        for (i, &g) in orig.iter().enumerate() {
            prop_assert_eq!(
                analysis.weight(g),
                dag.reachable_from(i as u32).len() as u64
            );
        }
    }
}

// ---------- Routing invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_2007_E0D1))]

    #[test]
    fn qlosure_routes_any_circuit_on_any_device(
        c in arb_circuit(9, 35),
        device_pick in 0usize..4,
    ) {
        let device = match device_pick {
            0 => backends::line(9),
            1 => backends::ring(9),
            2 => backends::square_grid(3, 3),
            _ => backends::king_grid(3, 3),
        };
        let r = QlosureMapper::default().map(&c, &device);
        verify_routing(
            &c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        ).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Conservation: routed = original gates + swaps.
        prop_assert_eq!(r.routed.qop_count(), c.qop_count() + r.swaps);
    }

    #[test]
    fn all_baselines_route_random_circuits(c in arb_circuit(8, 25)) {
        let device = backends::square_grid(2, 4);
        for mapper in baselines::all_baselines() {
            let r = mapper.map(&c, &device);
            verify_routing(
                &c,
                &r.routed,
                &|a, b| device.is_adjacent(a, b),
                &r.initial_layout,
            ).map_err(|e| TestCaseError::fail(format!("{}: {e}", mapper.name())))?;
        }
    }
}

// ---------- Hierarchical partitioning invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_41E2_0B75))]

    #[test]
    fn hier_partition_never_orphans_a_qubit(
        device_pick in 0usize..4,
        budget in 2usize..12,
    ) {
        let device = match device_pick {
            0 => backends::square_grid(4, 5),
            1 => backends::king_grid(4, 4),
            2 => backends::aspen16(),
            _ => backends::sycamore54(),
        };
        let rm = hier::coarsen(&device, budget, None);
        // Exact cover: every qubit in exactly one region, indices agree.
        let mut counted = 0usize;
        for (r, region) in rm.regions.iter().enumerate() {
            prop_assert!(!region.is_empty(), "region {} empty", r);
            prop_assert!(region.device.is_connected(), "region {} disconnected", r);
            prop_assert!(region.len() <= budget, "region {} over budget", r);
            for (local, &p) in region.qubits.iter().enumerate() {
                prop_assert_eq!(rm.region_of(p), r as u32);
                prop_assert_eq!(rm.local_of[p as usize], local as u32);
            }
            counted += region.len();
        }
        prop_assert_eq!(counted, device.n_qubits(), "partition must cover the device");
    }

    #[test]
    fn hier_routing_keeps_the_layout_a_permutation(
        c in arb_circuit(9, 35),
        budget in 3usize..10,
    ) {
        // Boundary-SWAP stitching moves qubits between regions; the final
        // layout must stay injective and the routing must verify.
        let device = backends::square_grid(3, 3);
        let mapper = hier::HierMapper::with_budget(budget);
        let r = mapper.map(&c, &device);
        verify_routing(
            &c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        ).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        for layout in [&r.initial_layout, &r.final_layout] {
            let mut seen = vec![false; device.n_qubits()];
            for &p in layout.iter() {
                prop_assert!((p as usize) < device.n_qubits(), "slot out of range");
                prop_assert!(!seen[p as usize], "slot {} assigned twice", p);
                seen[p as usize] = true;
            }
        }
        prop_assert_eq!(r.routed.qop_count(), c.qop_count() + r.swaps);
    }
}

// ---------- Canonical fragment form invariants ----------

/// Applies slot permutation `perm` (original → new) to a fragment's
/// adjacency and gate stream *together* — the pairing that makes any
/// permutation a fragment isomorphism (no device automorphism needed).
fn permute_fragment(
    perm: &[u32],
    edges: &[(u32, u32)],
    gates: &[hier::FragmentGate],
) -> (Vec<(u32, u32)>, Vec<hier::FragmentGate>) {
    let mut new_edges: Vec<(u32, u32)> = edges
        .iter()
        .map(|&(a, b)| {
            let (x, y) = (perm[a as usize], perm[b as usize]);
            (x.min(y), x.max(y))
        })
        .collect();
    new_edges.sort_unstable();
    let new_gates = gates
        .iter()
        .map(|(kind, operands, params)| {
            (
                kind.clone(),
                operands.iter().map(|&q| perm[q as usize]).collect(),
                params.clone(),
            )
        })
        .collect();
    (new_edges, new_gates)
}

/// A pseudo-random fragment over `n` slots: a path backbone (so the
/// region stays connected) plus reduced chords, and a 1q/2q gate stream
/// — the shape the hierarchical router feeds `canonicalize`.
fn build_fragment(
    n: u32,
    chords: &[(u32, u32)],
    picks: &[(u32, u32, u8)],
) -> (Vec<(u32, u32)>, Vec<hier::FragmentGate>) {
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    for &(a, b) in chords {
        let (x, y) = (a % n, b % n);
        let edge = (x.min(y), x.max(y));
        if x != y && !edges.contains(&edge) {
            edges.push(edge);
        }
    }
    edges.sort_unstable();
    let gates = picks
        .iter()
        .filter_map(|&(a, b, kind)| {
            let (x, y) = (a % n, b % n);
            match kind {
                0 if x != y => Some((hier::intern("cx"), vec![x, y], Vec::new())),
                1 if x != y => Some((hier::intern("cz"), vec![x, y], Vec::new())),
                2 => Some((hier::intern("h"), vec![x], Vec::new())),
                _ => None,
            }
        })
        .collect();
    (edges, gates)
}

/// A Fisher-Yates permutation of `0..n` drawn from an LCG stream, so a
/// single proptest `u64` input covers the whole permutation space.
fn seeded_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n as usize).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        perm.swap(i, (s >> 33) as usize % (i + 1));
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48).with_seed(0x00CA_F01D_0F2A_6013))]

    #[test]
    fn hier_canonical_key_is_permutation_invariant(
        n in 3u32..9,
        chords in prop::collection::vec((0u32..64, 0u32..64), 0..6),
        picks in prop::collection::vec((0u32..64, 0u32..64, 0u8..3), 1..12),
        seed in 0u64..u64::MAX,
    ) {
        // Relabeling the slots of a fragment (adjacency and gate stream
        // in lockstep) must not change the canonical key — this is the
        // exact property the plan store's cross-request sharing rides on.
        let (edges, gates) = build_fragment(n, &chords, &picks);
        let base = hier::canonicalize(n, &edges, &gates, hier::intern("prop-cfg"));
        let perm = seeded_permutation(n, seed);
        let (p_edges, p_gates) = permute_fragment(&perm, &edges, &gates);
        let relabeled = hier::canonicalize(n, &p_edges, &p_gates, hier::intern("prop-cfg"));
        prop_assert_eq!(&relabeled.key, &base.key);
        // The replay map is always a permutation of the region slots.
        let mut sorted = relabeled.to_local.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<u32>>());
    }

    #[test]
    fn hier_canonicalization_is_idempotent(
        n in 3u32..9,
        chords in prop::collection::vec((0u32..64, 0u32..64), 0..6),
        picks in prop::collection::vec((0u32..64, 0u32..64, 0u8..3), 1..12),
    ) {
        // The canonical form is a fixed point: re-canonicalizing it
        // returns the same key with an identity replay map.
        let (edges, gates) = build_fragment(n, &chords, &picks);
        let once = hier::canonicalize(n, &edges, &gates, hier::intern("prop-cfg"));
        let twice =
            hier::canonicalize(n, &once.key.edges, &once.key.gates, hier::intern("prop-cfg"));
        prop_assert_eq!(&once.key, &twice.key);
        prop_assert_eq!(twice.to_local, (0..n).collect::<Vec<u32>>());
    }
}

// ---------- RoutingState delta/undo invariants ----------

/// Drives a `RoutingState` through a full routing of a pseudo-random
/// circuit, checking at every step that apply-then-undo restores the
/// state fingerprint exactly (for both gate-execution cascades and
/// SWAPs), that redo is deterministic, and that layout-only speculation
/// leaves no trace.
fn check_routing_state_round_trips(seed: u64, n_gates: usize) -> Result<(), TestCaseError> {
    let device = backends::square_grid(3, 3);
    let dist = device.distances();
    let mut c = Circuit::new(9);
    let mut s = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    for _ in 0..n_gates {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) % 9) as u32;
        let b = ((s >> 17) % 9) as u32;
        if a == b {
            c.h(a);
        } else {
            c.cx(a, b);
        }
    }
    let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(9, 9));
    let mut steps = 0usize;
    loop {
        // Execution cascade: apply, undo, re-apply.
        let before = st.fingerprint();
        let delta = st.execute_ready();
        let ran = delta.ran;
        let after = st.fingerprint();
        st.undo_execute(delta);
        prop_assert_eq!(st.fingerprint(), before, "undo_execute must restore");
        let redo = st.execute_ready();
        prop_assert_eq!(redo.ran, ran, "redo must be deterministic");
        prop_assert_eq!(st.fingerprint(), after, "redo must reproduce");
        if st.is_done() {
            break;
        }
        // SWAP: apply, undo, speculate, re-apply.
        let candidates = st.swap_candidates();
        prop_assert!(!candidates.is_empty(), "blocked front has candidates");
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let (p1, p2) = candidates[(s >> 33) as usize % candidates.len()];
        let before = st.fingerprint();
        let swap_delta = st.apply_swap(p1, p2);
        st.undo_swap(swap_delta);
        prop_assert_eq!(st.fingerprint(), before.clone(), "undo_swap must restore");
        let _ = st.speculate_swap(p1, p2, |view| view.swaps());
        prop_assert_eq!(st.fingerprint(), before, "speculation must be traceless");
        st.apply_swap(p1, p2);
        steps += 1;
        // Random front-incident swaps alone may wander; force progress
        // periodically so the drive always terminates.
        if steps % 8 == 7 {
            let g = st.blocked_front()[0];
            st.force_route(g);
        }
        prop_assert!(steps < 10_000, "routing drive must terminate");
    }
    prop_assert!(st.is_done());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_0DE1_7A50))]

    #[test]
    fn routing_state_apply_undo_round_trips(seed in 0u64..10_000, n_gates in 5usize..40) {
        check_routing_state_round_trips(seed, n_gates)?;
    }
}

// ---------- SWAP-candidate enumeration ----------

/// Drives a pseudo-random circuit through routing and, at every blocked
/// step, checks the epoch-stamped candidate enumeration against a naive
/// first-occurrence-wins reference scan: same pairs, same order,
/// duplicate-free, and stable across repeated calls.
fn check_swap_candidate_enumeration(seed: u64, n_gates: usize) -> Result<(), TestCaseError> {
    let device = backends::square_grid(3, 3);
    let dist = device.distances();
    let mut c = Circuit::new(9);
    let mut s = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    for _ in 0..n_gates {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) % 9) as u32;
        let b = ((s >> 17) % 9) as u32;
        if a == b {
            c.h(a);
        } else {
            c.cx(a, b);
        }
    }
    let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(9, 9));
    let mut steps = 0usize;
    loop {
        st.execute_ready();
        if st.is_done() {
            break;
        }
        // The naive pre-rewrite enumeration: linear-scan dedup, first
        // occurrence wins, over the same front traversal order.
        let mut naive: Vec<(u32, u32)> = Vec::new();
        for p1 in st.front_physicals() {
            for &p2 in device.neighbors(p1) {
                let pair = (p1.min(p2), p1.max(p2));
                if !naive.contains(&pair) {
                    naive.push(pair);
                }
            }
        }
        let got = st.swap_candidates();
        prop_assert_eq!(
            &got,
            &naive,
            "epoch-stamped dedup must equal the naive scan"
        );
        let again = st.swap_candidates();
        prop_assert_eq!(&got, &again, "enumeration must be deterministic");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), got.len(), "candidates must be duplicate-free");
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let (p1, p2) = got[(s >> 33) as usize % got.len()];
        st.apply_swap(p1, p2);
        steps += 1;
        // Random front-incident swaps alone may wander; force progress
        // periodically so the drive always terminates.
        if steps % 8 == 7 {
            let g = st.blocked_front()[0];
            st.force_route(g);
        }
        prop_assert!(steps < 10_000, "routing drive must terminate");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_CA4D_1DA7))]

    #[test]
    fn swap_candidate_enumeration_matches_naive_reference(
        seed in 0u64..10_000,
        n_gates in 5usize..40,
    ) {
        check_swap_candidate_enumeration(seed, n_gates)?;
    }
}

// ---------- disconnected devices fail fast ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_D15C_044E))]

    #[test]
    fn disconnected_devices_are_rejected_in_bounded_time(
        seed in 0u64..10_000,
        n_gates in 0usize..60,
    ) {
        // Two 4-qubit islands: a gate spanning them can never be made
        // adjacent by SWAPs (UNREACHABLE distance), so the pre-fix router
        // would spin forever — the stall limit derives from the diameter,
        // which skips unreachable pairs. The pipeline must instead reject
        // the device at entry with the typed error, whatever the circuit.
        let device = CouplingGraph::new(
            "two islands",
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7), (7, 4)],
        );
        let mut c = Circuit::new(8);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..n_gates {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) % 8) as u32;
            let b = ((s >> 17) % 8) as u32;
            if a == b {
                c.h(a);
            } else {
                c.cx(a, b); // often spans the islands
            }
        }
        let err = QlosureMapper::default()
            .to_pipeline()
            .run(&c, &device)
            .expect_err("disconnected device must be rejected");
        prop_assert!(
            matches!(err, PipelineError::DisconnectedDevice { .. }),
            "expected DisconnectedDevice, got: {err}"
        );
    }
}

// ---------- QUEKO generator guarantees ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x0051_EC05_C0DE_0B3D))]

    #[test]
    fn queko_optimality_invariants(depth in 1usize..60, seed in 0u64..1000) {
        let device = backends::aspen16();
        let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
        // Depth is exactly T.
        prop_assert_eq!(bench.circuit.depth(), depth);
        // The hidden layout is a permutation and executes with zero swaps.
        let mut seen = vec![false; device.n_qubits()];
        for &p in &bench.optimal_layout {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        for g in bench.circuit.gates() {
            if let Some((a, b)) = g.qubit_pair() {
                prop_assert!(device.is_adjacent(
                    bench.optimal_layout[a as usize],
                    bench.optimal_layout[b as usize]
                ));
            }
        }
    }
}

// ---------- QASM round-trip ----------

/// Asserts `parse → emit → parse` is a fixed point for one circuit: the
/// first emission is textually stable under re-parsing and the parsed
/// programs agree instruction-for-instruction.
fn assert_qasm_round_trip(name: &str, circuit: &Circuit) {
    let text1 = qasm::emit(&circuit.to_qasm());
    let p1 = qasm::parse(&text1).unwrap_or_else(|e| panic!("{name}: emitted QASM reparses: {e}"));
    let text2 = qasm::emit(&p1);
    assert_eq!(text1, text2, "{name}: emit is not a fixed point");
    let p2 = qasm::parse(&text2).unwrap();
    assert_eq!(
        p1.instructions(),
        p2.instructions(),
        "{name}: instructions drift across round trips"
    );
    assert_eq!(p1.qregs(), p2.qregs(), "{name}: qregs drift");
    // And the re-imported circuit is operation-for-operation faithful.
    let reimported = Circuit::from_qasm(&p1).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(reimported.qop_count(), circuit.qop_count(), "{name}");
    assert_eq!(
        reimported.two_qubit_count(),
        circuit.two_qubit_count(),
        "{name}"
    );
}

#[test]
fn qasm_round_trip_is_fixed_point_on_qasmbench_corpus() {
    // Every circuit of the QASMBench corpus: parse → emit → parse is a
    // fixed point (see `smoke_qasm_round_trip_fixed_point` for the fast
    // tier).
    for entry in qasmbench::suite() {
        assert_qasm_round_trip(&entry.name, &entry.build());
    }
}

// ---------- Service wire protocol ----------

/// Strategy: strings salted with every character class the wire encoder
/// must escape — quotes, backslashes, control characters, non-ASCII,
/// astral-plane code points.
fn arb_wire_string() -> impl Strategy<Value = String> {
    prop::collection::vec((0u8..8, 0u32..0x11_0000), 0..16).prop_map(|picks| {
        picks
            .into_iter()
            .map(|(class, raw)| match class {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{0}',
                4 => '\t',
                5 => '🦀',
                _ => char::from_u32(raw).unwrap_or('\u{FFFD}'),
            })
            .collect()
    })
}

/// Strategy: finite floats (timings); Rust's shortest-roundtrip `Display`
/// makes every one of them an exact encode→parse fixed point.
fn arb_seconds() -> impl Strategy<Value = f64> {
    (0u64..4_000_000_000).prop_map(|x| x as f64 / 1024.0)
}

fn arb_request() -> impl Strategy<Value = service::Request> {
    use service::{Priority, Request};
    (
        0u8..8,
        arb_wire_string(),
        arb_wire_string(),
        arb_wire_string(),
        0u64..(1 << 53),
        (0u8..2, 0u8..2, 0u8..3, 0u8..2, 0u8..4),
    )
        .prop_map(
            |(op, backend, mapper, qasm, id, (priority, fidelity, strategy, trace, level))| match op
            {
                0 => Request::Submit {
                    backend,
                    mapper,
                    qasm,
                    priority: if priority == 0 {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    },
                    fidelity: fidelity == 0,
                    strategy: match strategy {
                        0 => service::Strategy::Flat,
                        1 => service::Strategy::Hier,
                        _ => service::Strategy::Auto,
                    },
                    trace: trace == 0,
                },
                1 => Request::Poll { id },
                2 => Request::Trace { id },
                3 => Request::Stats,
                4 => Request::Metrics,
                5 => Request::MetricsHistory,
                6 => Request::Events {
                    min_level: arb_level(level),
                    after_seq: id,
                },
                _ => Request::Shutdown,
            },
        )
}

/// The four journal severities, picked by a `0..4` selector.
fn arb_level(pick: u8) -> obs::Level {
    match pick {
        0 => obs::Level::Debug,
        1 => obs::Level::Info,
        2 => obs::Level::Warn,
        _ => obs::Level::Error,
    }
}

fn arb_summary() -> impl Strategy<Value = service::Summary> {
    (
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        prop::collection::vec(0u32..4096, 0..12),
        prop::collection::vec(0u32..4096, 0..12),
        arb_wire_string(),
        prop::collection::vec((arb_wire_string(), arb_seconds()), 0..4),
        (arb_seconds(), arb_seconds(), 0u8..2, 0u8..3),
    )
        .prop_map(
            |(
                (swaps, depth, qops, seq),
                initial_layout,
                final_layout,
                pipeline,
                pass_seconds,
                (seconds, queue_seconds, verified, ppm),
            )| {
                service::Summary {
                    swaps,
                    depth,
                    qops,
                    initial_layout,
                    final_layout,
                    fingerprint: format!("{:016x}", swaps.wrapping_mul(0x9E37_79B9)),
                    pipeline,
                    pass_seconds,
                    seconds,
                    queue_seconds,
                    seq,
                    verified: verified == 0,
                    success_ppm: match ppm {
                        0 => None,
                        1 => Some(0),
                        _ => Some(1_000_000),
                    },
                }
            },
        )
}

fn arb_stats() -> impl Strategy<Value = service::StatsBody> {
    prop::collection::vec(0u64..(1 << 50), 19).prop_map(|counters| service::StatsBody {
        protocol: counters[0],
        workers: counters[1],
        queue_depth: counters[2],
        submitted: counters[3],
        completed: counters[4],
        rejected: counters[5],
        failed: counters[6],
        distance_hits: counters[7],
        distance_misses: counters[8],
        closure_hits: counters[9],
        closure_misses: counters[10],
        weighted_hits: counters[11],
        weighted_misses: counters[12],
        subroute_hits: counters[13],
        subroute_misses: counters[14],
        plan_exact_hits: counters[15],
        plan_canonical_hits: counters[16],
        plan_disk_hits: counters[17],
        plan_disk_writes: counters[18],
    })
}

fn arb_metrics() -> impl Strategy<Value = service::MetricsBody> {
    (
        arb_stats(),
        (arb_seconds(), arb_seconds(), arb_seconds(), arb_seconds()),
        0u64..(1 << 50),
        prop::collection::vec((arb_wire_string(), 0u64..(1 << 50), arb_seconds()), 0..4),
        (
            arb_seconds(),
            0u64..(1 << 50),
            0u64..(1 << 50),
            0u64..(1 << 50),
        ),
    )
        .prop_map(
            |(
                stats,
                (p50, p90, p99, max),
                samples,
                passes,
                (uptime, inflight, events_dropped, trace_drops),
            )| {
                service::MetricsBody {
                    stats,
                    queue_p50: p50,
                    queue_p90: p90,
                    queue_p99: p99,
                    queue_max: max,
                    queue_samples: samples,
                    passes,
                    uptime_seconds: uptime,
                    jobs_inflight: inflight,
                    events_dropped,
                    trace_drops,
                }
            },
        )
}

/// Strategy: one metrics-history sample with every counter column in the
/// `2^53` wire-number range.
fn arb_sample() -> impl Strategy<Value = service::SampleBody> {
    (
        prop::collection::vec(0u64..(1 << 50), 16),
        arb_seconds(),
        arb_seconds(),
    )
        .prop_map(|(c, uptime, p99)| service::SampleBody {
            index: c[0],
            uptime_seconds: uptime,
            submitted: c[1],
            completed: c[2],
            failed: c[3],
            rejected: c[4],
            queue_depth: c[5],
            jobs_inflight: c[6],
            queue_p99: p99,
            distance_hits: c[7],
            distance_misses: c[8],
            plan_exact_hits: c[9],
            plan_canonical_hits: c[10],
            plan_disk_hits: c[11],
            subroute_hits: c[12],
            subroute_misses: c[13],
            events_dropped: c[14],
            trace_drops: c[15],
        })
}

/// Strategy: a metrics-history body of 0–2 shard series, each holding
/// 0–3 samples with rates computed by the library (so the fixed point
/// also covers `RatesBody::over`'s actual output values).
fn arb_history() -> impl Strategy<Value = service::HistoryBody> {
    (
        arb_seconds(),
        prop::collection::vec(prop::collection::vec(arb_sample(), 0..3), 0..3),
    )
        .prop_map(|(sample_seconds, series)| service::HistoryBody {
            sample_seconds,
            series: series
                .into_iter()
                .enumerate()
                .map(|(shard, samples)| service::SeriesBody {
                    shard: shard as u64,
                    rates: service::RatesBody::over(&samples),
                    samples,
                })
                .collect(),
        })
}

/// Strategy: a journal window of 0–3 events salted with the escape
/// classes, every severity, and empty/non-empty field payloads.
fn arb_events() -> impl Strategy<Value = service::EventsBody> {
    (
        0u64..(1 << 50),
        prop::collection::vec(
            (
                0u64..(1 << 50),
                arb_seconds(),
                0u8..4,
                arb_wire_string(),
                arb_wire_string(),
                prop::collection::vec((arb_wire_string(), arb_wire_string()), 0..3),
            ),
            0..3,
        ),
    )
        .prop_map(|(dropped, events)| service::EventsBody {
            dropped,
            events: events
                .into_iter()
                .map(
                    |(seq, age, level, subsystem, message, fields)| service::EventBody {
                        seq,
                        age_seconds: age,
                        level: arb_level(level),
                        subsystem,
                        message,
                        fields,
                    },
                )
                .collect(),
        })
}

/// Strategy: one childless span whose timestamps are ordered and inside
/// the `2^53` wire-number range (notes salted with the escape classes).
fn arb_span_leaf() -> impl Strategy<Value = service::SpanNode> {
    (
        arb_wire_string(),
        0u64..(1 << 52),
        0u64..(1 << 52),
        prop::collection::vec((arb_wire_string(), arb_wire_string()), 0..3),
    )
        .prop_map(|(name, a, b, notes)| service::SpanNode {
            name,
            start_ns: a.min(b),
            end_ns: a.max(b),
            notes,
            children: Vec::new(),
        })
}

/// Strategy: a depth-2 span tree (root plus 0–3 leaf children) — enough
/// to exercise the recursive encode/parse path without deep nesting.
fn arb_span_tree() -> impl Strategy<Value = service::SpanNode> {
    (
        arb_span_leaf(),
        prop::collection::vec(arb_span_leaf(), 0..4),
    )
        .prop_map(|(mut root, children)| {
            root.children = children;
            root
        })
}

fn arb_response() -> impl Strategy<Value = service::Response> {
    use service::{ErrorCode, Response};
    (
        0u8..11,
        0u64..(1 << 53),
        arb_wire_string(),
        arb_summary(),
        (0u8..2, 0u8..13),
        (
            arb_stats(),
            arb_metrics(),
            arb_span_tree(),
            arb_history(),
            arb_events(),
        ),
    )
        .prop_map(
            |(
                kind,
                id,
                text,
                summary,
                (running, code),
                (stats, metrics, root, history, events),
            )| match kind {
                0 => Response::Submitted { id },
                1 => Response::Pending {
                    id,
                    running: running == 0,
                },
                2 => Response::Done { id, summary },
                3 => Response::Failed { id, message: text },
                4 => Response::Stats(stats),
                5 => Response::ShuttingDown { pending: id },
                6 => Response::Metrics(metrics),
                7 => Response::Trace {
                    id,
                    trace_id: format!("{:016x}", id.wrapping_mul(0x0100_0000_01b3)),
                    root,
                },
                8 => Response::MetricsHistory(history),
                9 => Response::Events(events),
                _ => Response::Error {
                    code: [
                        ErrorCode::BadRequest,
                        ErrorCode::VersionMismatch,
                        ErrorCode::Oversized,
                        ErrorCode::UnknownBackend,
                        ErrorCode::UnknownMapper,
                        ErrorCode::QasmError,
                        ErrorCode::DeviceTooSmall,
                        ErrorCode::QueueFull,
                        ErrorCode::UnknownId,
                        ErrorCode::ShuttingDown,
                        ErrorCode::MappingFailed,
                        ErrorCode::Busy,
                        ErrorCode::ShardUnavailable,
                    ][code as usize],
                    message: text,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64).with_seed(0x0051_EC05_3319_E0F1))]

    #[test]
    fn wire_request_encode_parse_is_fixed_point(request in arb_request()) {
        let line = service::proto::encode_request(&request).unwrap();
        prop_assert!(!line.contains('\n'), "one frame is one line");
        prop_assert_eq!(service::proto::parse_request(&line).unwrap(), request);
    }

    #[test]
    fn wire_response_encode_parse_is_fixed_point(response in arb_response()) {
        let line = service::proto::encode_response(&response).unwrap();
        prop_assert!(!line.contains('\n'), "one frame is one line");
        prop_assert_eq!(service::proto::parse_response(&line).unwrap(), response);
    }

    #[test]
    fn wire_truncated_frames_error_without_panicking(
        request in arb_request(),
        cut_permille in 0u32..1000,
    ) {
        // Truncation at an arbitrary *byte* offset (not a char boundary):
        // the bytes go through lossy UTF-8 recovery like any socket read.
        let line = service::proto::encode_request(&request).unwrap();
        let cut = (line.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let truncated = String::from_utf8_lossy(&line.as_bytes()[..cut]);
        if cut < line.len() {
            prop_assert!(service::proto::parse_request(&truncated).is_err());
        }
    }

    #[test]
    fn wire_non_finite_numbers_are_typed_encode_errors(
        response in arb_response(),
        which in 0u8..3,
        slot in 0u8..3,
    ) {
        // Injecting NaN/±inf into any float field of a Done summary must
        // yield a typed encode error, never a corrupt frame: JSON has no
        // non-finite literal and the parser rejects one, so a lossy
        // encoding would break the parse(encode(x)) fixed point.
        let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which as usize];
        if let service::Response::Done { id, mut summary } = response {
            match slot {
                0 => summary.seconds = bad,
                1 => summary.queue_seconds = bad,
                _ => summary.pass_seconds.push(("routing".to_string(), bad)),
            }
            let err = service::proto::encode_response(
                &service::Response::Done { id, summary },
            );
            prop_assert!(err.is_err(), "non-finite {bad:?} must not encode");
        }
    }

    #[test]
    fn wire_leading_zero_numbers_are_rejected(
        digits in 1u64..1_000_000,
        zeros in 1usize..4,
        negative in 0u8..2,
    ) {
        // RFC 8259: `0123` / `-007` are not JSON numbers. Our encoder
        // never emits them, so rejection needs no protocol version bump.
        let sign = if negative == 1 { "-" } else { "" };
        let line = format!(
            "{{\"v\":1,\"op\":\"poll\",\"id\":{sign}{}{digits}}}",
            "0".repeat(zeros)
        );
        let err = service::proto::parse_request(&line).unwrap_err();
        prop_assert!(matches!(err, service::proto::ProtoError::Json(_)), "{line} -> {err:?}");
    }

    #[test]
    fn wire_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..160)) {
        let text = String::from_utf8_lossy(&bytes);
        // Typed error or (vanishingly unlikely) success — never a panic.
        let _ = service::proto::parse_request(&text);
        let _ = service::proto::parse_response(&text);
    }

    #[test]
    fn wire_single_byte_corruption_never_panics(
        response in arb_response(),
        at_permille in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let line = service::proto::encode_response(&response).unwrap();
        let mut bytes = line.into_bytes();
        if !bytes.is_empty() {
            let at = (bytes.len() as u64 * u64::from(at_permille) / 1000) as usize;
            let at = at.min(bytes.len() - 1);
            bytes[at] ^= flip;
        }
        let corrupted = String::from_utf8_lossy(&bytes);
        let _ = service::proto::parse_response(&corrupted);
    }
}

// ---------- Smoke subset (fixed inputs, milliseconds) ----------
//
// One representative fixed case per property family. `cargo test --test
// properties smoke_` exercises the whole stack quickly without the
// randomized sweeps above.

#[test]
fn smoke_set_algebra_fixed_case() {
    // {0..6 : i ≡ 0 mod 2} vs {3..9}: union/subtract/count by hand.
    let even = BasicSet::new(
        2,
        vec![
            Constraint::ge(LinearExpr::var(2, 0)),
            Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(6)),
            Constraint::modulo(LinearExpr::var(2, 0), 2),
            Constraint::eq(LinearExpr::var(2, 1)),
        ],
    );
    let band = BasicSet::new(
        2,
        vec![
            Constraint::ge(LinearExpr::var(2, 0).plus_const(-3)),
            Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(9)),
            Constraint::eq(LinearExpr::var(2, 1)),
        ],
    );
    let union = Set::from(even.clone()).union(&Set::from(band.clone()));
    assert_eq!(union.count_points(), 4 + 7 - 2); // {0,2,4,6} ∪ {3..9}
    let diff = Set::from(even).subtract(&Set::from(band));
    assert_eq!(diff.count_points(), 2); // {0, 2}
}

#[test]
fn smoke_affine_weights_dominate_fixed_circuit() {
    use affine::{DependenceAnalysis, WeightMode};
    let mut c = Circuit::new(4);
    for i in 0..3 {
        c.cx(i, i + 1);
    }
    c.cx(0, 1);
    let graph = DependenceAnalysis::new(&c, WeightMode::Graph);
    let affine = DependenceAnalysis::new(&c, WeightMode::Affine);
    for g in 0..c.gates().len() as u32 {
        assert!(affine.weight(g) >= graph.weight(g));
    }
}

#[test]
fn smoke_qlosure_routes_fixed_circuit() {
    let mut c = Circuit::new(9);
    for i in 0..8 {
        c.cx(i % 9, (i + 4) % 9);
    }
    let device = backends::square_grid(3, 3);
    let r = QlosureMapper::default().map(&c, &device);
    verify_routing(
        &c,
        &r.routed,
        &|a, b| device.is_adjacent(a, b),
        &r.initial_layout,
    )
    .expect("fixed circuit routes");
    assert_eq!(r.routed.qop_count(), c.qop_count() + r.swaps);
}

#[test]
fn smoke_qasm_round_trip_fixed_point() {
    assert_qasm_round_trip("ghz_8", &qasmbench::ghz(8));
    assert_qasm_round_trip("qft_5", &qasmbench::qft(5));
}

#[test]
fn smoke_routing_state_apply_undo_fixed_case() {
    check_routing_state_round_trips(42, 24).expect("fixed apply/undo case");
}

#[test]
fn smoke_queko_fixed_spec() {
    let device = backends::aspen16();
    let bench = queko::QuekoSpec::new(&device, 12).seed(7).generate();
    assert_eq!(bench.circuit.depth(), 12);
    for g in bench.circuit.gates() {
        if let Some((a, b)) = g.qubit_pair() {
            assert!(device.is_adjacent(
                bench.optimal_layout[a as usize],
                bench.optimal_layout[b as usize]
            ));
        }
    }
}

#[test]
fn smoke_wire_protocol_fixed_cases() {
    use service::proto::{self, ProtoError};
    use service::{ErrorCode, Priority, Request, Response};
    // Encode→parse fixed point on one fixed frame per direction.
    let request = Request::Submit {
        backend: "aspen16".to_string(),
        mapper: "qlosure".to_string(),
        qasm: "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n".to_string(),
        priority: Priority::Interactive,
        fidelity: true,
        strategy: service::Strategy::Hier,
        trace: true,
    };
    let line = proto::encode_request(&request).unwrap();
    assert_eq!(proto::parse_request(&line).unwrap(), request);
    let response = Response::Error {
        code: ErrorCode::QueueFull,
        message: "admission queue full (5 jobs, capacity 5)".to_string(),
    };
    assert_eq!(
        proto::parse_response(&proto::encode_response(&response).unwrap()).unwrap(),
        response
    );
    // Malformed, truncated and version-skewed frames: typed errors.
    for bad in [
        "",
        "{",
        "nonsense",
        "{\"v\":1}",
        "{\"v\":7,\"op\":\"stats\"}",
    ] {
        assert!(proto::parse_request(bad).is_err(), "`{bad}` must error");
    }
    assert!(proto::parse_request(&line[..line.len() / 2]).is_err());
    // Oversized frame: rejected before parsing with the typed code.
    let huge = format!(
        "{{\"v\":1,\"op\":\"stats\",\"pad\":\"{}\"}}",
        "x".repeat(proto::MAX_FRAME)
    );
    assert!(matches!(
        proto::parse_request(&huge).unwrap_err(),
        ProtoError::Oversized { .. }
    ));
}

#[test]
fn smoke_hier_partition_fixed_devices() {
    // One fixed case per coarsening path: exact grid tiling, heavy-hex
    // seeds, greedy fallback — no orphans, connected, budget-strict.
    for (device, budget) in [
        (backends::square_grid(6, 6), 9),
        (backends::sherbrooke(), 12),
        (backends::aspen16(), 5),
    ] {
        let rm = hier::coarsen(&device, budget, None);
        let mut counted = 0;
        for region in &rm.regions {
            assert!(!region.is_empty() && region.device.is_connected());
            assert!(region.len() <= budget);
            counted += region.len();
        }
        assert_eq!(counted, device.n_qubits(), "{}", device.name());
        assert_eq!(rm.region_of.len(), device.n_qubits());
    }
}

#[test]
fn smoke_hier_routes_fixed_circuit() {
    // A scrambled chain over two grid tiles: verifies, preserves the
    // qop count, and both layouts stay permutations.
    let device = backends::square_grid(4, 4);
    let mut c = Circuit::new(16);
    c.h(0);
    for q in 0..15 {
        c.cx(q, 15 - (q % 8));
    }
    let c = {
        // Drop self-pair gates the loop above may have formed.
        let mut clean = Circuit::new(16);
        clean.h(0);
        for q in 0..15u32 {
            let t = 15 - (q % 8);
            if q != t {
                clean.cx(q, t);
            }
        }
        clean
    };
    let r = hier::HierMapper::with_budget(4).map(&c, &device);
    verify_routing(
        &c,
        &r.routed,
        &|a, b| device.is_adjacent(a, b),
        &r.initial_layout,
    )
    .expect("hier smoke case verifies");
    assert_eq!(r.routed.qop_count(), c.qop_count() + r.swaps);
    for layout in [&r.initial_layout, &r.final_layout] {
        let mut sorted = layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "layout must stay a permutation");
    }
}

#[test]
fn smoke_hier_canonical_fixed_fragment() {
    // One fixed 2x3-grid fragment under one fixed scramble: the
    // canonical key is scramble-invariant, and canonicalizing the
    // canonical form is the identity.
    let edges = vec![(0, 1), (1, 2), (0, 3), (1, 4), (2, 5), (3, 4), (4, 5)];
    let gates = vec![
        (hier::intern("cx"), vec![4, 1], Vec::new()),
        (hier::intern("h"), vec![5], Vec::new()),
    ];
    let base = hier::canonicalize(6, &edges, &gates, hier::intern("smoke-cfg"));
    let perm = [3u32, 5, 1, 0, 4, 2];
    let (p_edges, p_gates) = permute_fragment(&perm, &edges, &gates);
    let scrambled = hier::canonicalize(6, &p_edges, &p_gates, hier::intern("smoke-cfg"));
    assert_eq!(scrambled.key, base.key);
    let again = hier::canonicalize(
        6,
        &base.key.edges,
        &base.key.gates,
        hier::intern("smoke-cfg"),
    );
    assert_eq!(again.key, base.key);
    assert_eq!(again.to_local, (0..6).collect::<Vec<u32>>());
}
