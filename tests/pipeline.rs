//! End-to-end integration tests: QASM text → lift → map → verify → emit,
//! across back-ends and workloads.

use circuit::{verify_routing, Circuit};
use qlosure::{route_qasm, Mapper, QlosureConfig, QlosureMapper};
use topology::backends;

fn verify(circuit: &Circuit, device: &topology::CouplingGraph, r: &qlosure::MappingResult) {
    verify_routing(
        circuit,
        &r.routed,
        &|a, b| device.is_adjacent(a, b),
        &r.initial_layout,
    )
    .expect("routing must verify");
}

#[test]
fn qasm_to_mapped_qasm_round_trip() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[6];
        creg c[6];
        h q[0];
        ccx q[0], q[2], q[5];
        cx q[1], q[4];
        rz(pi/8) q[3];
        cx q[3], q[0];
        barrier q;
        measure q -> c;
    "#;
    let device = backends::sherbrooke();
    let (text, result) = route_qasm(src, &device, &QlosureConfig::default()).unwrap();
    assert!(result.swaps > 0, "ccx across a heavy-hex needs routing");
    // The emitted program re-parses and re-converts cleanly.
    let qasm_part: String = text
        .lines()
        .filter(|l| !l.starts_with("//"))
        .collect::<Vec<_>>()
        .join("\n");
    let reparsed = qasm::parse(&qasm_part).expect("emitted QASM re-parses");
    let recircuit = Circuit::from_qasm(&reparsed).expect("re-converts");
    assert_eq!(recircuit.n_qubits(), device.n_qubits());
    assert_eq!(recircuit.swap_count(), result.swaps);
}

#[test]
fn qasmbench_suite_maps_onto_every_backend() {
    // One representative circuit per size class, on all three paper
    // back-ends.
    // Sizes kept modest so the test stays fast in debug builds.
    let circuits = [
        qasmbench::qram(20),
        qasmbench::ising(26, 4),
        qasmbench::qugan(39, 4),
    ];
    for device in [
        backends::sherbrooke(),
        backends::ankaa3(),
        backends::sherbrooke_2x(),
    ] {
        for circuit in &circuits {
            let r = QlosureMapper::default().map(circuit, &device);
            verify(circuit, &device, &r);
        }
    }
}

#[test]
fn queko_depth_factor_sanity() {
    // A mapped QUEKO circuit can never beat its provable optimum; a sane
    // mapper stays within a modest constant factor on Sherbrooke.
    let gen_device = backends::sycamore54();
    let device = backends::sherbrooke();
    let bench = queko::QuekoSpec::new(&gen_device, 80).seed(3).generate();
    let r = QlosureMapper::default().map(&bench.circuit, &device);
    verify(&bench.circuit, &device, &r);
    let factor = r.depth() as f64 / bench.optimal_depth as f64;
    assert!(factor >= 1.0, "cannot beat the optimum: {factor}");
    assert!(factor < 15.0, "depth factor exploded: {factor}");
}

#[test]
fn queko_hidden_layout_gives_zero_swaps() {
    // Feeding the generator's own layout back in: the circuit is already
    // hardware-compliant, so Qlosure must insert nothing.
    let device = backends::aspen16();
    let bench = queko::QuekoSpec::new(&device, 60).seed(5).generate();
    let layout = qlosure::Layout::from_assignment(&bench.optimal_layout, device.n_qubits());
    let r = QlosureMapper::default().map_from_layout(&bench.circuit, &device, layout);
    assert_eq!(r.swaps, 0);
    assert_eq!(r.depth(), bench.optimal_depth);
}

#[test]
fn all_cost_variants_and_modes_agree_on_semantics() {
    use affine::WeightMode;
    use qlosure::{CostVariant, InitialMapping};
    let circuit = qasmbench::cuccaro_adder(16);
    let device = backends::king_grid(4, 4);
    for cost in [
        CostVariant::DistanceOnly,
        CostVariant::LayerAdjusted,
        CostVariant::DependencyWeighted,
    ] {
        for weight_mode in [WeightMode::Graph, WeightMode::Affine, WeightMode::Auto] {
            for initial in [
                InitialMapping::Identity,
                InitialMapping::Bidirectional { passes: 2 },
            ] {
                let mapper = QlosureMapper::with_config(QlosureConfig {
                    cost,
                    weight_mode,
                    initial,
                    ..QlosureConfig::default()
                });
                let r = mapper.map(&circuit, &device);
                verify(&circuit, &device, &r);
            }
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let circuit = qasmbench::qft(16);
    let device = backends::ankaa3();
    let a = QlosureMapper::default().map(&circuit, &device);
    let b = QlosureMapper::default().map(&circuit, &device);
    assert_eq!(a.routed, b.routed);
    assert_eq!(a.initial_layout, b.initial_layout);
}

#[test]
fn device_too_small_is_reported() {
    let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[20];\ncx q[0], q[19];\n";
    let device = backends::line(4);
    let err = route_qasm(src, &device, &QlosureConfig::default()).unwrap_err();
    assert!(matches!(err, qlosure::PipelineError::DeviceTooSmall { .. }));
}

#[test]
fn pass_pipeline_outcome_matches_the_map_adapter_for_every_mapper() {
    // `Mapper::map` is a thin adapter over `Mapper::pipeline`: both forms
    // must agree, and the pipeline reports one timing entry per pass.
    let device = backends::ankaa3();
    let gen_device = backends::aspen16();
    let bench = queko::QuekoSpec::new(&gen_device, 20).seed(3).generate();
    for mapper in bench_support::all_mappers() {
        let direct = mapper.map(&bench.circuit, &device);
        verify(&bench.circuit, &device, &direct);
        let pipeline = mapper
            .pipeline()
            .unwrap_or_else(|| panic!("{} must be pipeline-based", mapper.name()));
        let outcome = pipeline.run(&bench.circuit, &device).unwrap();
        assert_eq!(outcome.result, direct, "{} diverged", mapper.name());
        assert_eq!(
            outcome.timings.len(),
            pipeline.describe().split('→').count(),
            "{}: one timing entry per composed pass",
            mapper.name()
        );
    }
}

#[test]
fn pipeline_error_sources_chain_to_the_wrapped_error() {
    use std::error::Error;
    let err = route_qasm("qreg q[", &backends::line(2), &QlosureConfig::default()).unwrap_err();
    let source = err.source().expect("parse failure carries a source");
    assert!(source.downcast_ref::<qasm::ParseError>().is_some());
    assert!(source.source().is_none(), "chain ends at the parser error");
}
