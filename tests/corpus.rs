//! QASM corpus tests: realistic QASMBench-style source files (user-defined
//! gates, broadcasts, conditionals) through the full parse → convert →
//! map → verify → emit pipeline, plus mutation tests proving the routing
//! verifier actually rejects corrupted outputs.

use circuit::{verify_routing, Circuit, Gate, GateKind};
use qlosure::{Mapper, QlosureMapper};
use topology::backends;

/// A Cuccaro adder written the way QASMBench distributes it: with
/// `majority`/`unmaj` gate declarations.
const ADDER_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
gate majority a, b, c
{
  cx c, b;
  cx c, a;
  ccx a, b, c;
}
gate unmaj a, b, c
{
  ccx a, b, c;
  cx c, a;
  cx a, b;
}
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
x a[0];
x b;
majority cin[0], b[0], a[0];
majority a[0], b[1], a[1];
majority a[1], b[2], a[2];
majority a[2], b[3], a[3];
cx a[3], cout[0];
unmaj a[2], b[3], a[3];
unmaj a[1], b[2], a[2];
unmaj a[0], b[1], a[1];
unmaj cin[0], b[0], a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
"#;

/// A variational ansatz with parameter expressions and a conditional.
const ANSATZ_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
gate layer(t) q0, q1, q2
{
  ry(t) q0;
  ry(t / 2) q1;
  ry(-t / 4) q2;
  cx q0, q1;
  cx q1, q2;
  barrier q0, q1, q2;
}
qreg q[6];
creg c[6];
h q;
layer(pi / 3) q[0], q[1], q[2];
layer(pi / 5) q[3], q[4], q[5];
cz q[2], q[3];
if (c == 0) x q[0];
measure q -> c;
"#;

/// GHZ with register broadcast and long-range fan-out.
const GHZ_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
cx q[0], q[1];
cx q[0], q[2];
cx q[0], q[3];
cx q[0], q[4];
cx q[0], q[5];
cx q[0], q[6];
cx q[0], q[7];
barrier q;
measure q -> c;
"#;

fn pipeline(src: &str, device: &topology::CouplingGraph) -> (Circuit, qlosure::MappingResult) {
    let program = qasm::parse(src).expect("corpus programs parse");
    let circuit = Circuit::from_qasm(&program).expect("corpus programs convert");
    let result = QlosureMapper::default().map(&circuit, device);
    verify_routing(
        &circuit,
        &result.routed,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect("corpus routing verifies");
    (circuit, result)
}

#[test]
fn adder_corpus_program() {
    let device = backends::line(10);
    let (circuit, result) = pipeline(ADDER_QASM, &device);
    assert_eq!(circuit.n_qubits(), 10);
    // 8 majority/unmaj blocks, each with one Toffoli (6 CX decomposed).
    assert_eq!(circuit.two_qubit_count(), 8 * 8 + 1);
    assert!(result.swaps > 0, "line topology forces routing");
}

#[test]
fn ansatz_corpus_program() {
    let device = backends::king_grid(3, 3);
    let (circuit, result) = pipeline(ANSATZ_QASM, &device);
    assert_eq!(circuit.n_qubits(), 6);
    assert_eq!(circuit.two_qubit_count(), 5);
    // Re-emission is parseable and swap-count faithful.
    let text = qasm::emit(&result.routed.to_qasm());
    let reparsed = Circuit::from_qasm(&qasm::parse(&text).unwrap()).unwrap();
    assert_eq!(reparsed.swap_count(), result.swaps);
}

#[test]
fn ghz_corpus_program() {
    let device = backends::sherbrooke();
    let (circuit, result) = pipeline(GHZ_QASM, &device);
    assert_eq!(circuit.two_qubit_count(), 7);
    // The heavy-hex degree bound (3) forces swaps for an 8-way fan-out.
    assert!(result.swaps >= 2, "got {}", result.swaps);
}

// ---------- Verifier mutation tests ----------
//
// The verifier is the safety net for every result in this repository; it
// must reject *every* class of corruption a buggy mapper could produce.

fn routed_ghz() -> (Circuit, qlosure::MappingResult, topology::CouplingGraph) {
    let device = backends::line(8);
    let (circuit, result) = pipeline(GHZ_QASM, &device);
    (circuit, result, device)
}

#[test]
fn verifier_rejects_dropped_swap() {
    let (circuit, result, device) = routed_ghz();
    let mut corrupted = Circuit::new(result.routed.n_qubits());
    let mut dropped = false;
    for g in result.routed.gates() {
        if !dropped && g.kind == GateKind::Swap {
            dropped = true;
            continue;
        }
        corrupted.push(g.clone());
    }
    assert!(dropped, "test needs at least one swap");
    verify_routing(
        &circuit,
        &corrupted,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect_err("dropping a swap must be caught");
}

#[test]
fn verifier_rejects_extra_logical_gate() {
    let (circuit, result, device) = routed_ghz();
    let mut corrupted = result.routed.clone();
    corrupted.push(Gate::one_q(GateKind::X, 0));
    verify_routing(
        &circuit,
        &corrupted,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect_err("an extra gate must be caught");
}

#[test]
fn verifier_rejects_mutated_parameter() {
    let device = backends::line(4);
    let mut circuit = Circuit::new(4);
    circuit.rz(0.5, 0);
    circuit.cx(0, 1);
    let result = QlosureMapper::default().map(&circuit, &device);
    let mut corrupted = result.routed.clone();
    for g in 0..corrupted.gates().len() {
        if corrupted.gates()[g].kind == GateKind::Rz {
            // Rebuild the circuit with a perturbed angle.
            let mut rebuilt = Circuit::new(4);
            for (i, gate) in corrupted.gates().iter().enumerate() {
                let mut gate = gate.clone();
                if i == g {
                    gate.params[0] += 1e-3;
                }
                rebuilt.push(gate);
            }
            corrupted = rebuilt;
            break;
        }
    }
    verify_routing(
        &circuit,
        &corrupted,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect_err("a perturbed rotation angle must be caught");
}

#[test]
fn verifier_rejects_swapped_operand_roles() {
    let device = backends::line(3);
    let mut circuit = Circuit::new(3);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    let result = QlosureMapper::default().map(&circuit, &device);
    let mut corrupted = Circuit::new(result.routed.n_qubits());
    let mut flipped = false;
    for g in result.routed.gates() {
        let mut g = g.clone();
        if !flipped && g.kind == GateKind::Cx {
            g.qubits.reverse();
            flipped = true;
        }
        corrupted.push(g);
    }
    verify_routing(
        &circuit,
        &corrupted,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect_err("control/target flip must be caught");
}

#[test]
fn verifier_rejects_wrong_initial_layout() {
    let (circuit, result, device) = routed_ghz();
    let mut wrong = result.initial_layout.clone();
    wrong.swap(0, 1);
    verify_routing(
        &circuit,
        &result.routed,
        &|a, b| device.is_adjacent(a, b),
        &wrong,
    )
    .expect_err("a wrong layout must be caught");
}

#[test]
fn verifier_rejects_spurious_extra_swap() {
    // One extra SWAP changes the final permutation: later gates land on
    // wrong logical qubits.
    let device = backends::line(4);
    let mut circuit = Circuit::new(4);
    circuit.cx(0, 1);
    circuit.cx(1, 2);
    circuit.cx(2, 3);
    let result = QlosureMapper::default().map(&circuit, &device);
    let mut corrupted = Circuit::new(4);
    corrupted.push(result.routed.gates()[0].clone());
    corrupted.swap(1, 2); // spurious
    for g in &result.routed.gates()[1..] {
        corrupted.push(g.clone());
    }
    verify_routing(
        &circuit,
        &corrupted,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .expect_err("a spurious swap must be caught");
}
