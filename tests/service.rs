//! Integration suite for the `qlosure-service` daemon: full socket round
//! trips against a live in-process `qlosured`, the determinism pin
//! (single-worker service results are bit-for-bit identical to direct
//! `Mapper::map`), priority scheduling, typed protocol errors, and
//! graceful drain-on-shutdown.

use service::proto::{encode_request, parse_response, Request, Response};
use service::{
    result_fingerprint, Client, ClientError, DaemonConfig, DaemonHandle, ErrorCode, Priority,
    ServiceConfig,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Spawns a daemon on a unique temp socket.
fn daemon(tag: &str, workers: usize) -> DaemonHandle {
    daemon_with(tag, workers, 256, 1024)
}

fn daemon_with(tag: &str, workers: usize, queue: usize, results: usize) -> DaemonHandle {
    let socket =
        std::env::temp_dir().join(format!("qlosured-test-{tag}-{}.sock", std::process::id()));
    service::daemon::spawn(DaemonConfig {
        socket,
        service: ServiceConfig {
            workers,
            queue_capacity: queue,
            results_capacity: results,
        },
    })
    .expect("daemon binds its socket")
}

/// QUEKO QASM on the named backend (the standard smoke workload).
fn queko_qasm(backend: &str, depth: usize, seed: u64) -> String {
    let device = topology::backends::by_name(backend).expect("backend resolves");
    let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
    qasm::emit(&bench.circuit.to_qasm())
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn submit_wait_roundtrip_returns_a_verified_summary() {
    let daemon = daemon("roundtrip", 2);
    let mut client = Client::connect(&daemon.socket).unwrap();
    let qasm_src = queko_qasm("aspen16", 20, 7);
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(summary.pipeline, "weights → identity → qlosure");
    assert_eq!(summary.initial_layout.len(), 16);
    assert_eq!(summary.final_layout.len(), 16);
    assert!(summary.queue_seconds >= 0.0 && summary.seconds >= 0.0);
    assert!(summary
        .pass_seconds
        .iter()
        .any(|(label, _)| label == "routing:qlosure"));
    assert_eq!(summary.success_ppm, None, "fidelity is opt-in");
    // Stats reflect the completed job and carry the cache counters.
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.protocol, service::PROTOCOL_VERSION);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn hier_strategy_round_trips_without_a_version_bump() {
    let daemon = daemon("strategy", 2);
    let mut client = Client::connect(&daemon.socket).unwrap();
    let qasm_src = queko_qasm("aspen16", 20, 5);
    // strategy=hier swaps in the hierarchical pipeline — same protocol
    // version, additive request field only.
    let id = client
        .submit_with_strategy(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
            service::Strategy::Hier,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(
        summary.pipeline,
        "weights → regions → hier-layout → hier-route"
    );
    assert!(summary
        .pass_seconds
        .iter()
        .any(|(label, _)| label == "routing:hier-route"));
    // auto on a small device stays flat.
    let id = client
        .submit_with_strategy(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
            service::Strategy::Auto,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(summary.pipeline, "weights → identity → qlosure");
    // Stats carry the new cache counters (additive response fields), and
    // the hier submission must actually have exercised the fragment memo.
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 2);
    assert!(
        stats.subroute_hits + stats.subroute_misses > 0,
        "hier submission must touch the sub-routing memo"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn single_worker_service_matches_direct_map_bit_for_bit() {
    // The acceptance pin: an ENGINE_THREADS=1-equivalent service (one
    // worker) must produce results bit-for-bit identical to calling
    // `Mapper::map` directly on the same inputs, fingerprints included.
    let daemon = daemon("bitforbit", 1);
    let mut client = Client::connect(&daemon.socket).unwrap();
    for (mapper_name, depth, seed) in [
        ("qlosure", 30, 0),
        ("qlosure", 60, 1),
        ("sabre", 30, 2),
        ("tket", 30, 3),
    ] {
        let device = topology::backends::by_name("aspen16").unwrap();
        let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
        let qasm_src = qasm::emit(&bench.circuit.to_qasm());
        let id = client
            .submit("aspen16", mapper_name, &qasm_src, Priority::Batch, false)
            .unwrap();
        let summary = client.wait(id, WAIT).unwrap();

        // Direct, in-process reference on the *same* decoded circuit: the
        // QASM round trip is a parse→emit fixed point (pinned by the
        // corpus property suite), so re-parsing here reproduces the
        // daemon's input exactly.
        let program = qasm::parse(&qasm_src).unwrap();
        let circuit = circuit::Circuit::from_qasm(&program).unwrap();
        let direct = service::registry::mapper_by_name(mapper_name)
            .unwrap()
            .map(&circuit, &device);

        assert_eq!(summary.swaps, direct.swaps as u64, "{mapper_name}-d{depth}");
        assert_eq!(summary.depth, direct.routed.depth() as u64);
        assert_eq!(summary.qops, direct.routed.qop_count() as u64);
        assert_eq!(summary.initial_layout, direct.initial_layout);
        assert_eq!(summary.final_layout, direct.final_layout);
        assert_eq!(
            summary.fingerprint,
            format!("{:016x}", result_fingerprint(&direct)),
            "{mapper_name}-d{depth}: full-result fingerprint must match"
        );
    }
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn interactive_requests_overtake_queued_batch_work() {
    let daemon = daemon("priority", 1);
    let mut client = Client::connect(&daemon.socket).unwrap();
    // A slow job pins the single worker; batch jobs queue behind it; a
    // late interactive job must finish before the earlier batch tail.
    let slow = client
        .submit(
            "king9",
            "qlosure",
            &queko_qasm("king9", 150, 1),
            Priority::Batch,
            false,
        )
        .unwrap();
    let batch: Vec<u64> = (0..4)
        .map(|seed| {
            client
                .submit(
                    "aspen16",
                    "qlosure",
                    &queko_qasm("aspen16", 15, 10 + seed),
                    Priority::Batch,
                    false,
                )
                .unwrap()
        })
        .collect();
    let interactive = client
        .submit(
            "aspen16",
            "qlosure",
            &queko_qasm("aspen16", 15, 99),
            Priority::Interactive,
            false,
        )
        .unwrap();
    let interactive_seq = client.wait(interactive, WAIT).unwrap().seq;
    let last_batch_seq = client.wait(*batch.last().unwrap(), WAIT).unwrap().seq;
    assert!(
        interactive_seq < last_batch_seq,
        "interactive seq {interactive_seq} must beat the batch tail seq {last_batch_seq}"
    );
    client.wait(slow, WAIT).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn fidelity_opt_in_adds_success_ppm_over_the_wire() {
    let daemon = daemon("fidelity", 2);
    let mut client = Client::connect(&daemon.socket).unwrap();
    let qasm_src = queko_qasm("aspen16", 20, 4);
    let with = client
        .submit("aspen16", "qlosure", &qasm_src, Priority::Batch, true)
        .unwrap();
    let summary = client.wait(with, WAIT).unwrap();
    let ppm = summary.success_ppm.expect("opt-in reports success_ppm");
    assert!((1..=1_000_000).contains(&ppm), "got {ppm}");
    assert!(summary.pipeline.ends_with("fidelity"));
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn typed_errors_for_bad_submissions_and_unknown_ids() {
    let daemon = daemon("typed-errors", 1);
    let mut client = Client::connect(&daemon.socket).unwrap();
    let expect_code = |result: Result<u64, ClientError>, want: ErrorCode| match result {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, want),
        other => panic!("expected server error {want:?}, got {other:?}"),
    };
    let ghz = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[2];\n";
    expect_code(
        client.submit("eagle-9000", "qlosure", ghz, Priority::Batch, false),
        ErrorCode::UnknownBackend,
    );
    expect_code(
        client.submit("aspen16", "magic", ghz, Priority::Batch, false),
        ErrorCode::UnknownMapper,
    );
    expect_code(
        client.submit("aspen16", "qlosure", "qreg q[", Priority::Batch, false),
        ErrorCode::QasmError,
    );
    expect_code(
        client.submit(
            "line:3",
            "qlosure",
            "OPENQASM 2.0;\nqreg q[9];\ncx q[0], q[8];\n",
            Priority::Batch,
            false,
        ),
        ErrorCode::DeviceTooSmall,
    );
    match client.poll(12345).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown-id, got {other:?}"),
    }
    // The connection survived five rejected requests.
    assert_eq!(client.stats().unwrap().submitted, 0);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn version_mismatch_and_malformed_frames_are_rejected_politely() {
    let daemon = daemon("rawframes", 1);
    let stream = UnixStream::connect(&daemon.socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> Response {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse_response(reply.trim_end()).unwrap()
    };
    // Wrong protocol version → typed version-mismatch (the ROADMAP rule).
    let mismatched = encode_request(&Request::Stats)
        .unwrap()
        .replace("\"v\":1", "\"v\":9");
    match roundtrip(&mismatched) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected version mismatch, got {other:?}"),
    }
    // Garbage → bad-request, and the connection keeps serving.
    match roundtrip("this is not json") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request, got {other:?}"),
    }
    match roundtrip(&encode_request(&Request::Stats).unwrap()) {
        Response::Stats(stats) => assert_eq!(stats.submitted, 0),
        other => panic!("expected stats after recovery, got {other:?}"),
    }
    drop((reader, writer));
    let mut client = Client::connect(&daemon.socket).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_queued_jobs_and_removes_the_socket() {
    let daemon = daemon("drain", 1);
    let socket = daemon.socket.clone();
    let mut client = Client::connect(&socket).unwrap();
    let ids: Vec<u64> = (0..3)
        .map(|seed| {
            client
                .submit(
                    "aspen16",
                    "qlosure",
                    &queko_qasm("aspen16", 40, seed),
                    Priority::Batch,
                    false,
                )
                .unwrap()
        })
        .collect();
    // Shut down while jobs are still queued/running.
    let pending = client.shutdown().unwrap();
    assert!(pending >= 1, "shutdown acknowledged with work in flight");
    let stats = daemon.join().unwrap();
    assert_eq!(
        stats.completed,
        ids.len() as u64,
        "every admitted job drains before exit"
    );
    assert_eq!(stats.failed, 0);
    assert!(!socket.exists(), "socket file is removed on exit");
    // Late clients are refused outright (connection refused / not found).
    assert!(Client::connect(&socket).is_err());
}

#[test]
fn full_admission_queue_rejects_with_queue_full() {
    // Single worker, admission bound of 1: the slow job occupies the
    // worker, one more parks in the engine buffer/queue, and pushing
    // enough extra jobs must eventually hit a typed queue-full rejection.
    let daemon = daemon_with("queuefull", 1, 1, 64);
    let mut client = Client::connect(&daemon.socket).unwrap();
    let slow = queko_qasm("king9", 120, 3);
    let quick = queko_qasm("aspen16", 10, 1);
    client
        .submit("king9", "qlosure", &slow, Priority::Batch, false)
        .unwrap();
    let mut saw_queue_full = false;
    for _ in 0..8 {
        match client.submit("aspen16", "qlosure", &quick, Priority::Batch, false) {
            Ok(_) => continue,
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::QueueFull);
                saw_queue_full = true;
                break;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(
        saw_queue_full,
        "8 rapid submissions over a capacity-1 queue must trip admission"
    );
    assert!(client.stats().unwrap().rejected >= 1);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}
