//! Integration suite for the `qlosure-service` daemon: full socket round
//! trips against a live in-process `qlosured` (over Unix sockets *and*
//! TCP), the determinism pin (single-worker service results are
//! bit-for-bit identical to direct `Mapper::map`), priority scheduling,
//! typed protocol errors, graceful drain-on-shutdown, the daemon
//! lifecycle hardening (no socket stealing, stalled connections timed
//! out, connection cap), and the `qlosure-router` content-sharding tier.

use service::proto::{encode_request, parse_response, Request, Response};
use service::{
    content_shard, result_fingerprint, Client, ClientError, DaemonConfig, DaemonHandle, Endpoint,
    ErrorCode, Priority, RouterConfig, ServiceConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// A unique temp socket path per test.
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qlosured-test-{tag}-{}.sock", std::process::id()))
}

/// Spawns a daemon on a unique temp socket.
fn daemon(tag: &str, workers: usize) -> DaemonHandle {
    daemon_with(tag, workers, 256, 1024)
}

fn daemon_with(tag: &str, workers: usize, queue: usize, results: usize) -> DaemonHandle {
    let mut config = DaemonConfig::at(socket_path(tag));
    config.service = ServiceConfig {
        workers,
        queue_capacity: queue,
        results_capacity: results,
        ..ServiceConfig::default()
    };
    service::daemon::spawn(config).expect("daemon binds its socket")
}

/// The Unix socket path a daemon is serving on (these tests bind Unix
/// endpoints unless they say otherwise).
fn unix_path(daemon: &DaemonHandle) -> PathBuf {
    match &daemon.endpoint {
        Endpoint::Unix(path) => path.clone(),
        Endpoint::Tcp(addr) => panic!("expected a unix endpoint, got tcp:{addr}"),
    }
}

fn connect(daemon: &DaemonHandle) -> Client {
    Client::connect_endpoint(&daemon.endpoint).expect("daemon accepts connections")
}

/// QUEKO QASM on the named backend (the standard smoke workload).
fn queko_qasm(backend: &str, depth: usize, seed: u64) -> String {
    let device = topology::backends::by_name(backend).expect("backend resolves");
    let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
    qasm::emit(&bench.circuit.to_qasm())
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn submit_wait_roundtrip_returns_a_verified_summary() {
    let daemon = daemon("roundtrip", 2);
    let mut client = connect(&daemon);
    let qasm_src = queko_qasm("aspen16", 20, 7);
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(summary.pipeline, "weights → identity → qlosure");
    assert_eq!(summary.initial_layout.len(), 16);
    assert_eq!(summary.final_layout.len(), 16);
    assert!(summary.queue_seconds >= 0.0 && summary.seconds >= 0.0);
    assert!(summary
        .pass_seconds
        .iter()
        .any(|(label, _)| label == "routing:qlosure"));
    assert_eq!(summary.success_ppm, None, "fidelity is opt-in");
    // Stats reflect the completed job and carry the cache counters.
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.protocol, service::PROTOCOL_VERSION);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn hier_strategy_round_trips_without_a_version_bump() {
    let daemon = daemon("strategy", 2);
    let mut client = connect(&daemon);
    let qasm_src = queko_qasm("aspen16", 20, 5);
    // strategy=hier swaps in the hierarchical pipeline — same protocol
    // version, additive request field only.
    let id = client
        .submit_with_strategy(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
            service::Strategy::Hier,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(
        summary.pipeline,
        "weights → regions → hier-layout → hier-route"
    );
    assert!(summary
        .pass_seconds
        .iter()
        .any(|(label, _)| label == "routing:hier-route"));
    // auto on a small device stays flat.
    let id = client
        .submit_with_strategy(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
            service::Strategy::Auto,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(summary.pipeline, "weights → identity → qlosure");
    // Stats carry the new cache counters (additive response fields), and
    // the hier submission must actually have exercised the fragment memo.
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 2);
    assert!(
        stats.subroute_hits + stats.subroute_misses > 0,
        "hier submission must touch the sub-routing memo"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn single_worker_service_matches_direct_map_bit_for_bit() {
    // The acceptance pin: an ENGINE_THREADS=1-equivalent service (one
    // worker) must produce results bit-for-bit identical to calling
    // `Mapper::map` directly on the same inputs, fingerprints included.
    let daemon = daemon("bitforbit", 1);
    let mut client = connect(&daemon);
    for (mapper_name, depth, seed) in [
        ("qlosure", 30, 0),
        ("qlosure", 60, 1),
        ("sabre", 30, 2),
        ("tket", 30, 3),
    ] {
        let device = topology::backends::by_name("aspen16").unwrap();
        let bench = queko::QuekoSpec::new(&device, depth).seed(seed).generate();
        let qasm_src = qasm::emit(&bench.circuit.to_qasm());
        let id = client
            .submit("aspen16", mapper_name, &qasm_src, Priority::Batch, false)
            .unwrap();
        let summary = client.wait(id, WAIT).unwrap();

        // Direct, in-process reference on the *same* decoded circuit: the
        // QASM round trip is a parse→emit fixed point (pinned by the
        // corpus property suite), so re-parsing here reproduces the
        // daemon's input exactly.
        let program = qasm::parse(&qasm_src).unwrap();
        let circuit = circuit::Circuit::from_qasm(&program).unwrap();
        let direct = service::registry::mapper_by_name(mapper_name)
            .unwrap()
            .map(&circuit, &device);

        assert_eq!(summary.swaps, direct.swaps as u64, "{mapper_name}-d{depth}");
        assert_eq!(summary.depth, direct.routed.depth() as u64);
        assert_eq!(summary.qops, direct.routed.qop_count() as u64);
        assert_eq!(summary.initial_layout, direct.initial_layout);
        assert_eq!(summary.final_layout, direct.final_layout);
        assert_eq!(
            summary.fingerprint,
            format!("{:016x}", result_fingerprint(&direct)),
            "{mapper_name}-d{depth}: full-result fingerprint must match"
        );
    }
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn interactive_requests_overtake_queued_batch_work() {
    let daemon = daemon("priority", 1);
    let mut client = connect(&daemon);
    // A slow job pins the single worker; batch jobs queue behind it; a
    // late interactive job must finish before the earlier batch tail.
    let slow = client
        .submit(
            "king9",
            "qlosure",
            &queko_qasm("king9", 150, 1),
            Priority::Batch,
            false,
        )
        .unwrap();
    let batch: Vec<u64> = (0..4)
        .map(|seed| {
            client
                .submit(
                    "aspen16",
                    "qlosure",
                    &queko_qasm("aspen16", 15, 10 + seed),
                    Priority::Batch,
                    false,
                )
                .unwrap()
        })
        .collect();
    let interactive = client
        .submit(
            "aspen16",
            "qlosure",
            &queko_qasm("aspen16", 15, 99),
            Priority::Interactive,
            false,
        )
        .unwrap();
    let interactive_seq = client.wait(interactive, WAIT).unwrap().seq;
    let last_batch_seq = client.wait(*batch.last().unwrap(), WAIT).unwrap().seq;
    assert!(
        interactive_seq < last_batch_seq,
        "interactive seq {interactive_seq} must beat the batch tail seq {last_batch_seq}"
    );
    client.wait(slow, WAIT).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn fidelity_opt_in_adds_success_ppm_over_the_wire() {
    let daemon = daemon("fidelity", 2);
    let mut client = connect(&daemon);
    let qasm_src = queko_qasm("aspen16", 20, 4);
    let with = client
        .submit("aspen16", "qlosure", &qasm_src, Priority::Batch, true)
        .unwrap();
    let summary = client.wait(with, WAIT).unwrap();
    let ppm = summary.success_ppm.expect("opt-in reports success_ppm");
    assert!((1..=1_000_000).contains(&ppm), "got {ppm}");
    assert!(summary.pipeline.ends_with("fidelity"));
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn typed_errors_for_bad_submissions_and_unknown_ids() {
    let daemon = daemon("typed-errors", 1);
    let mut client = connect(&daemon);
    let expect_code = |result: Result<u64, ClientError>, want: ErrorCode| match result {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, want),
        other => panic!("expected server error {want:?}, got {other:?}"),
    };
    let ghz = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[2];\n";
    expect_code(
        client.submit("eagle-9000", "qlosure", ghz, Priority::Batch, false),
        ErrorCode::UnknownBackend,
    );
    expect_code(
        client.submit("aspen16", "magic", ghz, Priority::Batch, false),
        ErrorCode::UnknownMapper,
    );
    expect_code(
        client.submit("aspen16", "qlosure", "qreg q[", Priority::Batch, false),
        ErrorCode::QasmError,
    );
    expect_code(
        client.submit(
            "line:3",
            "qlosure",
            "OPENQASM 2.0;\nqreg q[9];\ncx q[0], q[8];\n",
            Priority::Batch,
            false,
        ),
        ErrorCode::DeviceTooSmall,
    );
    match client.poll(12345).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown-id, got {other:?}"),
    }
    // The connection survived five rejected requests.
    assert_eq!(client.stats().unwrap().submitted, 0);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn version_mismatch_and_malformed_frames_are_rejected_politely() {
    let daemon = daemon("rawframes", 1);
    let stream = UnixStream::connect(unix_path(&daemon)).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> Response {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse_response(reply.trim_end()).unwrap()
    };
    // Wrong protocol version → typed version-mismatch (the ROADMAP rule).
    let mismatched = encode_request(&Request::Stats)
        .unwrap()
        .replace("\"v\":1", "\"v\":9");
    match roundtrip(&mismatched) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected version mismatch, got {other:?}"),
    }
    // Garbage → bad-request, and the connection keeps serving.
    match roundtrip("this is not json") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request, got {other:?}"),
    }
    match roundtrip(&encode_request(&Request::Stats).unwrap()) {
        Response::Stats(stats) => assert_eq!(stats.submitted, 0),
        other => panic!("expected stats after recovery, got {other:?}"),
    }
    drop((reader, writer));
    let mut client = connect(&daemon);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_queued_jobs_and_removes_the_socket() {
    let daemon = daemon("drain", 1);
    let socket = unix_path(&daemon);
    let mut client = Client::connect(&socket).unwrap();
    let ids: Vec<u64> = (0..3)
        .map(|seed| {
            client
                .submit(
                    "aspen16",
                    "qlosure",
                    &queko_qasm("aspen16", 40, seed),
                    Priority::Batch,
                    false,
                )
                .unwrap()
        })
        .collect();
    // Shut down while jobs are still queued/running.
    let pending = client.shutdown().unwrap();
    assert!(pending >= 1, "shutdown acknowledged with work in flight");
    let stats = daemon.join().unwrap();
    assert_eq!(
        stats.completed,
        ids.len() as u64,
        "every admitted job drains before exit"
    );
    assert_eq!(stats.failed, 0);
    assert!(!socket.exists(), "socket file is removed on exit");
    // Late clients are refused outright (connection refused / not found).
    assert!(Client::connect(&socket).is_err());
}

#[test]
fn full_admission_queue_rejects_with_queue_full() {
    // Single worker, admission bound of 1: the slow job occupies the
    // worker, one more parks in the engine buffer/queue, and pushing
    // enough extra jobs must eventually hit a typed queue-full rejection.
    let daemon = daemon_with("queuefull", 1, 1, 64);
    let mut client = connect(&daemon);
    let slow = queko_qasm("king9", 120, 3);
    let quick = queko_qasm("aspen16", 10, 1);
    client
        .submit("king9", "qlosure", &slow, Priority::Batch, false)
        .unwrap();
    let mut saw_queue_full = false;
    for _ in 0..8 {
        match client.submit("aspen16", "qlosure", &quick, Priority::Batch, false) {
            Ok(_) => continue,
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::QueueFull);
                saw_queue_full = true;
                break;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(
        saw_queue_full,
        "8 rapid submissions over a capacity-1 queue must trip admission"
    );
    assert!(client.stats().unwrap().rejected >= 1);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

// ───────────────────────── lifecycle hardening ─────────────────────────

#[test]
fn a_second_daemon_cannot_steal_a_live_socket() {
    let first = daemon("no-steal", 1);
    let socket = unix_path(&first);
    // The regression: binding a second daemon on the same path used to
    // silently unlink the live socket, orphaning the first daemon's
    // clients. Now the bind probes, finds a live daemon, and refuses.
    let err = match service::daemon::spawn(DaemonConfig::at(&socket)) {
        Err(e) => e,
        Ok(_) => panic!("second daemon must not bind a live socket"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
    // The first daemon kept its socket and keeps serving.
    let mut client = Client::connect(&socket).unwrap();
    assert_eq!(client.stats().unwrap().submitted, 0);
    client.shutdown().unwrap();
    first.join().unwrap();
}

#[test]
fn a_stale_socket_file_is_replaced_not_fatal() {
    let socket = socket_path("stale-file");
    // A crashed daemon's leftover: a socket file nothing listens on.
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists(), "the stale file is on disk");
    let daemon = service::daemon::spawn(DaemonConfig::at(&socket))
        .expect("a stale socket file must be unlinked and replaced");
    let mut client = connect(&daemon);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn stalled_connections_are_disconnected_at_the_idle_deadline() {
    let mut config = DaemonConfig::at(socket_path("slowloris"));
    config.service.workers = 1;
    config.read_timeout = Duration::from_millis(300);
    let daemon = service::daemon::spawn(config).unwrap();
    // A connect-and-stall client: opens the connection, never sends a
    // complete frame. The daemon must hang up at the idle deadline
    // instead of pinning the connection thread forever.
    let mut stall = UnixStream::connect(unix_path(&daemon)).unwrap();
    stall.write_all(b"{\"never-finished").unwrap(); // partial frame
    stall.flush().unwrap();
    stall
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    match stall.read(&mut buf) {
        Ok(0) => {} // clean server-side hangup
        Ok(n) => panic!("expected a hangup, got {n} bytes"),
        Err(e) => panic!("expected EOF within the read timeout, got {e}"),
    }
    // The daemon is still healthy for well-behaved clients.
    let mut client = connect(&daemon);
    assert_eq!(client.stats().unwrap().submitted, 0);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn connections_over_the_cap_get_a_typed_busy_frame() {
    let mut config = DaemonConfig::at(socket_path("busy"));
    config.service.workers = 1;
    config.max_connections = 1;
    let daemon = service::daemon::spawn(config).unwrap();
    // Occupy the only slot, with a round trip so the accept definitely
    // registered before the second connect races it.
    let mut occupant = connect(&daemon);
    assert_eq!(occupant.stats().unwrap().submitted, 0);
    // The next connection must be refused with a typed busy frame, not
    // silently dropped and not queued forever.
    let refused = UnixStream::connect(unix_path(&daemon)).unwrap();
    let mut reader = BufReader::new(refused);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match parse_response(reply.trim_end()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected busy, got {other:?}"),
    }
    occupant.shutdown().unwrap();
    daemon.join().unwrap();
}

// ───────────────────────────── TCP mirror ─────────────────────────────

/// Spawns a daemon on a kernel-assigned TCP port.
fn tcp_daemon(workers: usize) -> DaemonHandle {
    let mut config = DaemonConfig::listening(Endpoint::Tcp("127.0.0.1:0".to_string()));
    config.service.workers = workers;
    service::daemon::spawn(config).expect("daemon binds a TCP port")
}

#[test]
fn tcp_submit_wait_roundtrip_returns_a_verified_summary() {
    let daemon = tcp_daemon(2);
    assert!(
        matches!(&daemon.endpoint, Endpoint::Tcp(addr) if !addr.ends_with(":0")),
        "port 0 resolves to the bound port"
    );
    let mut client = connect(&daemon);
    let qasm_src = queko_qasm("aspen16", 20, 7);
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
        )
        .unwrap();
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    assert_eq!(summary.pipeline, "weights → identity → qlosure");
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.protocol, service::PROTOCOL_VERSION);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn tcp_version_mismatch_and_malformed_frames_are_rejected_politely() {
    // The same polite-rejection suite as the Unix transport: frames are
    // transport-agnostic, so the behavior must be too.
    let daemon = tcp_daemon(1);
    let Endpoint::Tcp(addr) = &daemon.endpoint else {
        panic!("tcp daemon has a tcp endpoint");
    };
    let stream = std::net::TcpStream::connect(addr.as_str()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |line: &str| -> Response {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        parse_response(reply.trim_end()).unwrap()
    };
    let mismatched = encode_request(&Request::Stats)
        .unwrap()
        .replace("\"v\":1", "\"v\":9");
    match roundtrip(&mismatched) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected version mismatch, got {other:?}"),
    }
    match roundtrip("this is not json") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request, got {other:?}"),
    }
    match roundtrip(&encode_request(&Request::Stats).unwrap()) {
        Response::Stats(stats) => assert_eq!(stats.submitted, 0),
        other => panic!("expected stats after recovery, got {other:?}"),
    }
    drop((reader, writer));
    let mut client = connect(&daemon);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn tcp_graceful_shutdown_drains_queued_jobs() {
    let daemon = tcp_daemon(1);
    let mut client = connect(&daemon);
    let ids: Vec<u64> = (0..3)
        .map(|seed| {
            client
                .submit(
                    "aspen16",
                    "qlosure",
                    &queko_qasm("aspen16", 40, seed),
                    Priority::Batch,
                    false,
                )
                .unwrap()
        })
        .collect();
    let pending = client.shutdown().unwrap();
    assert!(pending >= 1, "shutdown acknowledged with work in flight");
    let stats = daemon.join().unwrap();
    assert_eq!(
        stats.completed,
        ids.len() as u64,
        "every admitted job drains before exit"
    );
    assert_eq!(stats.failed, 0);
}

// ──────────────────────────── metrics + router ────────────────────────

#[test]
fn metrics_round_trip_reports_percentiles_and_pass_timings() {
    let daemon = daemon("metrics", 2);
    let mut client = connect(&daemon);
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &queko_qasm("aspen16", 20, 11),
            Priority::Interactive,
            false,
        )
        .unwrap();
    client.wait(id, WAIT).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.stats.completed, 1);
    assert_eq!(metrics.queue_samples, 1);
    assert!(metrics.queue_p50 <= metrics.queue_max);
    assert!(
        metrics
            .passes
            .iter()
            .any(|(label, runs, _)| label == "routing:qlosure" && *runs == 1),
        "pass aggregates must cover the routed job: {:?}",
        metrics.passes
    );
    // The scrape rendering carries the counters as flat `name value`.
    let text = metrics.render();
    assert!(text.contains("qlosure_jobs_completed_total 1"));
    assert!(text.contains("qlosure_queue_seconds{quantile=\"0.99\"}"));
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

/// Depth-first search for a span named `name` anywhere in the tree.
fn find_span<'a>(node: &'a service::SpanNode, name: &str) -> Option<&'a service::SpanNode> {
    if node.name == name {
        return Some(node);
    }
    node.children
        .iter()
        .find_map(|child| find_span(child, name))
}

#[test]
fn trace_round_trip_nests_intake_pass_and_fragment_spans() {
    let daemon = daemon("trace", 2);
    let mut client = connect(&daemon);
    let qasm_src = queko_qasm("aspen16", 20, 3);
    let id = client
        .submit_traced(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
            service::Strategy::Hier,
            true,
        )
        .unwrap();
    client.wait(id, WAIT).unwrap();
    let (trace_id, root) = client.trace(id).unwrap();
    assert_eq!(
        trace_id.len(),
        16,
        "trace IDs are 16 hex digits: {trace_id}"
    );
    // The tree nests intake → pass → fragment: queue wait and the
    // pipeline stages sit directly under the job root, and the
    // hierarchical router's per-fragment spans sit under its pass span.
    assert_eq!(root.name, "job");
    assert_eq!(root.start_ns, 0, "wire timestamps are root-relative");
    assert!(root.end_ns > 0);
    let wait_span = find_span(&root, "intake:queue-wait").expect("queue-wait span");
    assert!(root.children.iter().any(|c| c.name == wait_span.name));
    assert!(find_span(&root, "engine:pickup").is_some());
    let route = find_span(&root, "routing:hier-route").expect("hier routing pass span");
    let fragment = find_span(route, "hier:fragment").expect("fragment spans nest under the pass");
    assert!(
        fragment.notes.iter().any(|(key, value)| key == "plan_tier"
            && ["exact", "canonical", "disk", "miss"].contains(&value.as_str())),
        "fragments carry their plan-store tier: {:?}",
        fragment.notes
    );
    // An untraced fast job retains nothing and answers typed.
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &qasm_src,
            Priority::Interactive,
            false,
        )
        .unwrap();
    client.wait(id, WAIT).unwrap();
    match client.trace(id) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown-id for an untraced job, got {other:?}"),
    }
    // The scrape gauges ride along the same metrics frame (additive).
    let metrics = client.metrics().unwrap();
    assert!(metrics.uptime_seconds > 0.0);
    assert!(metrics.render().contains("qlosure_uptime_seconds "));
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn router_stitches_its_span_around_the_shard_tree() {
    let shard_a = daemon("trace-shard-a", 1);
    let shard_b = daemon("trace-shard-b", 1);
    let router = service::router::spawn(RouterConfig::fronting(
        Endpoint::Tcp("127.0.0.1:0".to_string()),
        vec![shard_a.endpoint.clone(), shard_b.endpoint.clone()],
    ))
    .unwrap();
    let mut client = Client::connect_endpoint(&router.endpoint).unwrap();
    let id = client
        .submit_traced(
            "aspen16",
            "qlosure",
            &queko_qasm("aspen16", 10, 9),
            Priority::Interactive,
            false,
            service::Strategy::Flat,
            true,
        )
        .unwrap();
    client.wait(id, WAIT).unwrap();
    // The routed trace comes back wrapped: a router span recording the
    // shard the job landed on, with the shard's own tree (and its trace
    // ID, propagated over the wire) nested inside.
    let (trace_id, root) = client.trace(id).unwrap();
    assert_eq!(trace_id.len(), 16);
    assert_eq!(root.name, "router:route");
    let expected_shard = content_shard("aspen16", 2).to_string();
    assert!(
        root.notes
            .iter()
            .any(|(key, value)| key == "shard" && *value == expected_shard),
        "router span must record the landing shard: {:?}",
        root.notes
    );
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].name, "job");
    assert!(find_span(&root, "intake:queue-wait").is_some());
    assert!(find_span(&root, "routing:qlosure").is_some());
    client.shutdown().unwrap();
    router.join().unwrap();
    shard_a.join().unwrap();
    shard_b.join().unwrap();
}

#[test]
fn router_partitions_devices_across_shards_and_remaps_ids() {
    let shard_a = daemon("router-shard-a", 1);
    let shard_b = daemon("router-shard-b", 1);
    let shards = vec![shard_a.endpoint.clone(), shard_b.endpoint.clone()];
    let router = service::router::spawn(RouterConfig::fronting(
        Endpoint::Tcp("127.0.0.1:0".to_string()),
        shards.clone(),
    ))
    .unwrap();
    let mut client = Client::connect_endpoint(&router.endpoint).unwrap();

    // A roster of distinct devices, routed one job each through the
    // router. Track the expected per-shard submit counts by the same
    // content key the router uses.
    let backends: Vec<String> = (4..12).map(|n| format!("line:{n}")).collect();
    let mut expected = [0u64; 2];
    for backend in &backends {
        expected[content_shard(backend, 2)] += 1;
        let id = client
            .submit(
                backend,
                "qlosure",
                &queko_qasm(backend, 10, 1),
                Priority::Interactive,
                false,
            )
            .unwrap();
        let summary = client.wait(id, WAIT).unwrap();
        assert!(summary.verified, "{backend} must route and verify");
    }
    assert!(
        expected[0] > 0 && expected[1] > 0,
        "the roster must exercise both shards: {expected:?}"
    );

    // The router's aggregate view sums the fleet.
    let total = client.stats().unwrap();
    assert_eq!(total.submitted, backends.len() as u64);
    assert_eq!(total.completed, backends.len() as u64);

    // Each shard saw exactly the devices that hash to it — the
    // cache-locality contract, asserted via per-shard stats.
    for (idx, endpoint) in shards.iter().enumerate() {
        let mut direct = Client::connect_endpoint(endpoint).unwrap();
        let stats = direct.stats().unwrap();
        assert_eq!(
            stats.submitted, expected[idx],
            "shard {idx} must see only its content keys"
        );
    }

    // Shutdown through the router drains every shard, then the router.
    client.shutdown().unwrap();
    router.join().unwrap();
    assert_eq!(shard_a.join().unwrap().failed, 0);
    assert_eq!(shard_b.join().unwrap().failed, 0);
}

#[test]
fn router_passes_shard_errors_through_and_reports_dead_shards_typed() {
    let shard = daemon("router-errors", 1);
    // One live shard, one endpoint nothing listens on.
    let dead = Endpoint::Unix(socket_path("router-dead-shard"));
    let live_first = vec![shard.endpoint.clone(), dead];
    let router = service::router::spawn(RouterConfig::fronting(
        Endpoint::Tcp("127.0.0.1:0".to_string()),
        live_first,
    ))
    .unwrap();
    let mut client = Client::connect_endpoint(&router.endpoint).unwrap();

    // A typed shard error passes through unchanged: unknown backend on
    // whichever shard the key routes to — make sure we pick a key for
    // the live shard 0. (Vary a suffix rather than appending one fixed
    // character: FNV-1a's prime is odd, so `hash % 2` is the hash's
    // parity and appending an even byte can never flip it.)
    let bogus = (0..)
        .map(|i| format!("eagle-9000-{i}"))
        .find(|key| content_shard(key, 2) == 0)
        .expect("a bogus key lands on the live shard");
    let ghz = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0], q[2];\n";
    match client.submit(&bogus, "qlosure", ghz, Priority::Batch, false) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownBackend),
        other => panic!("expected the shard's typed error, got {other:?}"),
    }

    // A key routed to the dead shard answers shard-unavailable, typed.
    let unlucky = (0..)
        .map(|i| format!("line:5-{i}"))
        .find(|key| content_shard(key, 2) == 1)
        .expect("an unlucky key lands on the dead shard");
    match client.submit(
        &unlucky,
        "qlosure",
        &queko_qasm("line:5", 5, 1),
        Priority::Batch,
        false,
    ) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShardUnavailable),
        other => panic!("expected shard-unavailable, got {other:?}"),
    }

    client.shutdown().unwrap();
    router.join().unwrap();
    shard.join().unwrap();
}

// ──────────────────────────── observability ───────────────────────────

/// Spawns a daemon with the observability knobs set explicitly.
fn obs_daemon(tag: &str, workers: usize, obs_sample: f64, stall_after: f64) -> DaemonHandle {
    let mut config = DaemonConfig::at(socket_path(tag));
    config.service = ServiceConfig {
        workers,
        obs_sample_seconds: obs_sample,
        stall_after_seconds: stall_after,
        ..ServiceConfig::default()
    };
    service::daemon::spawn(config).expect("daemon binds its socket")
}

#[test]
fn metrics_history_round_trips_a_monotone_sample_window() {
    // A fast sampler so the window fills within the test budget; the
    // watchdog stays at its default (nothing here stalls).
    let daemon = obs_daemon("history", 2, 0.05, 60.0);
    let mut client = connect(&daemon);
    let id = client
        .submit(
            "aspen16",
            "qlosure",
            &queko_qasm("aspen16", 20, 21),
            Priority::Interactive,
            false,
        )
        .unwrap();
    client.wait(id, WAIT).unwrap();
    // Poll until the ring holds enough samples to difference (the sampler
    // runs on its own clock).
    let deadline = std::time::Instant::now() + WAIT;
    let history = loop {
        let history = client.metrics_history().unwrap();
        let enough = history
            .series
            .first()
            .is_some_and(|s| s.samples.len() >= 3 && s.samples.last().unwrap().completed >= 1);
        if enough {
            break history;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sampler must produce 3 post-completion samples in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(history.sample_seconds > 0.0);
    assert_eq!(history.series.len(), 1, "an unfronted daemon is one series");
    let series = &history.series[0];
    assert_eq!(series.shard, 0);
    for pair in series.samples.windows(2) {
        assert_eq!(pair[1].index, pair[0].index + 1, "no gaps in the window");
        assert!(pair[1].uptime_seconds >= pair[0].uptime_seconds);
    }
    assert!(series.rates.window_seconds > 0.0);
    assert!(series.rates.jobs_per_second >= 0.0);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}

#[test]
fn router_merges_history_series_and_relabels_shards() {
    let shard_a = obs_daemon("history-shard-a", 1, 0.05, 60.0);
    let shard_b = obs_daemon("history-shard-b", 1, 0.05, 60.0);
    let router = service::router::spawn(RouterConfig::fronting(
        Endpoint::Tcp("127.0.0.1:0".to_string()),
        vec![shard_a.endpoint.clone(), shard_b.endpoint.clone()],
    ))
    .unwrap();
    let mut client = Client::connect_endpoint(&router.endpoint).unwrap();
    // Wait until both shards have at least one sample in the ring.
    let deadline = std::time::Instant::now() + WAIT;
    let history = loop {
        let history = client.metrics_history().unwrap();
        if history.series.len() == 2 && history.series.iter().all(|s| !s.samples.is_empty()) {
            break history;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "both shards must report a sample in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // Series come back relabeled with the fleet shard index, in order.
    assert_eq!(history.series[0].shard, 0);
    assert_eq!(history.series[1].shard, 1);
    assert!(history.sample_seconds > 0.0);
    client.shutdown().unwrap();
    router.join().unwrap();
    shard_a.join().unwrap();
    shard_b.join().unwrap();
}

#[test]
fn watchdog_flags_a_stalled_job_with_a_wire_retrievable_flight_record() {
    // stall_after = 0 flags every in-flight job on the watchdog's first
    // tick, so a long job is "stalled" the moment it starts running. The
    // job does NOT opt into tracing — the flight record must come from
    // the watchdog alone.
    let daemon = obs_daemon("watchdog", 1, 0.0, 0.0);
    let mut client = connect(&daemon);
    let id = client
        .submit(
            "king9",
            "qlosure",
            &queko_qasm("king9", 150, 2),
            Priority::Batch,
            false,
        )
        .unwrap();
    // Poll the trace store while the job is still in flight: the watchdog
    // publishes a partial span tree keyed by the job ID.
    let deadline = std::time::Instant::now() + WAIT;
    let root = loop {
        match client.trace(id) {
            Ok((trace_id, root)) => {
                assert_eq!(trace_id.len(), 16);
                break root;
            }
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::UnknownId, "job must not fail");
                assert!(
                    std::time::Instant::now() < deadline,
                    "watchdog must capture a flight record in time"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected trace failure: {other}"),
        }
    };
    // The record is a synthesized job root with the stall marker nested
    // inside, carrying how long the job had been running and a journal
    // tail for context.
    assert_eq!(root.name, "job");
    let stall = find_span(&root, "watchdog:stall").expect("stall span in the flight record");
    assert!(
        stall.notes.iter().any(|(key, _)| key == "running_seconds"),
        "stall span records the in-flight duration: {:?}",
        stall.notes
    );
    // The same stall shows up in the event journal over the wire.
    let events = client.events(obs::Level::Warn, 0).unwrap();
    assert!(
        events
            .events
            .iter()
            .any(|e| e.subsystem == "watchdog" && e.level == obs::Level::Warn),
        "journal must carry the watchdog warning: {:?}",
        events.events
    );
    // Seqs are monotone and the cursor contract holds: re-asking after
    // the newest seq returns nothing new (and nothing dropped in between).
    let newest = events.events.iter().map(|e| e.seq).max().unwrap();
    let after = client.events(obs::Level::Debug, newest).unwrap();
    assert!(
        after.events.iter().all(|e| e.seq > newest),
        "a seq cursor must exclude everything at or before it"
    );
    // The job itself still completes and overwrites nothing.
    let summary = client.wait(id, WAIT).unwrap();
    assert!(summary.verified);
    client.shutdown().unwrap();
    daemon.join().unwrap();
}
