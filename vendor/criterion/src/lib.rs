//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmarking API this workspace uses (`bench_function`, benchmark
//! groups, `iter`/`iter_batched`, the `criterion_group!`/`criterion_main!`
//! macros).
//!
//! The build environment is offline, so the real `criterion` cannot be
//! fetched. This harness does honest wall-clock measurement (warmup, then
//! timed samples, median-of-samples reporting) but none of criterion's
//! statistics, plotting or baseline comparison. Invoked with `--test`
//! (as `cargo test --benches` does), each benchmark body runs exactly once
//! so test runs stay fast.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in times every
/// routine invocation individually, so the variants only influence batch
/// sizing in the real crate and are accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is cheap to construct.
    SmallInput,
    /// Routine input is expensive to construct.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// Median time per iteration from the last measurement.
    elapsed: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.iters_done = 1;
            return;
        }
        // Warmup and calibration: find an iteration count that runs for
        // roughly the sample window.
        let mut n: u64 = 1;
        let window = Duration::from_millis(20);
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let t = start.elapsed();
            if t >= window || n >= 1 << 20 {
                break;
            }
            n = (n * 2).max(1);
        }
        // Measured samples.
        let mut samples = Vec::with_capacity(SAMPLES);
        let mut total_iters = 0u64;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            samples.push(start.elapsed() / n as u32);
            total_iters += n;
        }
        samples.sort();
        self.elapsed = samples[samples.len() / 2];
        self.iters_done = total_iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            self.iters_done = 1;
            return;
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        let mut total = 0u64;
        // Calibrate the per-sample batch so short routines still get a
        // stable reading.
        let probe_input = setup();
        let probe_start = Instant::now();
        black_box(routine(probe_input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / probe.as_nanos()).max(1) as u64).min(1 << 16);
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed() / per_sample as u32);
            total += per_sample;
        }
        samples.sort();
        self.elapsed = samples[samples.len() / 2];
        self.iters_done = total;
    }
}

const SAMPLES: usize = 11;

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Benchmark registry and driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            elapsed: Duration::ZERO,
            iters_done: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test-mode {name}: ok ({} iter)", b.iters_done);
        } else {
            println!("{name:<44} median {:>12}", format_duration(b.elapsed));
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// Group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's sample count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.criterion.bench_function(&format!("  {name}"), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --list` support so tooling can enumerate.
            if std::env::args().any(|a| a == "--list") {
                $( println!("{}: bench", stringify!($group)); )+
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { test_mode: true };
        let mut hits = 0u32;
        c.bench_function("probe", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 1);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion { test_mode: true };
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| assert_eq!(x * 2, 42), BatchSize::SmallInput)
        });
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
