//! Minimal, deterministic, dependency-free stand-in for the subset of the
//! `rand` 0.9 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. Everything here is seeded explicitly
//! ([`SeedableRng::seed_from_u64`]) and produces a fixed stream per seed
//! (SplitMix64), which is exactly what the mappers and the QUEKO generator
//! need: reproducible tie-breaking and reproducible benchmarks. The stream
//! does *not* match the real `rand`'s ChaCha-based `StdRng`; only the API
//! contract is preserved.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Same seed, same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range, like the real `rand`.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for the real
    /// `StdRng`; statistically solid for tie-breaking and test-data
    /// generation, not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::Rng;

    /// Random selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Item;
        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = crate::SampleRange::sample(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }

    /// In-place random permutation.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.random_range(5..8u32);
            assert!((5..8).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
