//! Minimal, deterministic stand-in for the subset of the `proptest` API this
//! workspace uses: the [`proptest!`] macro, `Strategy` with `prop_map`,
//! integer-range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! The build environment is offline, so the real `proptest` cannot be
//! fetched. Two deliberate differences from the real crate:
//!
//! 1. **Determinism.** Every test derives its RNG stream from
//!    [`test_runner::ProptestConfig::rng_seed`] (overridable per test with
//!    [`test_runner::ProptestConfig::with_seed`], or globally with the
//!    `PROPTEST_RNG_SEED` environment variable) hashed with the test name.
//!    Reruns are bit-for-bit identical; there is no OS entropy anywhere.
//! 2. **No shrinking.** On failure the macro panics with the case index and
//!    effective seed, which is enough to replay the exact case.
//!
//! The `PROPTEST_CASES` environment variable scales the number of cases per
//! test (capped at the configured count), so CI tiers can trade coverage
//! for speed without touching the test source.

#![forbid(unsafe_code)]

/// Runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Default base seed: arbitrary but fixed, so test runs are repeatable.
    pub const DEFAULT_RNG_SEED: u64 = 0x510C_0DE5_EEDE_D001;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
        /// Base seed for the deterministic RNG stream.
        pub rng_seed: u64,
    }

    impl ProptestConfig {
        /// Config running `cases` cases with the default fixed seed.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                rng_seed: DEFAULT_RNG_SEED,
            }
        }

        /// Overrides the base seed (builder style).
        pub fn with_seed(mut self, seed: u64) -> Self {
            self.rng_seed = seed;
            self
        }

        /// Effective case count: `PROPTEST_CASES` (if set and smaller)
        /// caps the configured count, so a smoke tier can run `--test
        /// properties` quickly without editing the tests.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                Some(n) => self.cases.min(n.max(1)),
                None => self.cases,
            }
        }

        /// Effective base seed: `PROPTEST_RNG_SEED` overrides the config.
        pub fn effective_seed(&self) -> u64 {
            match std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                Some(s) => s,
                None => self.rng_seed,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    /// Why a single case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion or invariant did not hold.
        Fail(String),
        /// The generated input was rejected (not counted as failure by the
        /// real proptest; this stand-in treats it as failure since none of
        /// the workspace tests reject inputs).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Stream for `test_name` under `base_seed`: the name is hashed in
        /// (FNV-1a) so tests draw independent streams.
        pub fn for_test(base_seed: u64, test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(base_seed ^ h),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
        {
            MapStrategy { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, MapStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the real proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) so the runner can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declares deterministic property tests.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..10, v in prop::collection::vec(0u8..=2, 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = config.effective_seed();
                let mut rng = $crate::test_runner::TestRng::for_test(seed, stringify!($name));
                for case in 0..config.effective_cases() {
                    $( let $arg = ($strat).generate(&mut rng); )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {} (rng_seed={:#x}): {}",
                            stringify!($name), case, seed, err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -3i64..=3, n in 1usize..10) {
            prop_assert!((-3..=3).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..=2, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!(*e <= 2);
            }
        }

        #[test]
        fn prop_map_and_tuples(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_test(1, "t");
        let mut b = TestRng::for_test(1, "t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different test names draw independent streams.
        let mut t = TestRng::for_test(1, "t");
        let mut other = TestRng::for_test(1, "other");
        assert_ne!(
            (0..4).map(|_| t.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| other.next_u64()).collect::<Vec<_>>()
        );
    }
}
