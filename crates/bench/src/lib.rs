//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! Qlosure paper's evaluation (see `DESIGN.md` §2 for the experiment
//! index). This library provides the common pieces: the mapper roster, the
//! back-end roster, timed + verified mapping runs, the
//! [`engine::BatchEngine`] batch front-end ([`engine_batch`]) with its
//! `BENCH_*.json` trajectory reports, and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;

pub use report::Table;
pub use runner::{
    all_mappers, backend_by_name, engine_batch, mapper_names, run_verified, shared_backend,
    MapOutcome, PassSeconds, Scale, FLAT_COLD_1024Q_BUDGET_SECONDS,
};
