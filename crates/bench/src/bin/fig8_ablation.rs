//! Figure 8 reproduction: ablation of the cost-function components.
//!
//! On the queko-bss-81qbt suite mapped onto Sherbrooke (the paper's §VI-E
//! setting), compares four Qlosure variants:
//!
//! * (a) **distance-only** — Manhattan distance of the front layer;
//! * (b) **layer-adjusted** — adds the 1/ℓ layer discount and per-layer
//!   normalization;
//! * (c) **dependency-weighted** — adds the transitive dependence weights
//!   ω (the full Eq. 2);
//! * (d) **bidirectional** — (c) plus the forward/backward initial-mapping
//!   passes.
//!
//! Prints per-depth SWAPs/depth series plus each variant's average change
//! relative to the distance-only baseline.

use bench_support::report::{f2, mean};
use bench_support::{engine_batch, run_verified, shared_backend, Scale};
use qlosure::{CostVariant, InitialMapping, QlosureConfig, QlosureMapper};
use queko::QuekoSpec;

fn variants() -> Vec<(&'static str, QlosureMapper)> {
    let base = QlosureConfig::default();
    vec![
        (
            "distance-only",
            QlosureMapper::with_config(QlosureConfig {
                cost: CostVariant::DistanceOnly,
                ..base.clone()
            }),
        ),
        (
            "layer-adjusted",
            QlosureMapper::with_config(QlosureConfig {
                cost: CostVariant::LayerAdjusted,
                ..base.clone()
            }),
        ),
        (
            "dependency-weighted",
            QlosureMapper::with_config(QlosureConfig {
                cost: CostVariant::DependencyWeighted,
                ..base.clone()
            }),
        ),
        (
            "bidirectional",
            QlosureMapper::with_config(QlosureConfig {
                cost: CostVariant::DependencyWeighted,
                initial: InitialMapping::Bidirectional { passes: 2 },
                ..base
            }),
        ),
    ]
}

fn main() {
    let scale = Scale::from_args_or_exit();
    let mut jobs: Vec<(usize, u64)> = Vec::new();
    for depth in scale.depths() {
        for seed in 0..scale.seeds() as u64 {
            jobs.push((depth, seed));
        }
    }
    eprintln!("fig8: {} instances x 4 variants", jobs.len());
    let rows = engine_batch(
        "fig8_ablation",
        jobs,
        |(depth, seed)| format!("king9-d{depth}-s{seed}"),
        |(_, _, per_variant): &(usize, u64, Vec<(&'static str, usize, usize)>)| {
            per_variant
                .iter()
                .map(|(v, swaps, _)| (format!("{v}_swaps"), *swaps as i64))
                .collect()
        },
        |_| Vec::new(),
        |(depth, seed)| {
            let gen_device = shared_backend("king9");
            let device = shared_backend("sherbrooke");
            let bench = QuekoSpec::new(&gen_device, *depth).seed(*seed).generate();
            let mut per_variant = Vec::new();
            for (name, mapper) in variants() {
                let out = run_verified(&mapper, &bench.circuit, &device);
                per_variant.push((name, out.swaps, out.depth));
            }
            (*depth, *seed, per_variant)
        },
    );
    println!("== Fig. 8 — ablation on queko-bss-81qbt / Sherbrooke ==");
    println!("depth,seed,variant,swaps,final_depth");
    for (depth, seed, per_variant) in &rows {
        for (variant, swaps, fdepth) in per_variant {
            println!("{depth},{seed},{variant},{swaps},{fdepth}");
        }
    }
    // Relative-to-baseline summary (paper: layer-adjusted −5.6 % swaps,
    // dependency-weighted −46.8 %, bidirectional −72.2 %).
    println!("\naverage change vs distance-only baseline:");
    for (variant, _) in variants().iter().skip(1) {
        let mut swap_deltas = Vec::new();
        let mut depth_deltas = Vec::new();
        for (_, _, per_variant) in &rows {
            let base = per_variant
                .iter()
                .find(|(v, _, _)| *v == "distance-only")
                .expect("baseline ran");
            let this = per_variant
                .iter()
                .find(|(v, _, _)| v == variant)
                .expect("variant ran");
            if base.1 > 0 {
                swap_deltas.push((base.1 as f64 - this.1 as f64) / base.1 as f64);
            }
            if base.2 > 0 {
                depth_deltas.push((base.2 as f64 - this.2 as f64) / base.2 as f64);
            }
        }
        println!(
            "{variant}: {}% fewer swaps, {}% smaller depth",
            f2(mean(&swap_deltas) * 100.0),
            f2(mean(&depth_deltas) * 100.0)
        );
    }
}
