//! Tracing-overhead gate: the instrumented code paths must stay free
//! when tracing is off and harmless when it is on.
//!
//! Maps the `router_core` budget instance (1024-qubit QUEKO on grid
//! 32×32, depth 8, 20% two-qubit density, seed 1) four ways: flat and
//! hierarchical, each first with no tracing context installed and then
//! under a live per-job tracer. Two contracts are enforced:
//!
//! 1. **Disabled-path cost.** The instrumentation is in the hot loop of
//!    every pass (one thread-local read per span site), so the untraced
//!    flat cold map must stay within 2% of the committed
//!    [`FLAT_COLD_1024Q_BUDGET_SECONDS`] `router_core` budget. The
//!    untraced runs go first — they are the cold runs the budget is
//!    defined over.
//! 2. **Golden equivalence.** Spans observe, they never steer: for each
//!    mapper the traced run's result fingerprint (routed gates, both
//!    layouts, SWAP count — `service::result_fingerprint`) must be
//!    bit-for-bit identical to the untraced run's.
//!
//! Output: `BENCH_trace_overhead.json` with one row per (mapper, tracing)
//! pair plus the gate threshold as an extra. Exit status: 1 on a budget
//! breach or any fingerprint divergence.

use bench_support::report::JsonJobRow;
use bench_support::{shared_backend, FLAT_COLD_1024Q_BUDGET_SECONDS};
use circuit::{verify_routing, Circuit};
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use service::result_fingerprint;
use std::time::Instant;
use topology::CouplingGraph;

/// Headroom over the committed budget: the disabled path may cost at
/// most 2% of the `router_core` bound before this gate fails the build.
const OVERHEAD_HEADROOM: f64 = 1.02;

struct Run {
    seconds: f64,
    fingerprint: u64,
    swaps: usize,
    passes: Vec<(String, f64)>,
}

/// One verified mapping run under whatever tracing context the caller
/// installed (or none), keeping the result fingerprint.
fn run_once(mapper: &(dyn Mapper + Send + Sync), circuit: &Circuit, device: &CouplingGraph) -> Run {
    let start = Instant::now();
    let timed = qlosure::run_mapper_timed(mapper, circuit, device);
    let seconds = start.elapsed().as_secs_f64();
    verify_routing(
        circuit,
        &timed.result.routed,
        &|a, b| device.is_adjacent(a, b),
        &timed.result.initial_layout,
    )
    .unwrap_or_else(|e| panic!("{} produced invalid routing: {e}", mapper.name()));
    Run {
        seconds,
        fingerprint: result_fingerprint(&timed.result),
        swaps: timed.result.swaps,
        passes: timed.passes,
    }
}

fn main() {
    let device = shared_backend("grid:32x32");
    let bench = QuekoSpec::new(&device, 8)
        .density_2q(0.2)
        .seed(1)
        .generate();
    let mappers: Vec<(&str, Box<dyn Mapper + Send + Sync>)> = vec![
        ("flat", Box::new(QlosureMapper::default())),
        ("hier", Box::new(HierMapper::default())),
    ];

    let wall0 = Instant::now();
    let mut rows: Vec<JsonJobRow> = Vec::new();
    let mut failures = 0u32;
    let mut flat_disabled_seconds = f64::NAN;
    println!("== trace_overhead — disabled-path cost and golden equivalence ==");
    println!("mapper,tracing,seconds,swaps,spans,fingerprint");
    for (name, mapper) in &mappers {
        // Untraced first: this is the cold run the budget is defined
        // over, before any shared cache warms up.
        let disabled = run_once(mapper.as_ref(), &bench.circuit, &device);
        if *name == "flat" {
            flat_disabled_seconds = disabled.seconds;
        }
        let tracer = trace::Tracer::new(0x7ace, 65_536);
        let traced = {
            let ctx = trace::Ctx::new(tracer.clone(), trace::ROOT_SPAN);
            let _ctx_guard = trace::set_ctx(&ctx);
            run_once(mapper.as_ref(), &bench.circuit, &device)
        };
        tracer.finish_root("job", 0, trace::now_ns(), Vec::new());
        let spans = tracer.snapshot().len();
        for (label, run, span_count) in
            [("disabled", &disabled, 0usize), ("enabled", &traced, spans)]
        {
            println!(
                "{name},{label},{:.3},{},{span_count},{:016x}",
                run.seconds, run.swaps, run.fingerprint
            );
            rows.push(JsonJobRow {
                id: rows.len(),
                label: format!("{name}-trace-{label}"),
                seconds: run.seconds,
                metrics: vec![
                    ("swaps".to_string(), run.swaps as i64),
                    ("spans".to_string(), span_count as i64),
                ],
                pass_seconds: run.passes.clone(),
                queue_seconds: None,
            });
        }
        if traced.fingerprint != disabled.fingerprint {
            eprintln!(
                "trace_overhead: FATAL: {name} mapping diverged under tracing \
                 ({:016x} traced vs {:016x} untraced) — spans must never \
                 steer the mapping",
                traced.fingerprint, disabled.fingerprint
            );
            failures += 1;
        }
        if spans <= 1 {
            eprintln!(
                "trace_overhead: FATAL: {name} traced run recorded {spans} spans — \
                 the instrumentation is not reaching the pipeline"
            );
            failures += 1;
        }
    }
    let wall_seconds = wall0.elapsed().as_secs_f64();

    let gate = FLAT_COLD_1024Q_BUDGET_SECONDS * OVERHEAD_HEADROOM;
    let extras = vec![
        ("disabled_gate_millis".to_string(), (gate * 1000.0) as i64),
        (
            "flat_1024q_budget_millis".to_string(),
            (FLAT_COLD_1024Q_BUDGET_SECONDS * 1000.0) as i64,
        ),
    ];
    match bench_support::report::write_batch_json_with(
        "trace_overhead",
        1,
        wall_seconds,
        &rows,
        &extras,
    ) {
        Ok(path) => eprintln!("trace_overhead: wrote {}", path.display()),
        Err(e) => eprintln!("trace_overhead: could not write JSON report: {e}"),
    }

    println!("\n1024q flat cold, tracing disabled: {flat_disabled_seconds:.3}s (gate {gate:.1}s)");
    if flat_disabled_seconds > gate {
        eprintln!(
            "trace_overhead: FATAL: untraced 1024q flat cold map took \
             {flat_disabled_seconds:.1}s, over the {gate:.1}s gate \
             ({FLAT_COLD_1024Q_BUDGET_SECONDS}s budget + 2%)"
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
