//! Service throughput: replay a mixed roster against a **warm daemon**.
//!
//! Spawns an in-process `qlosured` on a temp socket, submits a mixed
//! roster (≥ 20 jobs: two backends × two mappers × two QUEKO depths ×
//! seeds, alternating interactive/batch priorities, some with fidelity
//! estimation), waits for every result over the wire, and writes
//! `BENCH_service.json` with per-job rows (swaps/depth/qops/seq +
//! `seconds`/`queue_seconds`/`pass_seconds`) plus the daemon's
//! shared-cache hit/miss counters as top-level fields.
//!
//! The run **fails (exit 1) if the distance cache shows zero hits** —
//! the whole point of a persistent daemon is cross-request amortization
//! of the shared per-device caches, and this binary is the acceptance
//! check that it actually happens.
//!
//! ```text
//! ENGINE_THREADS=4 cargo run --release -p qlosure-bench --bin service_throughput
//! ```

use bench_support::report;
use service::{Client, DaemonConfig, Priority, ServiceConfig};
use std::time::{Duration, Instant};

fn main() {
    let socket = std::env::temp_dir().join(format!("qlosured-bench-{}.sock", std::process::id()));
    let mut config = DaemonConfig::at(&socket);
    config.service = ServiceConfig::default(); // workers from ENGINE_THREADS
    let workers = config.service.workers;
    let daemon = service::daemon::spawn(config).expect("bind daemon socket");
    let mut client = Client::connect(&socket).expect("connect to daemon");

    // The mixed roster: every (backend × mapper × depth × seed) cell.
    let mut jobs: Vec<(String, String, String, usize, u64)> = Vec::new();
    for backend in ["aspen16", "king9"] {
        for mapper in ["qlosure", "sabre"] {
            for depth in [40, 80] {
                for seed in 0..3u64 {
                    let label = format!("{backend}-{mapper}-d{depth}-s{seed}");
                    jobs.push((label, backend.to_string(), mapper.to_string(), depth, seed));
                }
            }
        }
    }
    assert!(jobs.len() >= 20, "mixed roster must cover ≥ 20 jobs");

    let wall0 = Instant::now();
    let mut ids = Vec::new();
    for (i, (label, backend, mapper, depth, seed)) in jobs.iter().enumerate() {
        let device = topology::backends::by_name(backend).expect("roster backend resolves");
        let bench = queko::QuekoSpec::new(&device, *depth)
            .seed(*seed)
            .generate();
        let qasm_src = qasm::emit(&bench.circuit.to_qasm());
        let priority = if i % 3 == 0 {
            Priority::Interactive
        } else {
            Priority::Batch
        };
        let fidelity = i % 4 == 0;
        let id = client
            .submit(backend, mapper, &qasm_src, priority, fidelity)
            .unwrap_or_else(|e| panic!("submit {label}: {e}"));
        ids.push((id, label.clone()));
    }

    let mut rows = Vec::new();
    for (id, label) in &ids {
        let summary = client
            .wait(*id, Duration::from_secs(600))
            .unwrap_or_else(|e| panic!("wait {label}: {e}"));
        assert!(summary.verified, "{label}: daemon result must be verified");
        let mut metrics = vec![
            ("swaps".to_string(), summary.swaps as i64),
            ("depth".to_string(), summary.depth as i64),
            ("qops".to_string(), summary.qops as i64),
            ("seq".to_string(), summary.seq as i64),
        ];
        if let Some(ppm) = summary.success_ppm {
            metrics.push(("success_ppm".to_string(), ppm));
        }
        rows.push(report::JsonJobRow {
            id: *id as usize,
            label: label.clone(),
            seconds: summary.seconds,
            metrics,
            pass_seconds: summary.pass_seconds.clone(),
            queue_seconds: Some(summary.queue_seconds),
        });
    }
    let wall_seconds = wall0.elapsed().as_secs_f64();

    let stats = client.stats().expect("stats round trip");
    client.shutdown().expect("shutdown round trip");
    let final_stats = daemon.join().expect("daemon exits cleanly");
    assert_eq!(final_stats.completed as usize, jobs.len());

    let extras = vec![
        ("distance_hits".to_string(), stats.distance_hits as i64),
        ("distance_misses".to_string(), stats.distance_misses as i64),
        ("closure_hits".to_string(), stats.closure_hits as i64),
        ("closure_misses".to_string(), stats.closure_misses as i64),
        ("submitted".to_string(), stats.submitted as i64),
        ("completed".to_string(), final_stats.completed as i64),
    ];
    let (cpu_seconds, speedup) = report::batch_totals(wall_seconds, &rows);
    eprintln!(
        "service_throughput: {} jobs through a warm daemon ({} workers): wall {wall_seconds:.2}s, \
         cpu {cpu_seconds:.2}s, speedup {speedup:.2}x; distance cache {}h/{}m, closure memo {}h/{}m",
        rows.len(),
        workers,
        stats.distance_hits,
        stats.distance_misses,
        stats.closure_hits,
        stats.closure_misses,
    );
    match report::write_batch_json_with("service", workers, wall_seconds, &rows, &extras) {
        Ok(path) => eprintln!("service_throughput: wrote {}", path.display()),
        Err(e) => {
            eprintln!("service_throughput: could not write JSON report: {e}");
            std::process::exit(1);
        }
    }

    // The acceptance check: a warm daemon must show cross-request cache
    // amortization — many jobs share two devices, so the shared distance
    // cache has to register hits.
    if stats.distance_hits == 0 {
        eprintln!(
            "service_throughput: FAIL — zero shared distance-cache hits across {} requests",
            rows.len()
        );
        std::process::exit(1);
    }
}
