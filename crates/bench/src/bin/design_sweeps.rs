//! Ablation of the implementation-level design choices documented in
//! `DESIGN.md` §3b — the knobs this reproduction adds on top of the
//! paper's Eq. (2), each swept around its default on a QUEKO instance and
//! two QASMBench workloads:
//!
//! * ω smoothing (0 = paper-verbatim weights vs. 1);
//! * ω scaling (linear / sqrt / log);
//! * future-layer weight (1.0 = paper-verbatim sum vs. the 0.25 default);
//! * busy-aware decay weight;
//! * near-tie window;
//! * look-ahead margin (the `c > max degree` constant).
//!
//! Usage: `cargo run --release -p qlosure-bench --bin design_sweeps`

use bench_support::report::Table;
use bench_support::{backend_by_name, run_verified};
use circuit::Circuit;
use qlosure::{OmegaScaling, QlosureConfig, QlosureMapper};
use queko::QuekoSpec;

fn workloads() -> Vec<(&'static str, Circuit)> {
    let gen54 = backend_by_name("sycamore54");
    vec![
        (
            "queko54@300",
            QuekoSpec::new(&gen54, 300).seed(0).generate().circuit,
        ),
        ("qft_n63", qasmbench::qft(63)),
        ("multiplier_n45", qasmbench::multiplier(45)),
    ]
}

fn sweep(table: &mut Table, label: &str, config: QlosureConfig) {
    let device = backend_by_name("sherbrooke");
    let mapper = QlosureMapper::with_config(config);
    let mut cells = vec![label.to_string()];
    for (_, circuit) in workloads() {
        let out = run_verified(&mapper, &circuit, &device);
        cells.push(out.swaps.to_string());
        cells.push(out.depth.to_string());
    }
    table.row(&cells);
}

fn main() {
    let mut table = Table::new(
        "Design-choice sweeps on Sherbrooke (swaps / depth per workload)",
        &[
            "variant",
            "queko54/s",
            "queko54/d",
            "qft63/s",
            "qft63/d",
            "mult45/s",
            "mult45/d",
        ],
    );
    let base = QlosureConfig::default;
    sweep(&mut table, "default", base());
    sweep(
        &mut table,
        "omega smoothing = 0 (paper)",
        QlosureConfig {
            omega_smoothing: 0,
            ..base()
        },
    );
    for (name, scaling) in [
        ("omega scaling = sqrt", OmegaScaling::Sqrt),
        ("omega scaling = log", OmegaScaling::Log),
    ] {
        sweep(
            &mut table,
            name,
            QlosureConfig {
                omega_scaling: scaling,
                ..base()
            },
        );
    }
    for fw in [1.0, 0.5] {
        sweep(
            &mut table,
            &format!(
                "future weight = {fw} {}",
                if fw == 1.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                future_weight: fw,
                ..base()
            },
        );
    }
    for bw in [0.0, 0.2] {
        sweep(
            &mut table,
            &format!(
                "busy weight = {bw} {}",
                if bw == 0.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                busy_weight: bw,
                ..base()
            },
        );
    }
    for te in [0.0, 0.02] {
        sweep(
            &mut table,
            &format!(
                "tie epsilon = {te} {}",
                if te == 0.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                tie_epsilon: te,
                ..base()
            },
        );
    }
    for margin in [4, 8] {
        sweep(
            &mut table,
            &format!("lookahead margin = {margin}"),
            QlosureConfig {
                lookahead_margin: margin,
                ..base()
            },
        );
    }
    table.print();
}
