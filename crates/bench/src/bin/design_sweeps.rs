//! Ablation of the implementation-level design choices documented in
//! `DESIGN.md` §3b — the knobs this reproduction adds on top of the
//! paper's Eq. (2), each swept around its default on a QUEKO instance and
//! two QASMBench workloads:
//!
//! * ω smoothing (0 = paper-verbatim weights vs. 1);
//! * ω scaling (linear / sqrt / log);
//! * future-layer weight (1.0 = paper-verbatim sum vs. the 0.25 default);
//! * busy-aware decay weight;
//! * near-tie window;
//! * look-ahead margin (the `c > max degree` constant).
//!
//! Usage: `cargo run --release -p qlosure-bench --bin design_sweeps`

use bench_support::report::Table;
use bench_support::{engine_batch, run_verified, shared_backend};
use circuit::Circuit;
use qlosure::{OmegaScaling, QlosureConfig, QlosureMapper};
use queko::QuekoSpec;
use std::sync::Arc;

fn workloads() -> Vec<(&'static str, Circuit)> {
    let gen54 = shared_backend("sycamore54");
    vec![
        (
            "queko54@300",
            QuekoSpec::new(&gen54, 300).seed(0).generate().circuit,
        ),
        ("qft_n63", qasmbench::qft(63)),
        ("multiplier_n45", qasmbench::multiplier(45)),
    ]
}

fn variants() -> Vec<(String, QlosureConfig)> {
    let base = QlosureConfig::default;
    let mut out: Vec<(String, QlosureConfig)> = vec![
        ("default".into(), base()),
        (
            "omega smoothing = 0 (paper)".into(),
            QlosureConfig {
                omega_smoothing: 0,
                ..base()
            },
        ),
        (
            "omega scaling = sqrt".into(),
            QlosureConfig {
                omega_scaling: OmegaScaling::Sqrt,
                ..base()
            },
        ),
        (
            "omega scaling = log".into(),
            QlosureConfig {
                omega_scaling: OmegaScaling::Log,
                ..base()
            },
        ),
    ];
    for fw in [1.0, 0.5] {
        out.push((
            format!(
                "future weight = {fw} {}",
                if fw == 1.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                future_weight: fw,
                ..base()
            },
        ));
    }
    for bw in [0.0, 0.2] {
        out.push((
            format!(
                "busy weight = {bw} {}",
                if bw == 0.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                busy_weight: bw,
                ..base()
            },
        ));
    }
    for te in [0.0, 0.02] {
        out.push((
            format!(
                "tie epsilon = {te} {}",
                if te == 0.0 { "(paper)" } else { "" }
            ),
            QlosureConfig {
                tie_epsilon: te,
                ..base()
            },
        ));
    }
    for margin in [4, 8] {
        out.push((
            format!("lookahead margin = {margin}"),
            QlosureConfig {
                lookahead_margin: margin,
                ..base()
            },
        ));
    }
    out
}

fn main() {
    let workloads: Vec<(&'static str, Arc<Circuit>)> = workloads()
        .into_iter()
        .map(|(name, c)| (name, Arc::new(c)))
        .collect();
    let variants = variants();
    // One job per (variant × workload); roster order keeps the table rows
    // grouped by variant.
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for v in 0..variants.len() {
        for w in 0..workloads.len() {
            jobs.push((v, w));
        }
    }
    let (variants_ref, workloads_ref) = (&variants, &workloads);
    let cells = engine_batch(
        "design_sweeps",
        jobs,
        |(v, w)| format!("{} / {}", variants_ref[*v].0, workloads_ref[*w].0),
        |(swaps, depth): &(usize, usize)| {
            vec![
                ("swaps".to_string(), *swaps as i64),
                ("depth".to_string(), *depth as i64),
            ]
        },
        |_| Vec::new(),
        move |(v, w)| {
            let device = shared_backend("sherbrooke");
            let mapper = QlosureMapper::with_config(variants_ref[*v].1.clone());
            let out = run_verified(&mapper, &workloads_ref[*w].1, &device);
            (out.swaps, out.depth)
        },
    );
    let mut table = Table::new(
        "Design-choice sweeps on Sherbrooke (swaps / depth per workload)",
        &[
            "variant",
            "queko54/s",
            "queko54/d",
            "qft63/s",
            "qft63/d",
            "mult45/s",
            "mult45/d",
        ],
    );
    let per_variant = workloads.len();
    for (v, (label, _)) in variants.iter().enumerate() {
        let mut row = vec![label.clone()];
        for w in 0..per_variant {
            let (swaps, depth) = cells[v * per_variant + w];
            row.push(swaps.to_string());
            row.push(depth.to_string());
        }
        table.row(&row);
    }
    table.print();
}
