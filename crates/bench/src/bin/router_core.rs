//! Raw-speed benchmark of the routing core at 1000+ qubit scale.
//!
//! Maps one 1024-qubit QUEKO instance (grid 32×32, depth 8, 20%
//! two-qubit density, seed 1) cold with the flat `QlosureMapper` and cold
//! with the hierarchical `HierMapper` (`--scale full` adds a 2048-qubit
//! point). Every routed output passes `verify_routing` inside
//! `run_verified`. Output: `BENCH_router_core.json` with one row per
//! (backend, mapper) pair plus the committed flat budget as an extra, and
//! a summary table on stdout.
//!
//! Exit status: 1 if the 1024-qubit flat cold map exceeds
//! [`FLAT_COLD_1024Q_BUDGET_SECONDS`] — the CSR + bitset + batched-scoring
//! core regressing toward the pre-rewrite quadratic candidate scans
//! (~172 s on the same instance) is a build failure, not a slow run.

use bench_support::report::JsonJobRow;
use bench_support::{run_verified, shared_backend, Scale, FLAT_COLD_1024Q_BUDGET_SECONDS};
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use std::time::Instant;

fn mapper_for(name: &str) -> Box<dyn Mapper + Send + Sync> {
    match name {
        "flat" => Box::new(QlosureMapper::default()),
        "hier" => Box::new(HierMapper::default()),
        other => panic!("unknown mapper `{other}`"),
    }
}

fn main() {
    let scale = Scale::from_args_or_exit();
    // (backend, qubits, depth, density): the 1024-qubit point is the
    // budget gate; depth shrinks with size so `full` stays runnable.
    let points: Vec<(&'static str, usize, usize, f64)> = match scale {
        Scale::Small => vec![("grid:32x32", 1024, 8, 0.2)],
        Scale::Full => vec![("grid:32x32", 1024, 8, 0.2), ("grid:32x64", 2048, 4, 0.1)],
    };

    let wall0 = Instant::now();
    let mut rows: Vec<JsonJobRow> = Vec::new();
    let mut flat_1024q_seconds = f64::NAN;
    println!("== router_core — cold mapping wall time ==");
    println!("backend,qubits,qops,mapper,seconds,swaps");
    for &(backend, qubits, depth, density) in &points {
        let device = shared_backend(backend);
        let bench = QuekoSpec::new(&device, depth)
            .density_2q(density)
            .seed(1)
            .generate();
        let qops = bench.circuit.qop_count();
        for mapper in ["flat", "hier"] {
            let out = run_verified(mapper_for(mapper).as_ref(), &bench.circuit, &device);
            let seconds = out.elapsed.as_secs_f64();
            if mapper == "flat" && qubits == 1024 {
                flat_1024q_seconds = seconds;
            }
            println!(
                "{backend},{qubits},{qops},{mapper},{seconds:.3},{}",
                out.swaps
            );
            rows.push(JsonJobRow {
                id: rows.len(),
                label: format!("{backend}-d{depth}-{mapper}-cold"),
                seconds,
                metrics: vec![
                    ("qubits".to_string(), qubits as i64),
                    ("qops".to_string(), qops as i64),
                    ("swaps".to_string(), out.swaps as i64),
                ],
                pass_seconds: out.passes,
                queue_seconds: None,
            });
        }
    }
    let wall_seconds = wall0.elapsed().as_secs_f64();

    let extras = vec![(
        "flat_1024q_budget_millis".to_string(),
        (FLAT_COLD_1024Q_BUDGET_SECONDS * 1000.0) as i64,
    )];
    match bench_support::report::write_batch_json_with(
        "router_core",
        1,
        wall_seconds,
        &rows,
        &extras,
    ) {
        Ok(path) => eprintln!("router_core: wrote {}", path.display()),
        Err(e) => eprintln!("router_core: could not write JSON report: {e}"),
    }

    println!(
        "\n1024q flat cold: {flat_1024q_seconds:.3}s (budget {FLAT_COLD_1024Q_BUDGET_SECONDS}s)"
    );
    if flat_1024q_seconds > FLAT_COLD_1024Q_BUDGET_SECONDS {
        eprintln!(
            "router_core: FATAL: 1024q flat cold map took {flat_1024q_seconds:.1}s, \
             over the committed {FLAT_COLD_1024Q_BUDGET_SECONDS}s budget"
        );
        std::process::exit(1);
    }
}
