//! Table IV reproduction: average mapping times on the 54-qubit QUEKO
//! suite, grouped Medium (≤ 500) / Large (≥ 600), per back-end.
//!
//! Also reports the paper's scalability ratio (Large avg / Medium avg):
//! Qlosure grows ~1.5–1.7× from Medium to Large in the paper, the
//! baselines 2.2–2.6×.
//!
//! **Timing methodology (since PR 2):** jobs run with the shared device
//! caches warm — the all-pairs distance matrix is computed once per
//! device (all mappers benefit equally) and Qlosure's transitive-closure
//! results are memoized, so an instance remapped onto a second back-end
//! reuses its dependence analysis. Reported times measure the production
//! batch system, not cold single-shot runs; run with `ENGINE_THREADS=1`
//! for contention-free per-job timings.

use bench_support::report::{f2, mean, Table};
use bench_support::{all_mappers, engine_batch, mapper_names, run_verified, shared_backend, Scale};
use queko::QuekoSpec;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_args_or_exit();
    let backends = ["sherbrooke", "ankaa3", "sherbrooke2x"];
    let mut jobs: Vec<(String, usize, u64)> = Vec::new();
    for b in &backends {
        for depth in scale.depths() {
            for seed in 0..scale.seeds() as u64 {
                jobs.push((b.to_string(), depth, seed));
            }
        }
    }
    eprintln!("table4: {} instances x 5 mappers", jobs.len());
    let outcomes = engine_batch(
        "table4_times",
        jobs,
        |(backend, depth, seed)| format!("{backend}-d{depth}-s{seed}"),
        |(_, depth, _): &(String, usize, Vec<(String, f64)>)| {
            vec![("depth".to_string(), *depth as i64)]
        },
        |_| Vec::new(),
        |(backend, depth, seed)| {
            let gen_device = shared_backend("sycamore54");
            let device = shared_backend(backend);
            let bench = QuekoSpec::new(&gen_device, *depth).seed(*seed).generate();
            let mut per_mapper = Vec::new();
            for mapper in all_mappers() {
                let out = run_verified(mapper.as_ref(), &bench.circuit, &device);
                per_mapper.push((mapper.name().to_string(), out.elapsed.as_secs_f64()));
            }
            (backend.clone(), *depth, per_mapper)
        },
    );
    let mut times: HashMap<(String, &'static str, String), Vec<f64>> = HashMap::new();
    for (backend, depth, per_mapper) in &outcomes {
        let class = if *depth <= 500 { "Medium" } else { "Large" };
        for (mapper, secs) in per_mapper {
            times
                .entry((backend.clone(), class, mapper.clone()))
                .or_default()
                .push(*secs);
        }
    }
    let mut t = Table::new(
        "Table IV — average mapping time (s), queko-bss-54qbt",
        &[
            "mapper",
            "sherbrooke/Med",
            "sherbrooke/Lrg",
            "ankaa3/Med",
            "ankaa3/Lrg",
            "2x/Med",
            "2x/Lrg",
            "growth (Lrg/Med)",
        ],
    );
    for mapper in mapper_names() {
        let mut cells = vec![mapper.to_string()];
        let mut med_all = Vec::new();
        let mut lrg_all = Vec::new();
        for b in &backends {
            for c in ["Medium", "Large"] {
                let key = (b.to_string(), c, mapper.to_string());
                match times.get(&key) {
                    Some(v) => {
                        let m = mean(v);
                        if c == "Medium" {
                            med_all.push(m);
                        } else {
                            lrg_all.push(m);
                        }
                        cells.push(f2(m));
                    }
                    None => cells.push("-".into()),
                }
            }
        }
        let growth = if med_all.is_empty() || lrg_all.is_empty() {
            "-".to_string()
        } else {
            f2(mean(&lrg_all) / mean(&med_all).max(1e-9))
        };
        cells.push(growth);
        t.row(&cells);
    }
    t.print();
}
