//! Tables V and VI reproduction: QASMBench results per back-end.
//!
//! Maps the 41-circuit QASMBench suite (20–81 qubits) onto the chosen
//! back-end (`--backend sherbrooke` for Table V, `--backend ankaa3` for
//! Table VI) with all five mappers. Prints the per-circuit SWAP/depth
//! grid with the paper's excerpt circuits highlighted, then the summary
//! row: Qlosure's average improvement over each baseline, computed as
//! `(VAL_baseline − VAL_qlosure) / VAL_baseline` averaged over circuits.

use bench_support::report::Table;
use bench_support::{all_mappers, engine_batch, mapper_names, run_verified, shared_backend};
use std::collections::HashMap;

fn main() {
    let backend_name = bench_support::runner::backend_arg("sherbrooke");
    let suite = qasmbench::suite();
    eprintln!(
        "table5/6 on {backend_name}: {} circuits x 5 mappers",
        suite.len()
    );
    let backend_ref = &backend_name;
    let rows = engine_batch(
        "table5_6_qasmbench",
        suite,
        |entry| entry.name.clone(),
        |(_, _, _, per_mapper): &(String, usize, usize, Vec<(String, usize, usize)>)| {
            per_mapper
                .iter()
                .flat_map(|(m, swaps, depth)| {
                    [
                        (format!("{m}_swaps"), *swaps as i64),
                        (format!("{m}_depth"), *depth as i64),
                    ]
                })
                .collect()
        },
        |_| Vec::new(),
        move |entry| {
            let device = shared_backend(backend_ref);
            let circuit = entry.build();
            let qops = circuit.qop_count();
            let mut per_mapper = Vec::new();
            for mapper in all_mappers() {
                let out = run_verified(mapper.as_ref(), &circuit, &device);
                eprintln!(
                    "  {} x {}: {:.1}s",
                    entry.name,
                    mapper.name(),
                    out.elapsed.as_secs_f64()
                );
                per_mapper.push((mapper.name().to_string(), out.swaps, out.depth));
            }
            (entry.name.clone(), entry.n_qubits, qops, per_mapper)
        },
    );
    let mut header = vec!["circuit".to_string(), "qubits".into(), "qops".into()];
    for m in mapper_names() {
        header.push(format!("{m}/swaps"));
        header.push(format!("{m}/depth"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!("Table V/VI — QASMBench on {backend_name}"),
        &header_refs,
    );
    for (name, qubits, qops, per_mapper) in &rows {
        let mut cells = vec![name.clone(), qubits.to_string(), qops.to_string()];
        for m in mapper_names() {
            let (_, swaps, depth) = per_mapper
                .iter()
                .find(|(mm, _, _)| mm == m)
                .expect("all mappers ran");
            cells.push(swaps.to_string());
            cells.push(depth.to_string());
        }
        t.row(&cells);
    }
    t.print();
    // Average improvement row.
    let mut swap_impr: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut depth_impr: HashMap<&str, Vec<f64>> = HashMap::new();
    for (_, _, _, per_mapper) in &rows {
        let q = per_mapper
            .iter()
            .find(|(m, _, _)| m == "qlosure")
            .expect("qlosure ran");
        for m in mapper_names() {
            if m == "qlosure" {
                continue;
            }
            let (_, swaps, depth) = per_mapper.iter().find(|(mm, _, _)| mm == m).expect("ran");
            if *swaps > 0 {
                swap_impr
                    .entry(m)
                    .or_default()
                    .push((*swaps as f64 - q.1 as f64) / *swaps as f64);
            }
            if *depth > 0 {
                depth_impr
                    .entry(m)
                    .or_default()
                    .push((*depth as f64 - q.2 as f64) / *depth as f64);
            }
        }
    }
    println!("\naverage improvement of qlosure over baseline (positive = qlosure better):");
    for m in mapper_names() {
        if m == "qlosure" {
            continue;
        }
        let s = swap_impr
            .get(m)
            .map(|v| v.iter().sum::<f64>() / v.len() as f64);
        let d = depth_impr
            .get(m)
            .map(|v| v.iter().sum::<f64>() / v.len() as f64);
        println!(
            "vs {m}: swaps {:.2}% depth {:.2}%",
            s.unwrap_or(f64::NAN) * 100.0,
            d.unwrap_or(f64::NAN) * 100.0
        );
    }
}
