//! Figures 6 and 7 reproduction: per-depth SWAP and depth curves.
//!
//! For a chosen back-end (`--backend sherbrooke` for Fig. 6,
//! `--backend ankaa3` for Fig. 7), sweeps the narrow (16-qubit), medium
//! (54-qubit) and wide (81-qubit) QUEKO suites over the depth grid and
//! prints, per mapper, SWAP counts (top row of the figures) and final
//! depths (bottom row) as CSV series keyed by initial depth. Also reports
//! the share of instances where Qlosure beats each baseline, matching the
//! percentages quoted in §VI-C.

use bench_support::{all_mappers, engine_batch, mapper_names, run_verified, shared_backend, Scale};
use queko::QuekoSpec;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_args_or_exit();
    let backend_name = bench_support::runner::backend_arg("sherbrooke");
    let suites = [
        ("queko-bss-16qbt", "aspen16"),
        ("queko-bss-54qbt", "sycamore54"),
        ("queko-bss-81qbt", "king9"),
    ];
    let mut jobs: Vec<(String, String, usize, u64)> = Vec::new();
    for (suite, gen_dev) in &suites {
        for depth in scale.depths() {
            for seed in 0..scale.seeds() as u64 {
                jobs.push((suite.to_string(), gen_dev.to_string(), depth, seed));
            }
        }
    }
    eprintln!(
        "fig6/7 on {backend_name}: {} instances x 5 mappers",
        jobs.len()
    );
    let backend_ref = &backend_name;
    let rows = engine_batch(
        "fig6_fig7_curves",
        jobs,
        |(suite, _, depth, seed)| format!("{suite}-d{depth}-s{seed}"),
        |(_, _, _, per_mapper): &(String, usize, u64, Vec<(String, usize, usize)>)| {
            per_mapper
                .iter()
                .flat_map(|(m, swaps, depth)| {
                    [
                        (format!("{m}_swaps"), *swaps as i64),
                        (format!("{m}_depth"), *depth as i64),
                    ]
                })
                .collect()
        },
        |_| Vec::new(),
        move |(suite, gen_dev, depth, seed)| {
            let gen_device = shared_backend(gen_dev);
            let device = shared_backend(backend_ref);
            let bench = QuekoSpec::new(&gen_device, *depth).seed(*seed).generate();
            let mut per_mapper = Vec::new();
            for mapper in all_mappers() {
                let out = run_verified(mapper.as_ref(), &bench.circuit, &device);
                per_mapper.push((mapper.name().to_string(), out.swaps, out.depth));
            }
            (suite.clone(), *depth, *seed, per_mapper)
        },
    );
    println!("== Fig. 6/7 — QUEKO curves on {backend_name} ==");
    println!("suite,depth,seed,mapper,swaps,final_depth");
    for (suite, depth, seed, per_mapper) in &rows {
        for (mapper, swaps, final_depth) in per_mapper {
            println!("{suite},{depth},{seed},{mapper},{swaps},{final_depth}");
        }
    }
    // Win-rate summary (the "Qlosure outperformed X in N% of instances").
    let mut wins_swaps: HashMap<(String, String), (usize, usize)> = HashMap::new();
    let mut wins_depth: HashMap<(String, String), (usize, usize)> = HashMap::new();
    for (suite, _, _, per_mapper) in &rows {
        let q = per_mapper
            .iter()
            .find(|(m, _, _)| m == "qlosure")
            .expect("qlosure ran");
        for (mapper, swaps, depth) in per_mapper {
            if mapper == "qlosure" {
                continue;
            }
            let ws = wins_swaps
                .entry((suite.clone(), mapper.clone()))
                .or_insert((0, 0));
            ws.1 += 1;
            if q.1 <= *swaps {
                ws.0 += 1;
            }
            let wd = wins_depth
                .entry((suite.clone(), mapper.clone()))
                .or_insert((0, 0));
            wd.1 += 1;
            if q.2 <= *depth {
                wd.0 += 1;
            }
        }
    }
    println!("\nwin rates (qlosure <= baseline):");
    for (suite, _) in &suites {
        for mapper in mapper_names() {
            if mapper == "qlosure" {
                continue;
            }
            let key = (suite.to_string(), mapper.to_string());
            if let (Some((sw, st)), Some((dw, dt))) = (wins_swaps.get(&key), wins_depth.get(&key)) {
                println!(
                    "{suite} vs {mapper}: swaps {:.0}% depth {:.0}%",
                    100.0 * *sw as f64 / *st as f64,
                    100.0 * *dw as f64 / *dt as f64,
                );
            }
        }
    }
}
