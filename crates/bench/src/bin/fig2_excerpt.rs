//! Figure 2 reproduction: the motivating excerpt.
//!
//! Two circuits — (i) a 54-qubit QUEKO instance (initial depth 900, ~9.7k
//! two-qubit gates) and (ii) an 18-qubit deep QASMBench-style circuit
//! (initial depth ~1.4k, ~0.9k two-qubit gates) — mapped onto IBM
//! Sherbrooke and Rigetti Ankaa-3 by all five mappers. Reported metrics
//! are Δ (final depth − initial depth) and SWAP count, exactly like the
//! paper's Fig. 2 bars.

use bench_support::report::Table;
use bench_support::{all_mappers, backend_by_name, run_verified};
use circuit::Circuit;
use queko::QuekoSpec;

fn deep_18q_circuit() -> Circuit {
    // An 18-qubit, ~900-two-qubit-gate variational circuit with depth in
    // the 1.4k range — the profile of the paper's 18-qubit excerpt.
    qasmbench::variational_ansatz(18, 50)
}

fn main() {
    let sherbrooke = backend_by_name("sherbrooke");
    let ankaa = backend_by_name("ankaa3");
    let sycamore = backend_by_name("sycamore54");
    let queko54 = QuekoSpec::new(&sycamore, 900).seed(0).generate();
    let deep18 = deep_18q_circuit();
    println!(
        "circuit (i): queko-54qbt depth {} / {} two-qubit gates",
        queko54.circuit.depth(),
        queko54.circuit.two_qubit_count()
    );
    println!(
        "circuit (ii): deep-18qbt depth {} / {} two-qubit gates\n",
        deep18.depth(),
        deep18.two_qubit_count()
    );
    let mut table = Table::new(
        "Fig. 2 — mapper comparison (delta depth / swaps)",
        &[
            "circuit",
            "backend",
            "mapper",
            "delta_depth",
            "swaps",
            "time_s",
        ],
    );
    for (cname, circuit, depth0) in [
        ("queko-54", &queko54.circuit, queko54.circuit.depth()),
        ("deep-18", &deep18, deep18.depth()),
    ] {
        for (bname, device) in [("sherbrooke", &sherbrooke), ("ankaa3", &ankaa)] {
            for mapper in all_mappers() {
                let out = run_verified(mapper.as_ref(), circuit, device);
                table.row(&[
                    cname.to_string(),
                    bname.to_string(),
                    mapper.name().to_string(),
                    format!("{}", out.depth as isize - depth0 as isize),
                    out.swaps.to_string(),
                    format!("{:.2}", out.elapsed.as_secs_f64()),
                ]);
            }
        }
    }
    table.print();
}
