//! Figure 2 reproduction: the motivating excerpt.
//!
//! Two circuits — (i) a 54-qubit QUEKO instance (initial depth 900, ~9.7k
//! two-qubit gates) and (ii) an 18-qubit deep QASMBench-style circuit
//! (initial depth ~1.4k, ~0.9k two-qubit gates) — mapped onto IBM
//! Sherbrooke and Rigetti Ankaa-3 by all five mappers. Reported metrics
//! are Δ (final depth − initial depth) and SWAP count, exactly like the
//! paper's Fig. 2 bars. The 2 circuits × 2 back-ends × 5 mappers roster
//! runs through the `BatchEngine` (`ENGINE_THREADS` workers).

use bench_support::report::Table;
use bench_support::{all_mappers, engine_batch, run_verified, shared_backend};
use circuit::Circuit;
use qlosure::Mapper;
use queko::QuekoSpec;
use std::sync::Arc;

type SharedMapper = Arc<dyn Mapper + Send + Sync>;

fn deep_18q_circuit() -> Circuit {
    // An 18-qubit, ~900-two-qubit-gate variational circuit with depth in
    // the 1.4k range — the profile of the paper's 18-qubit excerpt.
    qasmbench::variational_ansatz(18, 50)
}

fn main() {
    let sycamore = shared_backend("sycamore54");
    let queko54 = Arc::new(QuekoSpec::new(&sycamore, 900).seed(0).generate().circuit);
    let deep18 = Arc::new(deep_18q_circuit());
    println!(
        "circuit (i): queko-54qbt depth {} / {} two-qubit gates",
        queko54.depth(),
        queko54.two_qubit_count()
    );
    println!(
        "circuit (ii): deep-18qbt depth {} / {} two-qubit gates\n",
        deep18.depth(),
        deep18.two_qubit_count()
    );
    // The roster is built once; each job carries its own shared mapper so
    // nothing depends on roster functions returning a stable order later.
    let mut jobs: Vec<(&'static str, Arc<Circuit>, &'static str, SharedMapper)> = Vec::new();
    for (cname, circuit) in [("queko-54", &queko54), ("deep-18", &deep18)] {
        for bname in ["sherbrooke", "ankaa3"] {
            for mapper in all_mappers() {
                jobs.push((cname, circuit.clone(), bname, Arc::from(mapper)));
            }
        }
    }
    let rows = engine_batch(
        "fig2_excerpt",
        jobs,
        |(cname, _, bname, mapper)| format!("{cname}-{bname}-{}", mapper.name()),
        |(_, _, _, delta, swaps, _): &(String, String, String, isize, usize, f64)| {
            vec![
                ("delta_depth".to_string(), *delta as i64),
                ("swaps".to_string(), *swaps as i64),
            ]
        },
        |_| Vec::new(),
        |(cname, circuit, bname, mapper)| {
            let device = shared_backend(bname);
            let out = run_verified(mapper.as_ref(), circuit, &device);
            (
                cname.to_string(),
                bname.to_string(),
                mapper.name().to_string(),
                out.depth as isize - circuit.depth() as isize,
                out.swaps,
                out.elapsed.as_secs_f64(),
            )
        },
    );
    let mut table = Table::new(
        "Fig. 2 — mapper comparison (delta depth / swaps)",
        &[
            "circuit",
            "backend",
            "mapper",
            "delta_depth",
            "swaps",
            "time_s",
        ],
    );
    for (cname, bname, mapper, delta, swaps, secs) in &rows {
        table.row(&[
            cname.clone(),
            bname.clone(),
            mapper.clone(),
            format!("{delta}"),
            swaps.to_string(),
            format!("{secs:.2}"),
        ]);
    }
    table.print();
}
