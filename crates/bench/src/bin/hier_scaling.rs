//! Hierarchical vs. flat mapping at 1000+ qubit scale.
//!
//! Sweeps structured square grids (256 → 4096 qubits) with shallow QUEKO
//! traffic, mapping each instance with the flat `QlosureMapper` and the
//! hierarchical `HierMapper` (cold), then re-mapping the hier roster in a
//! *warm* second pass that must replay sub-routing plans out of the
//! content-keyed fragment memo. Every routed output passes
//! `verify_routing` inside `run_verified`. Output: `BENCH_hier.json`
//! (per-job wall times plus memo and distance-cache counters as top-level
//! extras) and a flat-vs-hier comparison table on stdout.
//!
//! Exit status: 1 if the warm pass records **zero** fragment-memo hits —
//! the memo regressing to a no-op is a build failure, not a slow run.

use bench_support::report::{batch_totals, JsonJobRow};
use bench_support::{run_verified, shared_backend, Scale};
use engine::BatchEngine;
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use std::time::Instant;

/// One roster entry: backend name, QUEKO depth and two-qubit density,
/// mapper, pass label.
struct Job {
    backend: &'static str,
    depth: usize,
    density: f64,
    mapper: &'static str,
    pass: &'static str,
}

impl Job {
    fn label(&self) -> String {
        format!(
            "{}-d{}-{}-{}",
            self.backend, self.depth, self.mapper, self.pass
        )
    }
}

fn mapper_for(name: &str) -> Box<dyn Mapper + Send + Sync> {
    match name {
        "flat" => Box::new(QlosureMapper::default()),
        "hier" => Box::new(HierMapper::default()),
        other => panic!("unknown mapper `{other}`"),
    }
}

fn run_batch(engine: &BatchEngine, jobs: &[Job]) -> Vec<(String, usize, usize, usize, f64)> {
    engine.execute(jobs.iter().collect(), |job| {
        let device = shared_backend(job.backend);
        let bench = QuekoSpec::new(&device, job.depth)
            .density_2q(job.density)
            .seed(1)
            .generate();
        let qops = bench.circuit.qop_count();
        let out = run_verified(mapper_for(job.mapper).as_ref(), &bench.circuit, &device);
        (
            job.label(),
            device.n_qubits(),
            qops,
            out.swaps,
            out.elapsed.as_secs_f64(),
        )
    })
}

fn main() {
    let scale = Scale::from_args_or_exit();
    // (backend, depth): depth shrinks with device size so the flat
    // baseline stays runnable; `--scale full` doubles the traffic.
    let factor = match scale {
        Scale::Small => 1,
        Scale::Full => 2,
    };
    // `--max-qubits N` trims the sweep's large end (tuning / quick CI).
    let max_qubits = {
        let mut args = std::env::args().skip(1);
        let mut cap = usize::MAX;
        while let Some(a) = args.next() {
            if a == "--max-qubits" {
                cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(usize::MAX);
            }
        }
        cap
    };
    // Depth and density shrink with device size so the *flat* baseline
    // stays runnable — the whole point of the sweep is that the flat
    // router's per-SWAP cost explodes with the front size at scale while
    // the hierarchical one's does not.
    let points: Vec<(&'static str, usize, f64)> = [
        ("grid:16x16", 256, 16 * factor, 0.3),
        ("grid:32x32", 1024, 8 * factor, 0.2),
        ("grid:32x64", 2048, 4 * factor, 0.1),
        ("grid:64x64", 4096, 2 * factor, 0.05),
    ]
    .into_iter()
    .filter(|&(_, qubits, _, _)| qubits <= max_qubits)
    .map(|(backend, _, depth, density)| (backend, depth, density))
    .collect();
    let cold: Vec<Job> = points
        .iter()
        .flat_map(|&(backend, depth, density)| {
            ["flat", "hier"].into_iter().map(move |mapper| Job {
                backend,
                depth,
                density,
                mapper,
                pass: "cold",
            })
        })
        .collect();
    let warm: Vec<Job> = points
        .iter()
        .map(|&(backend, depth, density)| Job {
            backend,
            depth,
            density,
            mapper: "hier",
            pass: "warm",
        })
        .collect();

    let engine = BatchEngine::from_env();
    let (dist_h0, dist_m0) = topology::shared_distance_stats();
    let (memo_h0, memo_m0) = hier::subroute_memo_stats();
    let plan0 = hier::plan_store_stats();
    let wall0 = Instant::now();
    let cold_rows = run_batch(&engine, &cold);
    let (memo_h1, memo_m1) = hier::subroute_memo_stats();
    let plan1 = hier::plan_store_stats();
    // Warm pass: identical hier jobs — every fragment must now be a hit.
    let warm_rows = run_batch(&engine, &warm);
    let wall_seconds = wall0.elapsed().as_secs_f64();
    let (memo_h2, memo_m2) = hier::subroute_memo_stats();
    let plan2 = hier::plan_store_stats();
    let (dist_h1, dist_m1) = topology::shared_distance_stats();

    let rows: Vec<JsonJobRow> = cold_rows
        .iter()
        .chain(&warm_rows)
        .enumerate()
        .map(|(id, (label, qubits, qops, swaps, seconds))| JsonJobRow {
            id,
            label: label.clone(),
            seconds: *seconds,
            metrics: vec![
                ("qubits".to_string(), *qubits as i64),
                ("qops".to_string(), *qops as i64),
                ("swaps".to_string(), *swaps as i64),
            ],
            pass_seconds: Vec::new(),
            queue_seconds: None,
        })
        .collect();
    let warm_hits = memo_h2 - memo_h1;
    let extras = vec![
        ("memo_misses_cold".to_string(), (memo_m1 - memo_m0) as i64),
        ("memo_hits_cold".to_string(), (memo_h1 - memo_h0) as i64),
        ("memo_hits_warm".to_string(), warm_hits as i64),
        ("memo_misses_warm".to_string(), (memo_m2 - memo_m1) as i64),
        // Hit tiers: what canonicalization buys beyond exact replay.
        (
            "plan_exact_hits_cold".to_string(),
            (plan1.exact_hits - plan0.exact_hits) as i64,
        ),
        (
            "plan_canonical_hits_cold".to_string(),
            (plan1.canonical_hits - plan0.canonical_hits) as i64,
        ),
        (
            "plan_exact_hits_warm".to_string(),
            (plan2.exact_hits - plan1.exact_hits) as i64,
        ),
        (
            "plan_canonical_hits_warm".to_string(),
            (plan2.canonical_hits - plan1.canonical_hits) as i64,
        ),
        ("distance_hits".to_string(), (dist_h1 - dist_h0) as i64),
        ("distance_misses".to_string(), (dist_m1 - dist_m0) as i64),
    ];
    let (cpu_seconds, speedup) = batch_totals(wall_seconds, &rows);
    eprintln!(
        "hier: {} jobs on {} thread(s): wall {wall_seconds:.2}s, cpu {cpu_seconds:.2}s, \
         speedup {speedup:.2}x",
        rows.len(),
        engine.threads(),
    );
    match bench_support::report::write_batch_json_with(
        "hier",
        engine.threads(),
        wall_seconds,
        &rows,
        &extras,
    ) {
        Ok(path) => eprintln!("hier: wrote {}", path.display()),
        Err(e) => eprintln!("hier: could not write JSON report: {e}"),
    }

    println!("== hier_scaling — flat vs hierarchical wall time ==");
    println!("backend,qubits,qops,flat_s,hier_s,hier_warm_s,flat_swaps,hier_swaps,speedup");
    for (i, &(backend, _, _)) in points.iter().enumerate() {
        let flat = &cold_rows[2 * i];
        let hier_cold = &cold_rows[2 * i + 1];
        let hier_warm = &warm_rows[i];
        println!(
            "{backend},{},{},{:.3},{:.3},{:.3},{},{},{:.2}x",
            flat.1,
            flat.2,
            flat.4,
            hier_cold.4,
            hier_warm.4,
            flat.3,
            hier_cold.3,
            flat.4 / hier_cold.4.max(1e-9),
        );
    }
    println!(
        "\nfragment memo: cold {}m/{}h, warm {}h/{}m; distance cache {}h/{}m",
        memo_m1 - memo_m0,
        memo_h1 - memo_h0,
        warm_hits,
        memo_m2 - memo_m1,
        dist_h1 - dist_h0,
        dist_m1 - dist_m0,
    );
    println!(
        "plan tiers: cold {} exact + {} canonical, warm {} exact + {} canonical",
        plan1.exact_hits - plan0.exact_hits,
        plan1.canonical_hits - plan0.canonical_hits,
        plan2.exact_hits - plan1.exact_hits,
        plan2.canonical_hits - plan1.canonical_hits,
    );
    if warm_hits == 0 {
        eprintln!("hier: FATAL: warm pass recorded zero fragment-memo hits");
        std::process::exit(1);
    }
}
