//! Figure 5 reproduction: Qlosure mapping time as a function of quantum
//! operation count (QOPs).
//!
//! One series per back-end (Sherbrooke, Ankaa-3, Sherbrooke-2X), sweeping
//! the queko-bss-54qbt depth grid — the paper's near-linear scaling plot.
//! Output: one `(qops, seconds)` point per instance, CSV-ish, plus a
//! least-squares linearity report. Jobs run through the `BatchEngine`
//! (`ENGINE_THREADS` workers) and the per-job timings land in
//! `BENCH_fig5_scaling.json`.
//!
//! **Timing methodology (since PR 2):** the shared device caches are
//! warm across the roster — each device's distance matrix is computed
//! once, and an instance remapped onto a second back-end reuses its
//! memoized dependence closure — so the points measure the production
//! batch system. For contention-free cold-ish timings, run with
//! `ENGINE_THREADS=1`.

use bench_support::{engine_batch, run_verified, shared_backend, Scale};
use qlosure::QlosureMapper;
use queko::QuekoSpec;

fn main() {
    let scale = Scale::from_args_or_exit();
    let backends = ["sherbrooke", "ankaa3", "sherbrooke2x"];
    let mut jobs: Vec<(String, usize, u64)> = Vec::new();
    for b in &backends {
        for depth in scale.depths() {
            for seed in 0..scale.seeds() as u64 {
                jobs.push((b.to_string(), depth, seed));
            }
        }
    }
    let points = engine_batch(
        "fig5_scaling",
        jobs,
        |(backend, depth, seed)| format!("{backend}-d{depth}-s{seed}"),
        |(_, qops, _, _)| vec![("qops".to_string(), *qops as i64)],
        |(_, _, _, passes): &(String, usize, f64, Vec<(String, f64)>)| passes.clone(),
        |(backend, depth, seed)| {
            let gen_device = shared_backend("sycamore54");
            let device = shared_backend(backend);
            let bench = QuekoSpec::new(&gen_device, *depth).seed(*seed).generate();
            let qops = bench.circuit.qop_count();
            let out = run_verified(&QlosureMapper::default(), &bench.circuit, &device);
            (backend.clone(), qops, out.elapsed.as_secs_f64(), out.passes)
        },
    );
    println!("== Fig. 5 — Qlosure mapping time vs QOPs ==");
    println!("backend,qops,seconds");
    for (backend, qops, secs, _) in &points {
        println!("{backend},{qops},{secs:.3}");
    }
    // Linearity check per backend: report R² of time ~ qops.
    println!("\nleast-squares fit (time = a*qops + b):");
    for b in &backends {
        let series: Vec<(f64, f64)> = points
            .iter()
            .filter(|(bb, _, _, _)| bb == b)
            .map(|(_, q, t, _)| (*q as f64, *t))
            .collect();
        if series.len() < 2 {
            continue;
        }
        let n = series.len() as f64;
        let sx: f64 = series.iter().map(|p| p.0).sum();
        let sy: f64 = series.iter().map(|p| p.1).sum();
        let sxx: f64 = series.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = series.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        let a = (n * sxy - sx * sy) / denom;
        let bb = (sy - a * sx) / n;
        let mean_y = sy / n;
        let ss_tot: f64 = series.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = series.iter().map(|p| (p.1 - (a * p.0 + bb)).powi(2)).sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        println!("{b}: a = {a:.3e} s/qop, b = {bb:.3}, R^2 = {r2:.4}");
    }
}
