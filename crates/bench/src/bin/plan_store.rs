//! Cross-process plan-store bench: does the disk tier actually pay?
//!
//! Routes a hierarchical QUEKO roster **cold** in one child process
//! against a fresh `--plan-store` directory (every fragment is a miss
//! that computes and persists), then restarts a **second** child process
//! against the same directory: its process-private memo is empty, so
//! every recurring fragment must come back through the disk tier. The
//! parent compares the children's self-measured roster wall times and
//! their tiered counters.
//!
//! Exit status: 1 unless the warm (restarted) process records **>0**
//! disk-tier hits *and* is strictly faster than the cold one — a disk
//! tier that never hits, or one that hits without saving time, is a
//! build failure, not a slow run. Output: `BENCH_plan_store.json` with
//! one row per child plus the tier counters as extras.
//!
//! Each child is this same binary re-executed with `--child`; the
//! measured window covers only the roster (store attach and process
//! startup excluded).

use bench_support::report::{batch_totals, JsonJobRow};
use bench_support::{run_verified, shared_backend};
use hier::HierMapper;
use queko::QuekoSpec;
use std::path::Path;
use std::time::Instant;

/// The roster both children route: hier-scale grids with shallow QUEKO
/// traffic, heavy enough that sub-route computes dominate wall time.
const ROSTER: &[(&str, usize, f64)] = &[
    ("grid:16x16", 24, 0.4),
    ("grid:24x24", 16, 0.3),
    ("grid:32x32", 12, 0.25),
    ("grid:32x64", 8, 0.2),
];

struct ChildReport {
    seconds: f64,
    swaps: u64,
    exact: u64,
    canonical: u64,
    disk_hits: u64,
    disk_writes: u64,
    misses: u64,
}

/// Child mode: attach the store, route the roster, print one parseable
/// report line on stdout.
fn child(dir: &str) -> ! {
    hier::configure_plan_store(dir).expect("plan store directory must open");
    let mapper = HierMapper::default();
    let mut swaps = 0u64;
    let start = Instant::now();
    for &(backend, depth, density) in ROSTER {
        let device = shared_backend(backend);
        let bench = QuekoSpec::new(&device, depth)
            .density_2q(density)
            .seed(7)
            .generate();
        swaps += run_verified(&mapper, &bench.circuit, &device).swaps as u64;
    }
    let seconds = start.elapsed().as_secs_f64();
    let p = hier::plan_store_stats();
    println!(
        "plan_store_child seconds={seconds} swaps={swaps} exact={} canonical={} \
         disk_hits={} disk_writes={} misses={}",
        p.exact_hits, p.canonical_hits, p.disk_hits, p.disk_writes, p.misses,
    );
    std::process::exit(0);
}

/// Re-executes this binary in `--child` mode and parses its report line.
fn spawn_child(dir: &Path, label: &str) -> ChildReport {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .arg("--child")
        .arg(dir)
        .output()
        .expect("child process must spawn");
    assert!(
        out.status.success(),
        "{label} child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("plan_store_child "))
        .unwrap_or_else(|| panic!("{label} child printed no report line:\n{stdout}"));
    let field = |name: &str| -> f64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{label} child report lacks `{name}`: {line}"))
    };
    ChildReport {
        seconds: field("seconds"),
        swaps: field("swaps") as u64,
        exact: field("exact") as u64,
        canonical: field("canonical") as u64,
        disk_hits: field("disk_hits") as u64,
        disk_writes: field("disk_writes") as u64,
        misses: field("misses") as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        child(args.get(1).expect("--child needs a store directory"));
    }
    let dir = std::env::temp_dir().join(format!("qlosure-plan-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wall0 = Instant::now();
    let cold = spawn_child(&dir, "cold");
    let warm = spawn_child(&dir, "warm");
    let wall_seconds = wall0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    let rows: Vec<JsonJobRow> = [("cold", &cold), ("warm", &warm)]
        .into_iter()
        .enumerate()
        .map(|(id, (label, r))| JsonJobRow {
            id,
            label: label.to_string(),
            seconds: r.seconds,
            metrics: vec![
                ("swaps".to_string(), r.swaps as i64),
                ("disk_hits".to_string(), r.disk_hits as i64),
                ("disk_writes".to_string(), r.disk_writes as i64),
                ("misses".to_string(), r.misses as i64),
            ],
            pass_seconds: Vec::new(),
            queue_seconds: None,
        })
        .collect();
    let extras = vec![
        ("cold_misses".to_string(), cold.misses as i64),
        ("cold_disk_writes".to_string(), cold.disk_writes as i64),
        ("warm_disk_hits".to_string(), warm.disk_hits as i64),
        ("warm_misses".to_string(), warm.misses as i64),
        ("warm_exact_hits".to_string(), warm.exact as i64),
        ("warm_canonical_hits".to_string(), warm.canonical as i64),
        (
            "speedup_x100".to_string(),
            (cold.seconds / warm.seconds.max(1e-9) * 100.0) as i64,
        ),
    ];
    let (_, _) = batch_totals(wall_seconds, &rows);
    match bench_support::report::write_batch_json_with(
        "plan_store",
        1,
        wall_seconds,
        &rows,
        &extras,
    ) {
        Ok(path) => eprintln!("plan_store: wrote {}", path.display()),
        Err(e) => eprintln!("plan_store: could not write JSON report: {e}"),
    }

    println!("== plan_store — cold process vs restarted process, shared store dir ==");
    println!("pass,seconds,swaps,misses,disk_hits,disk_writes");
    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{label},{:.3},{},{},{},{}",
            r.seconds, r.swaps, r.misses, r.disk_hits, r.disk_writes
        );
    }
    println!(
        "restart speedup: {:.2}x (routing determinism: swaps {} == {})",
        cold.seconds / warm.seconds.max(1e-9),
        cold.swaps,
        warm.swaps,
    );

    // Gates. Identical routing across processes is a hard invariant
    // (plans are pure functions of canonical content), checked first so
    // a correctness break never hides behind a timing failure.
    if warm.swaps != cold.swaps {
        eprintln!(
            "plan_store: FATAL: restarted process routed differently ({} vs {} swaps)",
            warm.swaps, cold.swaps
        );
        std::process::exit(1);
    }
    if cold.disk_writes == 0 {
        eprintln!("plan_store: FATAL: cold process persisted zero plans");
        std::process::exit(1);
    }
    if warm.disk_hits == 0 {
        eprintln!("plan_store: FATAL: restarted process recorded zero disk-tier hits");
        std::process::exit(1);
    }
    if warm.seconds >= cold.seconds {
        eprintln!(
            "plan_store: FATAL: restarted process was not faster ({:.3}s vs {:.3}s cold)",
            warm.seconds, cold.seconds
        );
        std::process::exit(1);
    }
}
