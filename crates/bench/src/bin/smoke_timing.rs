//! Developer smoke test: per-mapper wall-clock on one QUEKO instance.
//! Not part of the paper reproduction; used to calibrate harness scales.
//! The per-mapper jobs run through the `BatchEngine`, so this is also the
//! quickest end-to-end check of the parallel harness + JSON report.

use bench_support::{all_mappers, engine_batch, run_verified, shared_backend};
use queko::QuekoSpec;
use std::sync::Arc;

fn main() {
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let gen_device = shared_backend("sycamore54");
    let device = shared_backend("sherbrooke");
    let bench = Arc::new(QuekoSpec::new(&gen_device, depth).seed(0).generate());
    eprintln!(
        "queko54 depth {depth}: {} gates, {} two-qubit",
        bench.circuit.qop_count(),
        bench.circuit.two_qubit_count()
    );
    let only: Option<String> = std::env::args().nth(2);
    // One job per mapper; each job owns its mapper instance.
    let jobs: Vec<Box<dyn qlosure::Mapper + Send + Sync>> = all_mappers()
        .into_iter()
        .filter(|m| only.as_deref().is_none_or(|o| o == m.name()))
        .collect();
    let bench_ref = &bench;
    let device_ref = &device;
    let rows = engine_batch(
        "smoke_timing",
        jobs,
        |m| m.name().to_string(),
        |(_, swaps, depth, _, _): &(String, usize, usize, f64, Vec<(String, f64)>)| {
            vec![
                ("swaps".to_string(), *swaps as i64),
                ("depth".to_string(), *depth as i64),
            ]
        },
        |(_, _, _, _, passes)| passes.clone(),
        move |mapper| {
            let out = run_verified(mapper.as_ref(), &bench_ref.circuit, device_ref);
            (
                mapper.name().to_string(),
                out.swaps,
                out.depth,
                out.elapsed.as_secs_f64(),
                out.passes,
            )
        },
    );
    for (name, swaps, depth, secs, passes) in &rows {
        let route_secs = passes
            .iter()
            .filter(|(l, _)| l.starts_with("routing:"))
            .map(|(_, s)| *s)
            .sum::<f64>();
        eprintln!(
            "{name:<8} swaps {swaps:>6} depth {depth:>6} time {secs:>8.2}s (routing {route_secs:.2}s)"
        );
    }
}
