//! Developer smoke test: per-mapper wall-clock on one QUEKO instance.
//! Not part of the paper reproduction; used to calibrate harness scales.

use bench_support::{all_mappers, backend_by_name, run_verified};
use queko::QuekoSpec;

fn main() {
    let depth: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let gen_device = backend_by_name("sycamore54");
    let device = backend_by_name("sherbrooke");
    let bench = QuekoSpec::new(&gen_device, depth).seed(0).generate();
    eprintln!(
        "queko54 depth {depth}: {} gates, {} two-qubit",
        bench.circuit.qop_count(),
        bench.circuit.two_qubit_count()
    );
    let only: Option<String> = std::env::args().nth(2);
    for mapper in all_mappers() {
        if only.as_deref().is_some_and(|o| o != mapper.name()) {
            continue;
        }
        eprintln!("running {} ...", mapper.name());
        let t = std::time::Instant::now();
        let out = run_verified(mapper.as_ref(), &bench.circuit, &device);
        eprintln!(
            "{:<8} swaps {:>6} depth {:>6} time {:>8.2}s (total {:.2}s with verify)",
            mapper.name(),
            out.swaps,
            out.depth,
            out.elapsed.as_secs_f64(),
            t.elapsed().as_secs_f64()
        );
    }
}
