//! Event-journal overhead gate: the flight-recorder instrumentation
//! must stay free when the journal is off and harmless when it is on.
//!
//! Maps the `router_core` budget instance (1024-qubit QUEKO on grid
//! 32×32, depth 8, 20% two-qubit density, seed 1) flat and hierarchical,
//! first with the journal disabled (the process default) and then with
//! the journal enabled *and* a churn thread hammering it — emitting
//! events far faster than any real subsystem would, so the bounded ring
//! is evicting the whole time. Three contracts are enforced:
//!
//! 1. **Disabled-path cost.** `obs::event` sits on warning paths inside
//!    the engine and the plan store, so a disabled journal must cost one
//!    relaxed atomic load per site: the disabled flat cold map must stay
//!    within 2% of the committed [`FLAT_COLD_1024Q_BUDGET_SECONDS`]
//!    `router_core` budget — the same envelope the tracing gate uses.
//!    A micro-loop additionally pins the per-call disabled cost.
//! 2. **Golden equivalence.** The journal observes, it never steers:
//!    each mapper's result fingerprint under a live, churning journal
//!    must be bit-for-bit identical to the disabled run's.
//! 3. **Bounded ring.** After the churn the journal must have retained
//!    at most its capacity and counted every eviction in
//!    [`obs::dropped_total`] — overflow is a counter, never a stall.
//!
//! Output: `BENCH_obs_overhead.json` with one row per (mapper, journal)
//! pair plus the gate threshold and micro-loop cost as extras. Exit
//! status: 1 on a budget breach or any fingerprint divergence.

use bench_support::report::JsonJobRow;
use bench_support::{shared_backend, FLAT_COLD_1024Q_BUDGET_SECONDS};
use circuit::{verify_routing, Circuit};
use hier::HierMapper;
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use service::result_fingerprint;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use topology::CouplingGraph;

/// Headroom over the committed budget: the disabled path may cost at
/// most 2% of the `router_core` bound before this gate fails the build.
const OVERHEAD_HEADROOM: f64 = 1.02;

/// Disabled-path micro-loop iterations (one `obs::event` call each).
const MICRO_CALLS: u64 = 1_000_000;

/// Journal capacity for the enabled runs: small on purpose, so the
/// churn thread forces constant eviction while the mappers run.
const CHURN_CAPACITY: usize = 256;

struct Run {
    seconds: f64,
    fingerprint: u64,
    swaps: usize,
    passes: Vec<(String, f64)>,
}

/// One verified mapping run under whatever journal state the process is
/// in, keeping the result fingerprint.
fn run_once(mapper: &(dyn Mapper + Send + Sync), circuit: &Circuit, device: &CouplingGraph) -> Run {
    let start = Instant::now();
    let timed = qlosure::run_mapper_timed(mapper, circuit, device);
    let seconds = start.elapsed().as_secs_f64();
    verify_routing(
        circuit,
        &timed.result.routed,
        &|a, b| device.is_adjacent(a, b),
        &timed.result.initial_layout,
    )
    .unwrap_or_else(|e| panic!("{} produced invalid routing: {e}", mapper.name()));
    Run {
        seconds,
        fingerprint: result_fingerprint(&timed.result),
        swaps: timed.result.swaps,
        passes: timed.passes,
    }
}

fn main() {
    // Micro-loop FIRST, while the journal is still in its process-default
    // disabled state: the per-call cost of a disabled `obs::event` is one
    // relaxed atomic load and a branch — the arguments must not even be
    // formatted. Formatting happens at the call sites only under
    // `obs::enabled()` guards or with pre-built strings, so this loop is
    // the honest per-site price.
    assert!(!obs::enabled(), "the journal must start disabled");
    let micro0 = Instant::now();
    for i in 0..MICRO_CALLS {
        obs::event(
            obs::Level::Warn,
            "bench",
            "disabled-path probe",
            &[("i", if i % 2 == 0 { "even" } else { "odd" })],
        );
    }
    let micro_nanos = micro0.elapsed().as_nanos() as f64 / MICRO_CALLS as f64;

    let device = shared_backend("grid:32x32");
    let bench = QuekoSpec::new(&device, 8)
        .density_2q(0.2)
        .seed(1)
        .generate();
    let mappers: Vec<(&str, Box<dyn Mapper + Send + Sync>)> = vec![
        ("flat", Box::new(QlosureMapper::default())),
        ("hier", Box::new(HierMapper::default())),
    ];

    let wall0 = Instant::now();
    let mut rows: Vec<JsonJobRow> = Vec::new();
    let mut failures = 0u32;
    let mut flat_disabled_seconds = f64::NAN;
    println!("== obs_overhead — disabled-path cost and golden equivalence ==");
    println!("mapper,journal,seconds,swaps,fingerprint");

    // Disabled runs first: these are the cold runs the budget is defined
    // over, before any shared cache warms up and before the journal
    // flips on (enabling is one-way within a process).
    let mut disabled_runs: Vec<Run> = Vec::new();
    for (name, mapper) in &mappers {
        let run = run_once(mapper.as_ref(), &bench.circuit, &device);
        if *name == "flat" {
            flat_disabled_seconds = run.seconds;
        }
        println!(
            "{name},disabled,{:.3},{},{:016x}",
            run.seconds, run.swaps, run.fingerprint
        );
        disabled_runs.push(run);
    }

    // Enabled runs under churn: a tight writer thread keeps the small
    // ring evicting for the whole mapping, the worst realistic journal
    // pressure (real sites fire on warnings, not in loops).
    obs::enable_with_capacity(CHURN_CAPACITY);
    let stop = AtomicBool::new(false);
    let mut enabled_runs: Vec<Run> = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let depth = i.to_string();
                obs::event(
                    obs::Level::Info,
                    "bench",
                    "journal churn",
                    &[("depth", &depth)],
                );
                i += 1;
                if i % 1024 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        for (name, mapper) in &mappers {
            let run = run_once(mapper.as_ref(), &bench.circuit, &device);
            println!(
                "{name},enabled,{:.3},{},{:016x}",
                run.seconds, run.swaps, run.fingerprint
            );
            enabled_runs.push(run);
        }
        stop.store(true, Ordering::Relaxed);
    });

    for ((name, _), (disabled, enabled)) in mappers
        .iter()
        .zip(disabled_runs.iter().zip(enabled_runs.iter()))
    {
        for (label, run) in [("disabled", disabled), ("enabled", enabled)] {
            rows.push(JsonJobRow {
                id: rows.len(),
                label: format!("{name}-journal-{label}"),
                seconds: run.seconds,
                metrics: vec![("swaps".to_string(), run.swaps as i64)],
                pass_seconds: run.passes.clone(),
                queue_seconds: None,
            });
        }
        if enabled.fingerprint != disabled.fingerprint {
            eprintln!(
                "obs_overhead: FATAL: {name} mapping diverged under the journal \
                 ({:016x} enabled vs {:016x} disabled) — events must never \
                 steer the mapping",
                enabled.fingerprint, disabled.fingerprint
            );
            failures += 1;
        }
    }

    // The ring stayed bounded and counted its evictions.
    let retained = obs::events_since(0, obs::Level::Debug).1.len();
    let dropped = obs::dropped_total();
    println!("journal after churn: {retained} retained, {dropped} dropped");
    if retained > CHURN_CAPACITY {
        eprintln!(
            "obs_overhead: FATAL: journal retained {retained} events over its \
             capacity of {CHURN_CAPACITY}"
        );
        failures += 1;
    }
    if dropped == 0 {
        eprintln!(
            "obs_overhead: FATAL: the churn thread never overflowed the \
             {CHURN_CAPACITY}-slot ring — the churn is not exercising eviction"
        );
        failures += 1;
    }
    let wall_seconds = wall0.elapsed().as_secs_f64();

    let gate = FLAT_COLD_1024Q_BUDGET_SECONDS * OVERHEAD_HEADROOM;
    let extras = vec![
        ("disabled_gate_millis".to_string(), (gate * 1000.0) as i64),
        (
            "flat_1024q_budget_millis".to_string(),
            (FLAT_COLD_1024Q_BUDGET_SECONDS * 1000.0) as i64,
        ),
        (
            "disabled_event_picos".to_string(),
            (micro_nanos * 1000.0) as i64,
        ),
        ("journal_dropped".to_string(), dropped as i64),
    ];
    match bench_support::report::write_batch_json_with(
        "obs_overhead",
        1,
        wall_seconds,
        &rows,
        &extras,
    ) {
        Ok(path) => eprintln!("obs_overhead: wrote {}", path.display()),
        Err(e) => eprintln!("obs_overhead: could not write JSON report: {e}"),
    }

    println!(
        "\ndisabled event call: {micro_nanos:.1}ns; 1024q flat cold, journal \
         disabled: {flat_disabled_seconds:.3}s (gate {gate:.1}s)"
    );
    if flat_disabled_seconds > gate {
        eprintln!(
            "obs_overhead: FATAL: 1024q flat cold map with the journal disabled \
             took {flat_disabled_seconds:.1}s, over the {gate:.1}s gate \
             ({FLAT_COLD_1024Q_BUDGET_SECONDS}s budget + 2%)"
        );
        failures += 1;
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
