//! Fleet bench: prove that **sharding by content keeps caches hot**.
//!
//! The shared per-device caches (distance matrices, closure memos) are
//! bounded at 32 entries with FIFO eviction — a single daemon serving a
//! roster of **40 distinct devices** thrashes them, so a warm second
//! pass over the same roster still misses. Split the same traffic
//! across **two `qlosured` shards behind `qlosure-router`** and each
//! shard only ever sees its ~20 content-keyed devices, which fit, so
//! the warm pass hits.
//!
//! Shards must be separate **OS processes** (the caches are per-process
//! statics), so this binary spawns real `qlosured` children from the
//! same target directory and talks to them over their sockets — the
//! router runs in-process (it owns no caches). Both scenarios replay
//! the identical roster twice; the warm hit-ratio is computed from the
//! stats *delta* between the passes.
//!
//! Writes `BENCH_fleet.json` and **fails (exit 1) unless the 2-shard
//! fleet's warm distance-cache hit-ratio strictly beats the single
//! daemon's** — the acceptance check that the shard-by-content rule
//! actually buys what it promises.
//!
//! ```text
//! cargo build --release -p qlosure-service &&
//! ENGINE_THREADS=4 cargo run --release -p qlosure-bench --bin service_fleet
//! ```

use bench_support::report;
use service::{content_shard, Client, Endpoint, Priority, RouterConfig};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Distinct devices in the roster — chosen to overflow the 32-entry
/// FIFO caches on one daemon while ~half fits comfortably on each of
/// two shards.
const N_DEVICES: usize = 40;
const N_SHARDS: usize = 2;

fn roster() -> Vec<String> {
    // line:4..line:23 and ring:4..ring:23 — 40 distinct device contents.
    let mut names = Vec::with_capacity(N_DEVICES);
    for n in 4..4 + N_DEVICES / 2 {
        names.push(format!("line:{n}"));
    }
    for n in 4..4 + N_DEVICES / 2 {
        names.push(format!("ring:{n}"));
    }
    names
}

/// The `qlosured` binary sitting next to this bench in the target dir.
fn qlosured_path() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe resolves");
    let dir = me.parent().expect("bench binary has a parent dir");
    let path = dir.join("qlosured");
    assert!(
        path.exists(),
        "{} not found — build it first: cargo build --release -p qlosure-service",
        path.display()
    );
    path
}

fn spawn_shard(socket: &std::path::Path) -> Child {
    Command::new(qlosured_path())
        .arg("--listen")
        .arg(format!("unix:{}", socket.display()))
        .spawn()
        .expect("spawn qlosured child")
}

/// Polls the endpoint until the daemon accepts connections.
fn await_ready(endpoint: &Endpoint) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect_endpoint(endpoint) {
            Ok(client) => return client,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("daemon at {endpoint} never came up: {e}"),
        }
    }
}

/// One replay of the full roster through `client`; returns per-job rows
/// labelled `<tag>:<device>`.
fn replay(client: &mut Client, tag: &str, jobs: &[(String, String)]) -> Vec<report::JsonJobRow> {
    let mut ids = Vec::new();
    for (device, qasm_src) in jobs {
        let id = client
            .submit(device, "qlosure", qasm_src, Priority::Batch, false)
            .unwrap_or_else(|e| panic!("submit {device}: {e}"));
        ids.push((id, device.clone()));
    }
    let mut rows = Vec::new();
    for (id, device) in ids {
        let summary = client
            .wait(id, Duration::from_secs(600))
            .unwrap_or_else(|e| panic!("wait {device}: {e}"));
        assert!(summary.verified, "{device}: fleet result must be verified");
        rows.push(report::JsonJobRow {
            id: id as usize,
            label: format!("{tag}:{device}"),
            seconds: summary.seconds,
            metrics: vec![
                ("swaps".to_string(), summary.swaps as i64),
                ("depth".to_string(), summary.depth as i64),
                ("qops".to_string(), summary.qops as i64),
                ("seq".to_string(), summary.seq as i64),
            ],
            pass_seconds: summary.pass_seconds.clone(),
            queue_seconds: Some(summary.queue_seconds),
        });
    }
    rows
}

/// Warm distance-cache hit-ratio from the stats delta between the cold
/// and warm passes, in parts per million (integer for the JSON report).
fn warm_ratio_ppm(hits: u64, misses: u64) -> i64 {
    let total = hits + misses;
    if total == 0 {
        0
    } else {
        ((hits as f64 / total as f64) * 1_000_000.0).round() as i64
    }
}

struct ScenarioResult {
    rows: Vec<report::JsonJobRow>,
    warm_hits: u64,
    warm_misses: u64,
}

/// Replays the roster twice through `client` and measures the warm pass.
fn run_scenario(client: &mut Client, tag: &str, jobs: &[(String, String)]) -> ScenarioResult {
    let mut rows = replay(client, &format!("{tag}-cold"), jobs);
    let cold = client.stats().expect("stats after cold pass");
    rows.extend(replay(client, &format!("{tag}-warm"), jobs));
    let warm = client.stats().expect("stats after warm pass");
    ScenarioResult {
        rows,
        warm_hits: warm.distance_hits - cold.distance_hits,
        warm_misses: warm.distance_misses - cold.distance_misses,
    }
}

fn main() {
    let pid = std::process::id();
    let tmp = std::env::temp_dir();
    let roster = roster();

    // Pre-generate every job's QASM once in this process, so the child
    // daemons do identical work in both scenarios.
    let jobs: Vec<(String, String)> = roster
        .iter()
        .map(|device| {
            let graph = topology::backends::by_name(device).expect("roster device resolves");
            let bench = queko::QuekoSpec::new(&graph, 12).seed(7).generate();
            (device.clone(), qasm::emit(&bench.circuit.to_qasm()))
        })
        .collect();
    let per_shard: Vec<usize> = (0..N_SHARDS)
        .map(|s| {
            roster
                .iter()
                .filter(|d| content_shard(d, N_SHARDS) == s)
                .count()
        })
        .collect();
    eprintln!(
        "service_fleet: {} devices, content-sharded {:?} across {} shards (cache bound 32)",
        roster.len(),
        per_shard,
        N_SHARDS
    );

    let wall0 = Instant::now();

    // Scenario A — a single daemon swallowing the whole roster.
    let single_socket = tmp.join(format!("qlosure-fleet-single-{pid}.sock"));
    let mut single_child = spawn_shard(&single_socket);
    let single_ep = Endpoint::Unix(single_socket.clone());
    let mut client = await_ready(&single_ep);
    let single = run_scenario(&mut client, "single", &jobs);
    client.shutdown().expect("single daemon shutdown");
    let status = single_child.wait().expect("single daemon child reaped");
    assert!(status.success(), "single daemon exited cleanly");

    // Scenario B — the same roster through a router over two shards.
    let shard_sockets: Vec<PathBuf> = (0..N_SHARDS)
        .map(|s| tmp.join(format!("qlosure-fleet-shard{s}-{pid}.sock")))
        .collect();
    let mut shard_children: Vec<Child> = shard_sockets.iter().map(|s| spawn_shard(s)).collect();
    for socket in &shard_sockets {
        drop(await_ready(&Endpoint::Unix(socket.clone())));
    }
    let router_socket = tmp.join(format!("qlosure-fleet-router-{pid}.sock"));
    let config = RouterConfig::fronting(
        Endpoint::Unix(router_socket.clone()),
        shard_sockets.iter().cloned().map(Endpoint::Unix).collect(),
    );
    let router = service::router::spawn(config).expect("router binds");
    let mut client = await_ready(&Endpoint::Unix(router_socket.clone()));
    let sharded = run_scenario(&mut client, "sharded", &jobs);
    client.shutdown().expect("fleet shutdown fans out");
    router.join().expect("router exits cleanly");
    for child in &mut shard_children {
        let status = child.wait().expect("shard child reaped");
        assert!(status.success(), "shard daemon exited cleanly");
    }

    let wall_seconds = wall0.elapsed().as_secs_f64();
    let single_ppm = warm_ratio_ppm(single.warm_hits, single.warm_misses);
    let sharded_ppm = warm_ratio_ppm(sharded.warm_hits, sharded.warm_misses);

    let mut rows = single.rows;
    rows.extend(sharded.rows);
    let extras = vec![
        ("n_devices".to_string(), roster.len() as i64),
        ("n_shards".to_string(), N_SHARDS as i64),
        ("single_warm_hits".to_string(), single.warm_hits as i64),
        ("single_warm_misses".to_string(), single.warm_misses as i64),
        ("single_warm_ratio_ppm".to_string(), single_ppm),
        ("sharded_warm_hits".to_string(), sharded.warm_hits as i64),
        (
            "sharded_warm_misses".to_string(),
            sharded.warm_misses as i64,
        ),
        ("sharded_warm_ratio_ppm".to_string(), sharded_ppm),
    ];
    let (cpu_seconds, speedup) = report::batch_totals(wall_seconds, &rows);
    eprintln!(
        "service_fleet: warm distance-cache hit-ratio single {:.1}% ({}h/{}m) vs 2-shard {:.1}% \
         ({}h/{}m); wall {wall_seconds:.2}s, cpu {cpu_seconds:.2}s, speedup {speedup:.2}x",
        single_ppm as f64 / 10_000.0,
        single.warm_hits,
        single.warm_misses,
        sharded_ppm as f64 / 10_000.0,
        sharded.warm_hits,
        sharded.warm_misses,
    );
    match report::write_batch_json_with("fleet", N_SHARDS, wall_seconds, &rows, &extras) {
        Ok(path) => eprintln!("service_fleet: wrote {}", path.display()),
        Err(e) => {
            eprintln!("service_fleet: could not write JSON report: {e}");
            std::process::exit(1);
        }
    }

    // The acceptance check: sharding by content must keep the warm pass
    // hotter than one thrashing daemon — strictly, or the fleet tier is
    // not paying for itself.
    if sharded_ppm <= single_ppm {
        eprintln!(
            "service_fleet: FAIL — 2-shard warm hit-ratio {sharded_ppm} ppm does not beat \
             single-daemon {single_ppm} ppm"
        );
        std::process::exit(1);
    }
}
