//! Tables II and III reproduction: QUEKO summary across back-ends.
//!
//! Runs all five mappers over QUEKO suites generated for 16-qubit
//! (Aspen-style), 54-qubit (Sycamore-style) and 81-qubit (9×9 king grid)
//! devices, mapped onto IBM Sherbrooke and Rigetti Ankaa-3, plus a
//! 16×16-king-grid suite mapped onto Sherbrooke-2X — the configuration of
//! the paper's §VI-B. Emits:
//!
//! * **Table II**: average depth-factor (mapped depth / optimal depth),
//!   grouped into Medium (initial depth ≤ 500) and Large (≥ 600);
//! * **Table III**: average SWAP ratio (baseline SWAPs / Qlosure SWAPs).
//!
//! `--scale full` restores the paper's 9 depths × 10 seeds grid.

use bench_support::report::{f2, mean, Table};
use bench_support::{all_mappers, engine_batch, mapper_names, run_verified, shared_backend, Scale};
use queko::QuekoSpec;
use std::collections::HashMap;

struct Job {
    backend: String,
    depth: usize,
    seed: u64,
    suite_device: String,
}

fn main() {
    let scale = Scale::from_args_or_exit();
    // (suite generator device, target backend)
    let configs: Vec<(&str, &str)> = vec![
        ("aspen16", "sherbrooke"),
        ("sycamore54", "sherbrooke"),
        ("king9", "sherbrooke"),
        ("aspen16", "ankaa3"),
        ("sycamore54", "ankaa3"),
        ("king9", "ankaa3"),
        ("king16", "sherbrooke2x"),
    ];
    let mut jobs: Vec<Job> = Vec::new();
    for (suite_device, backend) in &configs {
        for depth in scale.depths() {
            for seed in 0..scale.seeds() as u64 {
                jobs.push(Job {
                    backend: backend.to_string(),
                    depth,
                    seed,
                    suite_device: suite_device.to_string(),
                });
            }
        }
    }
    eprintln!("table2_3: {} instances x 5 mappers", jobs.len());
    // results[(backend, size_class)][mapper] -> Vec<(depth_factor, swaps)>
    let outcomes = engine_batch(
        "table2_3_queko_summary",
        jobs,
        |j| {
            format!(
                "{}-on-{}-d{}-s{}",
                j.suite_device, j.backend, j.depth, j.seed
            )
        },
        |(_, _, per_mapper): &(String, usize, Vec<(String, f64, usize)>)| {
            per_mapper
                .iter()
                .map(|(m, _, swaps)| (format!("{m}_swaps"), *swaps as i64))
                .collect()
        },
        |_| Vec::new(),
        |job| {
            let gen_device = shared_backend(&job.suite_device);
            let device = shared_backend(&job.backend);
            let bench = QuekoSpec::new(&gen_device, job.depth)
                .seed(job.seed)
                .generate();
            let mut per_mapper: Vec<(String, f64, usize)> = Vec::new();
            for mapper in all_mappers() {
                let out = run_verified(mapper.as_ref(), &bench.circuit, &device);
                per_mapper.push((
                    mapper.name().to_string(),
                    out.depth as f64 / bench.optimal_depth as f64,
                    out.swaps,
                ));
            }
            (job.backend.clone(), job.depth, per_mapper)
        },
    );
    // Aggregate.
    type Key = (String, &'static str, String); // backend, class, mapper
    let mut depth_factors: HashMap<Key, Vec<f64>> = HashMap::new();
    let mut swap_ratios: HashMap<Key, Vec<f64>> = HashMap::new();
    for (backend, depth, per_mapper) in &outcomes {
        let class = if *depth <= 500 { "Medium" } else { "Large" };
        let qlosure_swaps = per_mapper
            .iter()
            .find(|(m, _, _)| m == "qlosure")
            .map(|&(_, _, s)| s)
            .expect("qlosure ran");
        for (mapper, df, swaps) in per_mapper {
            let key = (backend.clone(), class, mapper.clone());
            depth_factors.entry(key.clone()).or_default().push(*df);
            if mapper != "qlosure" && qlosure_swaps > 0 {
                swap_ratios
                    .entry(key)
                    .or_default()
                    .push(*swaps as f64 / qlosure_swaps as f64);
            }
        }
    }
    let backends = ["sherbrooke", "ankaa3", "sherbrooke2x"];
    let classes = ["Medium", "Large"];
    let mut t2 = Table::new(
        "Table II — average depth-factor (mapped depth / optimal depth), lower is better",
        &[
            "mapper",
            "sherbrooke/Med",
            "sherbrooke/Lrg",
            "ankaa3/Med",
            "ankaa3/Lrg",
            "2x/Med",
            "2x/Lrg",
        ],
    );
    for mapper in mapper_names() {
        let mut cells = vec![mapper.to_string()];
        for b in &backends {
            for c in &classes {
                let key = (b.to_string(), *c, mapper.to_string());
                let cell = depth_factors
                    .get(&key)
                    .map(|v| f2(mean(v)))
                    .unwrap_or_else(|| "-".into());
                cells.push(cell);
            }
        }
        t2.row(&cells);
    }
    t2.print();
    println!();
    let mut t3 = Table::new(
        "Table III — average SWAP ratio (baseline SWAPs / Qlosure SWAPs), >1 favours Qlosure",
        &[
            "mapper",
            "sherbrooke/Med",
            "sherbrooke/Lrg",
            "ankaa3/Med",
            "ankaa3/Lrg",
            "2x/Med",
            "2x/Lrg",
        ],
    );
    for mapper in mapper_names() {
        if mapper == "qlosure" {
            continue;
        }
        let mut cells = vec![mapper.to_string()];
        for b in &backends {
            for c in &classes {
                let key = (b.to_string(), *c, mapper.to_string());
                let cell = swap_ratios
                    .get(&key)
                    .map(|v| f2(mean(v)))
                    .unwrap_or_else(|| "-".into());
                cells.push(cell);
            }
        }
        t3.row(&cells);
    }
    t3.print();
}
