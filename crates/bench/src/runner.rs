//! Timed, verified mapper execution and the experiment rosters.

use baselines::{CirqMapper, QmapMapper, SabreMapper, TketMapper};
use circuit::{verify_routing, Circuit};
use qlosure::{Mapper, MappingResult, QlosureMapper};
use std::time::{Duration, Instant};
use topology::{backends, CouplingGraph};

/// Replicate-count presets: `Small` keeps the full pipeline CI-friendly,
/// `Full` matches the paper (9 depths × 10 seeds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 3 depths × 1 seed per configuration.
    Small,
    /// 9 depths × 10 seeds per configuration (paper §VI-A4).
    Full,
}

impl Scale {
    /// Parses `--scale small|full` style arguments (defaults to `Small`).
    pub fn from_args() -> Scale {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                match args.next().as_deref() {
                    Some("full") => return Scale::Full,
                    Some("small") | None => return Scale::Small,
                    Some(other) => panic!("unknown scale `{other}`"),
                }
            }
        }
        Scale::Small
    }

    /// The QUEKO depth grid for this scale.
    pub fn depths(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![100, 500, 900],
            Scale::Full => queko::bss_depths(),
        }
    }

    /// Seeds per depth.
    pub fn seeds(&self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Full => 10,
        }
    }
}

/// Reads a `--backend <name>` CLI argument.
pub fn backend_arg(default: &str) -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            return args.next().unwrap_or_else(|| default.to_string());
        }
    }
    default.to_string()
}

/// Resolves an evaluation back-end by name.
///
/// # Panics
///
/// Panics on unknown names.
pub fn backend_by_name(name: &str) -> CouplingGraph {
    match name {
        "sherbrooke" => backends::sherbrooke(),
        "ankaa3" => backends::ankaa3(),
        "sherbrooke2x" => backends::sherbrooke_2x(),
        "king9" => backends::king_grid(9, 9),
        "king16" => backends::king_grid(16, 16),
        "aspen16" => backends::aspen16(),
        "sycamore54" => backends::sycamore54(),
        other => panic!("unknown backend `{other}`"),
    }
}

/// The mapper roster of the evaluation (paper order).
pub fn all_mappers() -> Vec<Box<dyn Mapper + Send + Sync>> {
    vec![
        Box::new(SabreMapper::default()),
        Box::new(QmapMapper::default()),
        Box::new(CirqMapper::default()),
        Box::new(TketMapper::default()),
        Box::new(QlosureMapper::default()),
    ]
}

/// Names in roster order.
pub fn mapper_names() -> Vec<&'static str> {
    vec!["sabre", "qmap", "cirq", "tket", "qlosure"]
}

/// One verified mapping run.
#[derive(Clone, Debug)]
pub struct MapOutcome {
    /// SWAPs inserted.
    pub swaps: usize,
    /// Routed depth (unit-gate model).
    pub depth: usize,
    /// Wall-clock mapping time.
    pub elapsed: Duration,
}

/// Runs `mapper` on `circuit`×`device`, verifies the result and returns
/// the metrics.
///
/// # Panics
///
/// Panics if the routed circuit fails verification — a mapper bug, never
/// an acceptable data point.
pub fn run_verified(
    mapper: &(dyn Mapper + Send + Sync),
    circuit: &Circuit,
    device: &CouplingGraph,
) -> MapOutcome {
    let start = Instant::now();
    let result: MappingResult = mapper.map(circuit, device);
    let elapsed = start.elapsed();
    verify_routing(
        circuit,
        &result.routed,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .unwrap_or_else(|e| panic!("{} produced invalid routing: {e}", mapper.name()));
    MapOutcome {
        swaps: result.swaps,
        depth: result.routed.depth(),
        elapsed,
    }
}

/// Fans `jobs` out over all cores with `std::thread::scope`, preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let n = jobs.len();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let jobs_ref = &jobs;
    let f_ref = &f;
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let r = f_ref(&jobs_ref[i]);
                **slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_line_up() {
        assert_eq!(all_mappers().len(), mapper_names().len());
        for (m, n) in all_mappers().iter().zip(mapper_names()) {
            assert_eq!(m.name(), n);
        }
    }

    #[test]
    fn run_verified_times_and_checks() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let out = run_verified(&QlosureMapper::default(), &c, &device);
        assert!(out.swaps >= 2);
        // Distance-3 pair: two swaps (parallelizable) plus the CX.
        assert!(out.depth >= 2);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..40).collect();
        let out = parallel_map(jobs, |&x| x * 2);
        assert_eq!(out, (0..40).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn backends_resolve() {
        for name in [
            "sherbrooke",
            "ankaa3",
            "sherbrooke2x",
            "king9",
            "king16",
            "aspen16",
            "sycamore54",
        ] {
            let b = backend_by_name(name);
            assert!(b.n_qubits() >= 16);
        }
    }
}
