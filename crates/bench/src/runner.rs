//! Timed, verified mapper execution and the experiment rosters.
//!
//! Since PR 2 every reproduction binary funnels its jobs through the
//! [`engine::BatchEngine`] work-stealing pool via [`engine_batch`]: jobs
//! get deterministic IDs, results come back in roster order regardless of
//! the `ENGINE_THREADS` worker count, and each run writes (overwriting any
//! previous run's) `BENCH_<name>.json` report with per-job wall time and
//! the observed speedup, so the JSON artifacts track the parallel
//! trajectory.

use baselines::{CirqMapper, QmapMapper, SabreMapper, TketMapper};
use circuit::{verify_routing, Circuit};
use engine::BatchEngine;
use qlosure::{Mapper, MappingResult, QlosureMapper};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use topology::{backends, CouplingGraph};

/// Committed wall-time budget for the 1024-qubit flat cold map (the
/// `router_core` gate, shared by `trace_overhead`'s disabled-path check).
/// The pre-rewrite router took ~172 s on the CI machine class; the
/// rewritten core runs the same instance in ~11-15 s, so this bound holds
/// a ~2× margin against machine jitter while still failing on any return
/// of the quadratic scans.
pub const FLAT_COLD_1024Q_BUDGET_SECONDS: f64 = 30.0;

/// Replicate-count presets: `Small` keeps the full pipeline CI-friendly,
/// `Full` matches the paper (9 depths × 10 seeds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 3 depths × 1 seed per configuration.
    Small,
    /// 9 depths × 10 seeds per configuration (paper §VI-A4).
    Full,
}

impl Scale {
    /// Parses `--scale small|full` style arguments (defaults to `Small`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown `--scale` value.
    pub fn from_args() -> Result<Scale, String> {
        Scale::parse_from(std::env::args().skip(1))
    }

    /// [`Scale::from_args`] with a graceful exit: prints the error to
    /// stderr and terminates with status 2 instead of panicking.
    pub fn from_args_or_exit() -> Scale {
        Scale::from_args().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// The testable core of the CLI parsing.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown `--scale` value.
    pub fn parse_from<I>(args: I) -> Result<Scale, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            if a == "--scale" {
                return match args.next().as_deref() {
                    Some("full") => Ok(Scale::Full),
                    Some("small") | None => Ok(Scale::Small),
                    Some(other) => Err(format!(
                        "unknown scale `{other}` (expected `small` or `full`)"
                    )),
                };
            }
        }
        Ok(Scale::Small)
    }

    /// The QUEKO depth grid for this scale.
    pub fn depths(&self) -> Vec<usize> {
        match self {
            Scale::Small => vec![100, 500, 900],
            Scale::Full => queko::bss_depths(),
        }
    }

    /// Seeds per depth.
    pub fn seeds(&self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Full => 10,
        }
    }
}

/// Reads a `--backend <name>` CLI argument.
pub fn backend_arg(default: &str) -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            return args.next().unwrap_or_else(|| default.to_string());
        }
    }
    default.to_string()
}

/// Resolves an evaluation back-end by name.
///
/// # Panics
///
/// Panics on unknown names.
pub fn backend_by_name(name: &str) -> CouplingGraph {
    // One shared name→device decoder across the workspace: the service
    // daemon resolves request backends through the same function.
    backends::by_name(name).unwrap_or_else(|| panic!("unknown backend `{name}`"))
}

/// Resolves a back-end by name through a process-wide memo, so every job
/// of a batch shares one allocation — one adjacency/neighbor table — per
/// device instead of rebuilding the graph per job. (The device's distance
/// matrix is shared separately via `CouplingGraph::shared_distances`.)
///
/// # Panics
///
/// Panics on unknown names (same roster as [`backend_by_name`]).
pub fn shared_backend(name: &str) -> Arc<CouplingGraph> {
    static MEMO: OnceLock<Mutex<HashMap<String, Arc<CouplingGraph>>>> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    if let Some(hit) = memo.lock().expect("backend memo poisoned").get(name) {
        return hit.clone();
    }
    // Construct outside the lock so a slow build never serializes lookups
    // of other (cached) backends; a concurrent duplicate build is cheap
    // and the entry API keeps the first insertion.
    let built = Arc::new(backend_by_name(name));
    memo.lock()
        .expect("backend memo poisoned")
        .entry(name.to_string())
        .or_insert(built)
        .clone()
}

/// The mapper roster of the evaluation (paper order).
pub fn all_mappers() -> Vec<Box<dyn Mapper + Send + Sync>> {
    vec![
        Box::new(SabreMapper::default()),
        Box::new(QmapMapper::default()),
        Box::new(CirqMapper::default()),
        Box::new(TketMapper::default()),
        Box::new(QlosureMapper::default()),
    ]
}

/// Names in roster order.
pub fn mapper_names() -> Vec<&'static str> {
    vec!["sabre", "qmap", "cirq", "tket", "qlosure"]
}

/// One verified mapping run.
#[derive(Clone, Debug)]
pub struct MapOutcome {
    /// SWAPs inserted.
    pub swaps: usize,
    /// Routed depth (unit-gate model).
    pub depth: usize,
    /// Wall-clock mapping time.
    pub elapsed: Duration,
    /// Per-pass wall-clock timings (`stage:name`, seconds) when the
    /// mapper is pipeline-based; empty for opaque mappers.
    pub passes: Vec<(String, f64)>,
}

/// Runs `mapper` on `circuit`×`device`, verifies the result and returns
/// the metrics. Pipeline-based mappers run through their pass composition
/// (identical result to `Mapper::map`) so the outcome carries per-pass
/// timings.
///
/// # Panics
///
/// Panics if the routed circuit fails verification — a mapper bug, never
/// an acceptable data point.
pub fn run_verified(
    mapper: &(dyn Mapper + Send + Sync),
    circuit: &Circuit,
    device: &CouplingGraph,
) -> MapOutcome {
    let start = Instant::now();
    let timed = qlosure::run_mapper_timed(mapper, circuit, device);
    let (result, passes): (MappingResult, Vec<(String, f64)>) = (timed.result, timed.passes);
    let elapsed = start.elapsed();
    verify_routing(
        circuit,
        &result.routed,
        &|a, b| device.is_adjacent(a, b),
        &result.initial_layout,
    )
    .unwrap_or_else(|e| panic!("{} produced invalid routing: {e}", mapper.name()));
    MapOutcome {
        swaps: result.swaps,
        depth: result.routed.depth(),
        elapsed,
        passes,
    }
}

/// Per-job metric columns recorded in the JSON report (integer-valued so
/// the report is byte-identical across runs; timings are kept separate).
pub type Metrics = Vec<(String, i64)>;

/// Per-pass timing columns of one job (`stage:name`, seconds), as
/// produced by [`MapOutcome::passes`].
pub type PassSeconds = Vec<(String, f64)>;

/// Runs `jobs` through the [`BatchEngine`] (sized by `ENGINE_THREADS`),
/// returns the results in roster order, and writes `BENCH_<name>.json`
/// with per-job wall time, per-pass times, batch wall time and the
/// observed speedup.
///
/// `label` names each job in the report; `metrics` extracts the
/// non-timing result columns; `passes` extracts the per-pass timing
/// columns (return an empty vector for jobs without pipeline timings).
/// Everything in the JSON except the `*seconds*`/`speedup` fields (and
/// `threads`) is byte-identical across thread counts — the determinism
/// contract of the engine.
pub fn engine_batch<T, R, F, L, M, P>(
    name: &str,
    jobs: Vec<T>,
    label: L,
    metrics: M,
    passes: P,
    f: F,
) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    L: Fn(&T) -> String,
    M: Fn(&R) -> Metrics,
    P: Fn(&R) -> PassSeconds,
{
    let batch = BatchEngine::from_env();
    let labels: Vec<String> = jobs.iter().map(&label).collect();
    let wall0 = Instant::now();
    let timed: Vec<(R, f64, f64)> = batch.execute(jobs, |job| {
        // The whole roster is enqueued when the batch starts, so pickup
        // time relative to `wall0` is this job's queueing delay.
        let queue_seconds = wall0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let r = f(job);
        let seconds = t0.elapsed().as_secs_f64();
        (r, seconds, queue_seconds)
    });
    let wall_seconds = wall0.elapsed().as_secs_f64();
    let rows: Vec<crate::report::JsonJobRow> = timed
        .iter()
        .zip(&labels)
        .enumerate()
        .map(
            |(id, ((r, seconds, queue), label))| crate::report::JsonJobRow {
                id,
                label: label.clone(),
                seconds: *seconds,
                metrics: metrics(r),
                pass_seconds: passes(r),
                queue_seconds: Some(*queue),
            },
        )
        .collect();
    let (cpu_seconds, speedup) = crate::report::batch_totals(wall_seconds, &rows);
    eprintln!(
        "{name}: {} jobs on {} thread(s): wall {wall_seconds:.2}s, cpu {cpu_seconds:.2}s, \
         speedup {speedup:.2}x",
        rows.len(),
        batch.threads(),
    );
    match crate::report::write_batch_json(name, batch.threads(), wall_seconds, &rows) {
        Ok(path) => eprintln!("{name}: wrote {}", path.display()),
        Err(e) => eprintln!("{name}: could not write JSON report: {e}"),
    }
    timed.into_iter().map(|(r, _, _)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_line_up() {
        assert_eq!(all_mappers().len(), mapper_names().len());
        for (m, n) in all_mappers().iter().zip(mapper_names()) {
            assert_eq!(m.name(), n);
        }
    }

    #[test]
    fn run_verified_times_and_checks() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let out = run_verified(&QlosureMapper::default(), &c, &device);
        assert!(out.swaps >= 2);
        // Distance-3 pair: two swaps (parallelizable) plus the CX.
        assert!(out.depth >= 2);
        // Qlosure is pipeline-based: per-pass timings come along.
        let labels: Vec<&str> = out.passes.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec!["analysis:weights", "layout:identity", "routing:qlosure"]
        );
    }

    #[test]
    fn scale_parses_all_three_branches() {
        let args = |list: &[&str]| list.iter().map(ToString::to_string).collect::<Vec<_>>();
        // Branch 1: explicit full.
        assert_eq!(
            Scale::parse_from(args(&["--scale", "full"])),
            Ok(Scale::Full)
        );
        // Branch 2: explicit small, trailing flag, and the no-flag default.
        assert_eq!(
            Scale::parse_from(args(&["--scale", "small"])),
            Ok(Scale::Small)
        );
        assert_eq!(Scale::parse_from(args(&["--scale"])), Ok(Scale::Small));
        assert_eq!(
            Scale::parse_from(args(&["--backend", "x"])),
            Ok(Scale::Small)
        );
        // Branch 3: unknown values are an error message, not a panic.
        let err = Scale::parse_from(args(&["--scale", "huge"])).unwrap_err();
        assert!(err.contains("unknown scale `huge`"), "got: {err}");
        assert!(err.contains("small"), "message names the valid values");
    }

    #[test]
    fn shared_backend_returns_one_allocation_per_name() {
        let a = shared_backend("aspen16");
        let b = shared_backend("aspen16");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, backend_by_name("aspen16"));
    }

    #[test]
    fn engine_batch_preserves_order_and_returns_results() {
        let jobs: Vec<u64> = (0..40).collect();
        let out = engine_batch(
            "runner_unit_test",
            jobs,
            |j| format!("job-{j}"),
            |r| vec![("value".to_string(), *r as i64)],
            |_| Vec::new(),
            |&x| x * 2,
        );
        assert_eq!(out, (0..40).map(|x| x * 2).collect::<Vec<_>>());
        // engine_batch writes its report to the (test) working directory;
        // don't leave the artifact behind.
        std::fs::remove_file("BENCH_runner_unit_test.json").ok();
    }

    #[test]
    fn batch_json_file_round_trips_through_explicit_dir() {
        // Unique per-process dir; no process-global env mutation, so this
        // cannot race with parallel tests or concurrent `cargo test` runs.
        let temp = std::env::temp_dir().join(format!("qlosure-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&temp).unwrap();
        let rows = vec![crate::report::JsonJobRow {
            id: 0,
            label: "job-7".into(),
            seconds: 0.5,
            metrics: vec![("value".to_string(), 14)],
            pass_seconds: vec![],
            queue_seconds: None,
        }];
        let path =
            crate::report::write_batch_json_in(&temp, "runner_unit_test", 2, 1.0, &rows).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"label\": \"job-7\""));
        assert!(json.contains("\"value\": 14"));
        assert!(json.contains("\"speedup\""));
        std::fs::remove_dir_all(&temp).ok();
    }

    #[test]
    fn backends_resolve() {
        for name in [
            "sherbrooke",
            "ankaa3",
            "sherbrooke2x",
            "king9",
            "king16",
            "aspen16",
            "sycamore54",
        ] {
            let b = backend_by_name(name);
            assert!(b.n_qubits() >= 16);
        }
    }
}
