//! Plain-text table rendering and JSON trajectory reports for the
//! reproduction binaries.

use std::path::PathBuf;

/// A simple left-aligned text table with a title, printed in the style of
/// the paper's tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One job row of a `BENCH_*.json` report.
#[derive(Clone, Debug)]
pub struct JsonJobRow {
    /// Deterministic job ID (roster index).
    pub id: usize,
    /// Job label.
    pub label: String,
    /// Per-job wall time (timing field).
    pub seconds: f64,
    /// Integer metric columns (swaps, depth, qops, …) — byte-identical
    /// across runs and thread counts.
    pub metrics: Vec<(String, i64)>,
    /// Per-pass wall-clock timings (`stage:name`, seconds) from the
    /// mapper's pass pipeline; empty for jobs without pipeline timings.
    /// Timing fields, like `seconds`.
    pub pass_seconds: Vec<(String, f64)>,
    /// Time the job waited between enqueue and worker pickup, when the
    /// harness measured it (a timing field, like `seconds`).
    pub queue_seconds: Option<f64>,
}

/// The (cpu_seconds, speedup) totals of a row set — the one place this
/// arithmetic lives, shared by the JSON report and the progress log line.
pub fn batch_totals(wall_seconds: f64, rows: &[JsonJobRow]) -> (f64, f64) {
    let cpu_seconds: f64 = rows.iter().map(|r| r.seconds).sum();
    let speedup = if wall_seconds > 0.0 {
        cpu_seconds / wall_seconds
    } else {
        1.0
    };
    (cpu_seconds, speedup)
}

/// Minimal JSON string encoder (labels are ASCII identifiers in practice).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a batch as deterministic JSON: fixed key order, jobs in roster
/// order. `wall_seconds`, `cpu_seconds`, `speedup` and the per-job
/// `seconds`/`queue_seconds` are the only fields that vary between runs.
pub fn batch_json(name: &str, threads: usize, wall_seconds: f64, rows: &[JsonJobRow]) -> String {
    batch_json_with(name, threads, wall_seconds, rows, &[])
}

/// [`batch_json`] with extra top-level integer fields (inserted after
/// `speedup`) — the service bench reports shared-cache hit/miss counters
/// this way.
pub fn batch_json_with(
    name: &str,
    threads: usize,
    wall_seconds: f64,
    rows: &[JsonJobRow],
    extras: &[(String, i64)],
) -> String {
    let (cpu_seconds, speedup) = batch_totals(wall_seconds, rows);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"name\": {},\n", json_string(name)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"wall_seconds\": {wall_seconds:.6},\n"));
    out.push_str(&format!("  \"cpu_seconds\": {cpu_seconds:.6},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    for (key, value) in extras {
        out.push_str(&format!("  {}: {value},\n", json_string(key)));
    }
    out.push_str("  \"jobs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        // The timing keys are deliberately the row's suffix, starting at
        // `"seconds"` (then `pass_seconds`): stripping a row from
        // `, "seconds":` onward leaves the deterministic prefix intact.
        out.push_str(&format!(
            "    {{\"id\": {}, \"label\": {}",
            row.id,
            json_string(&row.label),
        ));
        for (key, value) in &row.metrics {
            out.push_str(&format!(", {}: {value}", json_string(key)));
        }
        out.push_str(&format!(", \"seconds\": {:.6}", row.seconds));
        if let Some(queue) = row.queue_seconds {
            out.push_str(&format!(", \"queue_seconds\": {queue:.6}"));
        }
        if !row.pass_seconds.is_empty() {
            out.push_str(", \"pass_seconds\": {");
            for (j, (pass, s)) in row.pass_seconds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {s:.6}", json_string(pass)));
            }
            out.push('}');
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`batch_json`] to `BENCH_<name>.json` in `$BENCH_JSON_DIR`
/// (default: the current directory), overwriting any previous run's
/// report, and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_batch_json(
    name: &str,
    threads: usize,
    wall_seconds: f64,
    rows: &[JsonJobRow],
) -> std::io::Result<PathBuf> {
    write_batch_json_with(name, threads, wall_seconds, rows, &[])
}

/// [`write_batch_json`] with extra top-level integer fields (see
/// [`batch_json_with`]).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_batch_json_with(
    name: &str,
    threads: usize,
    wall_seconds: f64,
    rows: &[JsonJobRow],
    extras: &[(String, i64)],
) -> std::io::Result<PathBuf> {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    write_batch_json_in_with(dir.as_ref(), name, threads, wall_seconds, rows, extras)
}

/// [`write_batch_json`] with an explicit target directory (tests use this
/// to avoid mutating process-global environment state).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_batch_json_in(
    dir: &std::path::Path,
    name: &str,
    threads: usize,
    wall_seconds: f64,
    rows: &[JsonJobRow],
) -> std::io::Result<PathBuf> {
    write_batch_json_in_with(dir, name, threads, wall_seconds, rows, &[])
}

/// The most general report writer: explicit directory plus extra
/// top-level fields.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_batch_json_in_with(
    dir: &std::path::Path,
    name: &str,
    threads: usize,
    wall_seconds: f64,
    rows: &[JsonJobRow],
    extras: &[(String, i64)],
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(
        &path,
        batch_json_with(name, threads, wall_seconds, rows, extras),
    )?;
    Ok(path)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric-mean helper used for the summary rows.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn batch_json_is_deterministic_modulo_timing() {
        let rows = vec![
            JsonJobRow {
                id: 0,
                label: "a".into(),
                seconds: 0.25,
                metrics: vec![("swaps".into(), 7), ("depth".into(), 42)],
                pass_seconds: vec![],
                queue_seconds: None,
            },
            JsonJobRow {
                id: 1,
                label: "b \"quoted\"".into(),
                seconds: 0.75,
                metrics: vec![],
                pass_seconds: vec![],
                queue_seconds: None,
            },
        ];
        let json = batch_json("demo", 4, 0.5, &rows);
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup\": 2.000")); // 1.0 cpu / 0.5 wall
        assert!(json.contains("\"swaps\": 7"));
        assert!(json.contains("\\\"quoted\\\""));
        // Non-timing content is identical when only timings change.
        let strip = |j: &str| {
            j.lines()
                .filter(|l| {
                    !l.contains("\"wall_seconds\"")
                        && !l.contains("\"cpu_seconds\"")
                        && !l.contains("\"speedup\"")
                })
                .map(|l| match l.find(", \"seconds\":") {
                    Some(at) => l[..at].to_string(),
                    None => l.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let mut slow = rows.clone();
        slow[0].seconds = 9.0;
        assert_eq!(strip(&json), strip(&batch_json("demo", 4, 3.3, &slow)));
    }

    #[test]
    fn pass_timing_columns_render_as_a_nested_object() {
        let rows = vec![JsonJobRow {
            id: 0,
            label: "queko-qlosure".into(),
            seconds: 0.5,
            metrics: vec![("swaps".into(), 3)],
            pass_seconds: vec![
                ("analysis:weights".into(), 0.125),
                ("routing:qlosure".into(), 0.25),
            ],
            queue_seconds: None,
        }];
        let json = batch_json("demo", 1, 0.5, &rows);
        assert!(
            json.contains(
                "\"pass_seconds\": {\"analysis:weights\": 0.125000, \"routing:qlosure\": 0.250000}"
            ),
            "got: {json}"
        );
        // The timing suffix starts at `seconds`: stripping a row from
        // `, "seconds":` onward removes the pass timings too.
        assert!(
            json.contains(", \"seconds\": 0.500000, \"pass_seconds\""),
            "got: {json}"
        );
        let row_line = json.lines().find(|l| l.contains("\"id\": 0")).unwrap();
        let stripped = &row_line[..row_line.find(", \"seconds\":").unwrap()];
        assert!(
            !stripped.contains("seconds"),
            "deterministic prefix must carry no timing: {stripped}"
        );
        // Rows without pass timings keep the old shape.
        let bare = vec![JsonJobRow {
            id: 0,
            label: "x".into(),
            seconds: 0.1,
            metrics: vec![],
            pass_seconds: vec![],
            queue_seconds: None,
        }];
        assert!(!batch_json("demo", 1, 0.1, &bare).contains("pass_seconds"));
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn queue_seconds_renders_in_the_timing_suffix() {
        let rows = vec![JsonJobRow {
            id: 0,
            label: "queued".into(),
            seconds: 0.5,
            metrics: vec![("swaps".into(), 3)],
            pass_seconds: vec![("routing:qlosure".into(), 0.25)],
            queue_seconds: Some(0.125),
        }];
        let json = batch_json("demo", 1, 0.5, &rows);
        // Order: metrics, then seconds, queue_seconds, pass_seconds — the
        // whole timing suffix still starts at `, "seconds":`.
        assert!(
            json.contains(", \"seconds\": 0.500000, \"queue_seconds\": 0.125000, \"pass_seconds\""),
            "got: {json}"
        );
        // Rows without a measured queue keep the old shape.
        let bare = vec![JsonJobRow {
            queue_seconds: None,
            ..rows[0].clone()
        }];
        assert!(!batch_json("demo", 1, 0.5, &bare).contains("queue_seconds"));
    }

    #[test]
    fn extras_render_as_top_level_fields_after_speedup() {
        let extras = vec![
            ("distance_hits".to_string(), 41i64),
            ("distance_misses".to_string(), 2),
        ];
        let rows = vec![JsonJobRow {
            id: 0,
            label: "warm".into(),
            seconds: 1.0,
            metrics: vec![],
            pass_seconds: vec![],
            queue_seconds: None,
        }];
        let json = batch_json_with("service", 4, 1.0, &rows, &extras);
        assert!(
            json.contains(
                "\"speedup\": 1.000,\n  \"distance_hits\": 41,\n  \"distance_misses\": 2,\n  \"jobs\""
            ),
            "got: {json}"
        );
        // No extras: byte-identical to the plain renderer.
        assert_eq!(
            batch_json_with("x", 1, 0.0, &[], &[]),
            batch_json("x", 1, 0.0, &[])
        );
    }
}
