//! Plain-text table rendering for the reproduction binaries.

/// A simple left-aligned text table with a title, printed in the style of
/// the paper's tables.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric-mean helper used for the summary rows.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
