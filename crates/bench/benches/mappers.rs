//! End-to-end mapper throughput benchmarks: Qlosure vs. the baselines on
//! a fixed QUEKO instance (the workload behind the paper's Table IV).

use baselines::{CirqMapper, SabreMapper, TketMapper};
use criterion::{criterion_group, criterion_main, Criterion};
use qlosure::{Mapper, QlosureMapper};
use queko::QuekoSpec;
use std::hint::black_box;
use topology::backends;

fn bench_mappers(c: &mut Criterion) {
    let gen_device = backends::sycamore54();
    let device = backends::sherbrooke();
    let bench = QuekoSpec::new(&gen_device, 100).seed(0).generate();
    let mut group = c.benchmark_group("queko54_depth100_on_sherbrooke");
    group.sample_size(10);
    group.bench_function("qlosure", |b| {
        let m = QlosureMapper::default();
        b.iter(|| black_box(m.map(&bench.circuit, &device)))
    });
    group.bench_function("sabre", |b| {
        let m = SabreMapper::default();
        b.iter(|| black_box(m.map(&bench.circuit, &device)))
    });
    group.bench_function("cirq", |b| {
        let m = CirqMapper::default();
        b.iter(|| black_box(m.map(&bench.circuit, &device)))
    });
    group.bench_function("tket", |b| {
        let m = TketMapper::default();
        b.iter(|| black_box(m.map(&bench.circuit, &device)))
    });
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
