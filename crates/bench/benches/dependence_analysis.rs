//! Benchmarks of the QRANE-style lifting and ω-weight computation: the
//! polyhedral path vs. the concrete graph fallback (§IV).

use affine::{lift_interactions, DependenceAnalysis, WeightMode};
use circuit::Circuit;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn chain_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n + 1);
    for i in 0..n as u32 {
        c.cx(i, i + 1);
    }
    c
}

fn random_circuit(n_qubits: usize, n_gates: usize) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    let mut s = 42u64;
    for _ in 0..n_gates {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) % n_qubits as u64) as u32;
        let b = ((s >> 13) % n_qubits as u64) as u32;
        if a != b {
            c.cx(a, b);
        }
    }
    c
}

fn bench_lifting(c: &mut Criterion) {
    let chain = chain_circuit(2000);
    c.bench_function("lift_chain_2000", |b| {
        b.iter(|| black_box(lift_interactions(&chain)))
    });
    let qft = qasmbench::qft(32);
    c.bench_function("lift_qft_32", |b| {
        b.iter(|| black_box(lift_interactions(&qft)))
    });
    let rand = random_circuit(54, 4000);
    c.bench_function("lift_random_4000", |b| {
        b.iter(|| black_box(lift_interactions(&rand)))
    });
}

fn bench_weights(c: &mut Criterion) {
    let chain = chain_circuit(500);
    c.bench_function("weights_affine_chain_500", |b| {
        b.iter(|| black_box(DependenceAnalysis::new(&chain, WeightMode::Affine)))
    });
    c.bench_function("weights_graph_chain_500", |b| {
        b.iter(|| black_box(DependenceAnalysis::new(&chain, WeightMode::Graph)))
    });
    let rand = random_circuit(54, 8000);
    c.bench_function("weights_graph_random_8000", |b| {
        b.iter(|| black_box(DependenceAnalysis::new(&rand, WeightMode::Graph)))
    });
}

criterion_group!(benches, bench_lifting, bench_weights);
criterion_main!(benches);
