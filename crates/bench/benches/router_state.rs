//! Micro-benchmark: incremental `RoutingState` front-layer maintenance vs
//! a recompute-per-step baseline.
//!
//! Both drivers replay the *same* SWAP schedule (extracted from a real
//! Qlosure mapping of a queko-bss-54qbt instance onto Sherbrooke — the
//! Fig. 5 workload) and perform the same logical work per step: execute
//! every ready gate, enumerate the candidate-SWAP frontier, apply the next
//! scheduled SWAP. They differ only in *how state is maintained*:
//!
//! * **incremental** — `qlosure::RoutingState`: the front layer, candidate
//!   operand cache and clocks update in place per executed gate / SWAP;
//! * **recompute** — the pre-refactor strategy: every step rescans all
//!   gates for the front layer and rebuilds the candidate list from
//!   scratch with fresh allocations.
//!
//! Besides the criterion report, the run writes `BENCH_router_state.json`
//! (per-variant median seconds, step counts, and the observed
//! incremental/recompute ratio) so CI archives the trajectory.

use bench_support::report::{write_batch_json, JsonJobRow};
use circuit::{Circuit, DependenceGraph, Gate, GateKind};
use criterion::{black_box, criterion_group, Criterion};
use qlosure::{Layout, Mapper, QlosureMapper, RoutingState};
use std::time::Instant;
use topology::{backends, CouplingGraph};

/// One replayable workload: the circuit and the SWAP schedule a real
/// Qlosure run produced for it.
struct Workload {
    depth: usize,
    circuit: Circuit,
    swaps: Vec<(u32, u32)>,
}

fn workload(device: &CouplingGraph, depth: usize) -> Workload {
    let gen_device = backends::sycamore54();
    let bench = queko::QuekoSpec::new(&gen_device, depth).seed(0).generate();
    let result = QlosureMapper::default().map(&bench.circuit, device);
    let swaps: Vec<(u32, u32)> = result
        .routed
        .gates()
        .iter()
        .filter(|g| g.kind == GateKind::Swap)
        .map(|g| (g.qubits[0], g.qubits[1]))
        .collect();
    Workload {
        depth,
        circuit: bench.circuit,
        swaps,
    }
}

/// Incremental driver: the shared `RoutingState`.
fn drive_incremental(w: &Workload, device: &CouplingGraph) -> usize {
    let dist = device.shared_distances();
    let layout = Layout::identity(w.circuit.n_qubits(), device.n_qubits());
    let mut st = RoutingState::new(&w.circuit, device, &dist, layout);
    let mut candidate_edges = 0usize;
    for &(p1, p2) in &w.swaps {
        st.execute_ready();
        candidate_edges += st.swap_candidates_logical().len();
        st.apply_swap(p1, p2);
    }
    st.execute_ready();
    assert!(st.is_done(), "replay must route the whole circuit");
    candidate_edges
}

/// Recompute-per-step driver: front layer and candidates rebuilt from
/// scratch every step (the pre-refactor maintenance strategy).
struct RecomputeState<'a> {
    circuit: &'a Circuit,
    device: &'a CouplingGraph,
    dag: DependenceGraph,
    indeg: Vec<u32>,
    executed: Vec<bool>,
    remaining: usize,
    layout: Layout,
    routed: Circuit,
}

impl<'a> RecomputeState<'a> {
    fn new(circuit: &'a Circuit, device: &'a CouplingGraph) -> Self {
        let dag = DependenceGraph::new(circuit);
        let indeg = dag.in_degrees();
        RecomputeState {
            circuit,
            device,
            dag,
            indeg,
            executed: vec![false; circuit.gates().len()],
            remaining: circuit.gates().len(),
            layout: Layout::identity(circuit.n_qubits(), device.n_qubits()),
            routed: Circuit::new(device.n_qubits()),
        }
    }

    /// Full-scan front extraction: every unexecuted gate with indegree 0.
    fn front(&self) -> Vec<u32> {
        (0..self.circuit.gates().len() as u32)
            .filter(|&g| !self.executed[g as usize] && self.indeg[g as usize] == 0)
            .collect()
    }

    fn executable(&self, g: u32) -> bool {
        match self.circuit.gates()[g as usize].qubit_pair() {
            Some((a, b)) => self
                .device
                .is_adjacent(self.layout.phys(a), self.layout.phys(b)),
            None => true,
        }
    }

    fn execute_ready(&mut self) {
        loop {
            let ready: Vec<u32> = self
                .front()
                .into_iter()
                .filter(|&g| self.executable(g))
                .collect();
            if ready.is_empty() {
                return;
            }
            for &g in &ready {
                let gate = &self.circuit.gates()[g as usize];
                self.routed.push(Gate {
                    kind: gate.kind.clone(),
                    qubits: gate.qubits.iter().map(|&q| self.layout.phys(q)).collect(),
                    params: gate.params.clone(),
                });
                self.executed[g as usize] = true;
                self.remaining -= 1;
                for &s in self.dag.succs(g) {
                    self.indeg[s as usize] -= 1;
                }
            }
        }
    }

    /// From-scratch candidate enumeration (sorted logical operands of the
    /// blocked front, mapped through the layout, deduplicated).
    fn swap_candidates(&self) -> Vec<(u32, u32)> {
        let mut logicals: Vec<u32> = self
            .front()
            .into_iter()
            .filter_map(|g| self.circuit.gates()[g as usize].qubit_pair())
            .flat_map(|(a, b)| [a, b])
            .collect();
        logicals.sort_unstable();
        logicals.dedup();
        let mut out: Vec<(u32, u32)> = Vec::new();
        for &l in &logicals {
            let p1 = self.layout.phys(l);
            for &p2 in self.device.neighbors(p1) {
                let pair = (p1.min(p2), p1.max(p2));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out
    }
}

fn drive_recompute(w: &Workload, device: &CouplingGraph) -> usize {
    let mut st = RecomputeState::new(&w.circuit, device);
    let mut candidate_edges = 0usize;
    for &(p1, p2) in &w.swaps {
        st.execute_ready();
        candidate_edges += st.swap_candidates().len();
        st.routed.swap(p1, p2);
        st.layout.apply_swap(p1, p2);
    }
    st.execute_ready();
    assert_eq!(st.remaining, 0, "replay must route the whole circuit");
    candidate_edges
}

/// Median wall-clock of `reps` runs of `f`.
fn median_seconds(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut out = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out)
}

fn bench_router_state(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let device = backends::sherbrooke();
    // The Fig. 5 QUEKO sizes (small tier); test mode keeps CI instant.
    let depths: &[usize] = if test_mode { &[60] } else { &[100, 500, 900] };
    let reps = if test_mode { 1 } else { 7 };
    let mut rows: Vec<JsonJobRow> = Vec::new();
    let mut group = c.benchmark_group("router_state_front_maintenance");
    for &depth in depths {
        let w = workload(&device, depth);
        group.bench_function(&format!("incremental/d{depth}"), |b| {
            b.iter(|| drive_incremental(&w, &device))
        });
        group.bench_function(&format!("recompute/d{depth}"), |b| {
            b.iter(|| drive_recompute(&w, &device))
        });
        // Manual medians feed the JSON trajectory report and the ratio.
        let (inc, edges_inc) = median_seconds(reps, || drive_incremental(&w, &device));
        let (rec, edges_rec) = median_seconds(reps, || drive_recompute(&w, &device));
        assert_eq!(
            edges_inc, edges_rec,
            "both drivers must enumerate identical candidate frontiers"
        );
        let ratio = if rec > 0.0 { inc / rec } else { 1.0 };
        eprintln!(
            "d{depth}: incremental {:.1}ms vs recompute {:.1}ms (ratio {ratio:.3}, {} swaps)",
            inc * 1e3,
            rec * 1e3,
            w.swaps.len()
        );
        for (variant, seconds) in [("incremental", inc), ("recompute", rec)] {
            rows.push(JsonJobRow {
                id: rows.len(),
                label: format!("queko54-d{}-{variant}", w.depth),
                seconds,
                metrics: vec![
                    ("swaps".to_string(), w.swaps.len() as i64),
                    ("candidate_edges".to_string(), edges_inc as i64),
                    (
                        "ratio_millis".to_string(),
                        ((ratio * 1000.0).round()) as i64,
                    ),
                ],
                pass_seconds: vec![],
                queue_seconds: None,
            });
        }
    }
    group.finish();
    let wall: f64 = rows.iter().map(|r| r.seconds).sum();
    match write_batch_json("router_state", 1, wall, &rows) {
        Ok(path) => eprintln!("router_state: wrote {}", path.display()),
        Err(e) => eprintln!("router_state: could not write JSON report: {e}"),
    }
}

criterion_group!(benches, bench_router_state);

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("benches: bench");
        return;
    }
    benches();
}
