//! Microbenchmarks of the Presburger kernel: the operations the paper
//! outsources to ISL/Barvinok (set algebra, transitive closure, counting).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use presburger::{BasicMap, BasicSet, Constraint, LinearExpr, Map, Set};
use std::hint::black_box;

fn bounded_shift(k: i64, lo: i64, hi: i64) -> Map {
    Map::from(BasicMap::translation(&[k]).restrict_domain(&BasicSet::bounding_box(&[lo], &[hi])))
}

fn bench_set_algebra(c: &mut Criterion) {
    let a = Set::from(BasicSet::bounding_box(&[0, 0], &[50, 50]));
    let b = Set::from(BasicSet::bounding_box(&[25, 25], &[75, 75]));
    c.bench_function("set_subtract_boxes", |bencher| {
        bencher.iter(|| black_box(a.subtract(&b)))
    });
    c.bench_function("set_subset_check", |bencher| {
        bencher.iter(|| black_box(b.is_subset(&a)))
    });
    let strided = BasicSet::new(
        1,
        vec![
            Constraint::ge(LinearExpr::var(1, 0)),
            Constraint::ge(LinearExpr::var(1, 0).neg().plus_const(9999)),
            Constraint::modulo(LinearExpr::var(1, 0).plus_const(-3), 7),
        ],
    );
    c.bench_function("count_strided_interval", |bencher| {
        bencher.iter(|| black_box(Set::from(strided.clone()).count_points()))
    });
}

fn bench_emptiness(c: &mut Criterion) {
    // Integer-infeasible system that needs the Omega machinery.
    let tricky = BasicSet::new(
        2,
        vec![
            Constraint::eq(LinearExpr::new(vec![2, -2], -1)), // 2x = 2y + 1
            Constraint::ge(LinearExpr::var(2, 0)),
            Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(1000)),
        ],
    );
    c.bench_function("omega_emptiness_gap", |bencher| {
        bencher.iter_batched(
            || tricky.clone(),
            |bs| black_box(bs.is_empty()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_closure(c: &mut Criterion) {
    let unit = bounded_shift(1, 0, 499);
    c.bench_function("closure_unit_shift_500", |bencher| {
        bencher.iter(|| black_box(unit.transitive_closure()))
    });
    let mixed = bounded_shift(1, 0, 199).union(&bounded_shift(3, 0, 197));
    c.bench_function("closure_mixed_steps_200", |bencher| {
        bencher.iter(|| black_box(mixed.transitive_closure()))
    });
}

fn bench_compose_apply(c: &mut Criterion) {
    let f = bounded_shift(2, 0, 998);
    let g = bounded_shift(3, 0, 998);
    c.bench_function("map_compose", |bencher| {
        bencher.iter(|| black_box(f.compose(&g).unwrap()))
    });
    let closure = bounded_shift(1, 0, 199).transitive_closure();
    let singleton = Set::from(BasicSet::point(&[7]));
    c.bench_function("closure_apply_and_count", |bencher| {
        bencher.iter(|| {
            let img = closure.map.apply(&singleton).unwrap();
            black_box(img.count_points())
        })
    });
}

criterion_group!(
    benches,
    bench_set_algebra,
    bench_emptiness,
    bench_closure,
    bench_compose_apply
);
criterion_main!(benches);
