//! # qlosure-obs — the structured event journal
//!
//! A process-wide, bounded, in-memory journal of operational events:
//! plan-store warnings, admission rejections, connection-cap refusals,
//! idle disconnects, shard health transitions, span-sink drops. Spans
//! (the `trace` crate) answer "what happened inside this one job"; the
//! journal answers "what has this process been doing lately, and is
//! anything wrong".
//!
//! The discipline mirrors the tracing rule exactly:
//!
//! * **Inert by default.** The journal starts disabled; a disabled
//!   [`event`] call is one relaxed atomic load and a branch — no clock
//!   read, no lock, no allocation. Daemons opt in with [`enable`];
//!   library consumers never pay.
//! * **Bounded.** The ring holds at most its configured capacity; when
//!   full, the oldest event is evicted and counted in
//!   [`dropped_total`] — memory is fixed no matter how noisy the
//!   process gets.
//! * **Interned.** Subsystem and message strings are interned behind
//!   `Arc<str>`, so a hot site emitting the same message thousands of
//!   times stores one string, not thousands.
//!
//! Events carry a monotone sequence number (starting at 1) so pollers
//! can resume with [`events_since`] without re-reading, and a timestamp
//! on the journal's own monotonic clock ([`now_ns`]).
//!
//! ```
//! obs::enable();
//! obs::event(obs::Level::Warn, "doc", "cache pressure", &[("evicted", "3")]);
//! let (dropped, events) = obs::events_since(0, obs::Level::Debug);
//! assert_eq!(dropped, obs::dropped_total());
//! assert!(events.iter().any(|e| &*e.subsystem == "doc"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default journal capacity (events) when [`enable`] is called without
/// an explicit bound.
pub const JOURNAL_CAPACITY: usize = 1024;

/// Event severity, ordered `Debug < Info < Warn < Error` so a minimum
/// level is a plain comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Chatty diagnostics (off the default CLI view).
    Debug,
    /// Normal operational milestones.
    Info,
    /// Something degraded but the process keeps serving.
    Warn,
    /// Something failed outright.
    Error,
}

impl Level {
    /// The canonical lowercase spelling (the wire encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the canonical spelling back; `None` for anything else.
    pub fn parse(text: &str) -> Option<Level> {
        match text {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone per-process sequence number, starting at 1.
    pub seq: u64,
    /// Timestamp on the journal clock ([`now_ns`]).
    pub at_ns: u64,
    /// Severity.
    pub level: Level,
    /// Which subsystem emitted it (interned).
    pub subsystem: Arc<str>,
    /// The event message (interned).
    pub message: Arc<str>,
    /// Free-form key/value payload (not interned — values vary).
    pub fields: Vec<(String, String)>,
}

/// The bounded ring behind the mutex. Sequence numbers start at 1 so
/// `after_seq == 0` means "from the beginning" and so a sharded router
/// can remap `seq * n + shard` invertibly (see the service router).
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    interned: HashMap<String, Arc<str>>,
}

impl Ring {
    fn intern(&mut self, text: &str) -> Arc<str> {
        if let Some(existing) = self.interned.get(text) {
            return Arc::clone(existing);
        }
        let arc: Arc<str> = Arc::from(text);
        self.interned.insert(text.to_string(), Arc::clone(&arc));
        arc
    }
}

/// The disabled-path gate: one relaxed load and a branch, nothing else.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: JOURNAL_CAPACITY,
            next_seq: 1,
            dropped: 0,
            interned: HashMap::new(),
        })
    })
}

/// Nanoseconds since the first call in this process — the journal's own
/// monotonic clock (the crate is dependency-free, so it cannot share the
/// trace crate's epoch; consumers align the two by *age*, never by
/// absolute value).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Turns the journal on with the default capacity. Idempotent.
pub fn enable() {
    enable_with_capacity(JOURNAL_CAPACITY);
}

/// Turns the journal on with an explicit ring bound (clamped to ≥ 1).
/// Shrinking below the current backlog evicts oldest-first (counted as
/// drops, like any other eviction).
pub fn enable_with_capacity(capacity: usize) {
    let mut ring = ring().lock().expect("journal mutex");
    ring.capacity = capacity.max(1);
    while ring.events.len() > ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    drop(ring);
    ENABLED.store(true, Ordering::Release);
}

/// Whether [`event`] currently records anything.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event. When the journal is disabled this is one atomic
/// load and a branch; when enabled, the oldest event is evicted (and
/// counted dropped) once the ring is full.
pub fn event(level: Level, subsystem: &str, message: &str, fields: &[(&str, &str)]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let at_ns = now_ns();
    let mut ring = ring().lock().expect("journal mutex");
    let seq = ring.next_seq;
    ring.next_seq += 1;
    let subsystem = ring.intern(subsystem);
    let message = ring.intern(message);
    if ring.events.len() >= ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(Event {
        seq,
        at_ns,
        level,
        subsystem,
        message,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Events strictly after `after_seq`, at or above `min_level`, oldest
/// first, plus the total evicted-event count. `after_seq == 0` returns
/// the whole retained window — pollers feed the last seen seq back in
/// to tail the journal without duplicates.
pub fn events_since(after_seq: u64, min_level: Level) -> (u64, Vec<Event>) {
    let ring = ring().lock().expect("journal mutex");
    let events = ring
        .events
        .iter()
        .filter(|e| e.seq > after_seq && e.level >= min_level)
        .cloned()
        .collect();
    (ring.dropped, events)
}

/// The newest `n` events (any level), oldest first — the watchdog's
/// flight-record tail.
pub fn recent(n: usize) -> Vec<Event> {
    let ring = ring().lock().expect("journal mutex");
    let skip = ring.events.len().saturating_sub(n);
    ring.events.iter().skip(skip).cloned().collect()
}

/// Total events evicted from the ring since process start.
pub fn dropped_total() -> u64 {
    ring().lock().expect("journal mutex").dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The journal is process-global; tests serialize on this and reset
    /// the ring so they see only their own events.
    fn with_fresh_journal(test: impl FnOnce()) {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        {
            let mut ring = ring().lock().expect("journal mutex");
            ring.events.clear();
            ring.capacity = JOURNAL_CAPACITY;
            ring.dropped = 0;
        }
        ENABLED.store(true, Ordering::Release);
        test();
        ENABLED.store(false, Ordering::Release);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        with_fresh_journal(|| {
            ENABLED.store(false, Ordering::Release);
            let before = events_since(0, Level::Debug).1.len();
            event(Level::Error, "test", "should vanish", &[]);
            assert_eq!(events_since(0, Level::Debug).1.len(), before);
        });
    }

    #[test]
    fn events_round_trip_with_monotone_seq_and_fields() {
        with_fresh_journal(|| {
            event(Level::Info, "alpha", "first", &[("k", "v")]);
            event(Level::Warn, "beta", "second", &[]);
            let (_, events) = events_since(0, Level::Debug);
            let ours: Vec<_> = events
                .iter()
                .filter(|e| &*e.subsystem == "alpha" || &*e.subsystem == "beta")
                .collect();
            assert_eq!(ours.len(), 2);
            assert!(ours[0].seq >= 1, "seq starts at 1");
            assert!(ours[0].seq < ours[1].seq, "seq is monotone");
            assert!(ours[0].at_ns <= ours[1].at_ns);
            assert_eq!(ours[0].fields, vec![("k".to_string(), "v".to_string())]);
            // Tailing from the first seq returns only the second.
            let (_, tail) = events_since(ours[0].seq, Level::Debug);
            assert!(tail.iter().all(|e| e.seq > ours[0].seq));
        });
    }

    #[test]
    fn min_level_filters_and_orders() {
        with_fresh_journal(|| {
            event(Level::Debug, "lvl", "d", &[]);
            event(Level::Info, "lvl", "i", &[]);
            event(Level::Warn, "lvl", "w", &[]);
            event(Level::Error, "lvl", "e", &[]);
            let (_, warnings) = events_since(0, Level::Warn);
            let msgs: Vec<&str> = warnings
                .iter()
                .filter(|e| &*e.subsystem == "lvl")
                .map(|e| &*e.message)
                .collect();
            assert_eq!(msgs, ["w", "e"]);
            assert!(Level::Debug < Level::Info && Level::Warn < Level::Error);
        });
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        with_fresh_journal(|| {
            enable_with_capacity(4);
            let dropped_before = dropped_total();
            for i in 0..10 {
                event(Level::Info, "ring", &format!("evt {i}"), &[]);
            }
            let (dropped, events) = events_since(0, Level::Debug);
            assert_eq!(events.len(), 4, "ring is bounded");
            assert_eq!(dropped - dropped_before, 6, "evictions are counted");
            // The *newest* events survive.
            assert_eq!(&*events.last().unwrap().message, "evt 9");
            assert_eq!(recent(2).len(), 2);
            assert_eq!(&*recent(2)[0].message, "evt 8");
        });
    }

    #[test]
    fn repeated_labels_are_interned() {
        with_fresh_journal(|| {
            event(Level::Info, "intern", "same message", &[]);
            event(Level::Info, "intern", "same message", &[]);
            let (_, events) = events_since(0, Level::Debug);
            let ours: Vec<_> = events
                .iter()
                .filter(|e| &*e.subsystem == "intern")
                .collect();
            assert_eq!(ours.len(), 2);
            assert!(Arc::ptr_eq(&ours[0].message, &ours[1].message));
            assert!(Arc::ptr_eq(&ours[0].subsystem, &ours[1].subsystem));
        });
    }

    #[test]
    fn level_spelling_round_trips() {
        for level in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
            assert_eq!(format!("{level}"), level.as_str());
        }
        assert_eq!(Level::parse("fatal"), None);
    }
}
