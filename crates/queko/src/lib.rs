//! QUEKO benchmark synthesis: circuits with known optimal depth.
//!
//! Reimplements the QUEKO methodology of Tan & Cong (*Optimality study of
//! existing quantum computing layout synthesis tools*, IEEE TC 2020), which
//! the Qlosure paper uses both as published (16/54-qubit suites) and to
//! synthesize new suites for 81-qubit and 256-qubit devices (§VI-A4):
//!
//! 1. build `T` cycles of gates *directly on the device graph* — every
//!    two-qubit gate sits on a coupling edge, every qubit is used at most
//!    once per cycle, so the circuit is executable with **zero SWAPs**;
//! 2. thread a *scaffold chain* through all `T` cycles (each scaffold gate
//!    shares a qubit with the previous cycle's), pinning the depth to
//!    exactly `T`;
//! 3. fill cycles with random gates to the requested one-/two-qubit gate
//!    densities;
//! 4. hide the solution behind a random relabeling of qubits — the mapper
//!    under evaluation sees the permuted circuit, and the generator keeps
//!    the layout that achieves depth `T` with zero SWAPs.
//!
//! The depth-factor metric of the paper's Table II is
//! `mapped depth / optimal depth`, with the optimal depth `T` known by
//! construction.
//!
//! # Example
//!
//! ```
//! use queko::QuekoSpec;
//! use topology::backends;
//!
//! let device = backends::aspen16();
//! let bench = QuekoSpec::new(&device, 100).seed(7).generate();
//! assert_eq!(bench.optimal_depth, 100);
//! assert_eq!(bench.circuit.depth(), 100); // pre-mapping depth == T
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circuit::{Circuit, Gate, GateKind};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};
use topology::CouplingGraph;

/// Parameters of one QUEKO instance.
#[derive(Clone, Debug)]
pub struct QuekoSpec<'a> {
    device: &'a CouplingGraph,
    depth: usize,
    density_2q: f64,
    density_1q: f64,
    seed: u64,
}

impl<'a> QuekoSpec<'a> {
    /// A spec for `device` with target optimal depth `depth` and the
    /// default gate densities (matching the BSS suites: ~40 % of qubits in
    /// two-qubit gates and ~10 % in single-qubit gates per cycle).
    pub fn new(device: &'a CouplingGraph, depth: usize) -> Self {
        assert!(depth >= 1, "depth must be positive");
        QuekoSpec {
            device,
            depth,
            density_2q: 0.4,
            density_1q: 0.1,
            seed: 0,
        }
    }

    /// Sets the two-qubit gate density γ₂ (fraction of qubits engaged in
    /// two-qubit gates per cycle).
    pub fn density_2q(mut self, d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d));
        self.density_2q = d;
        self
    }

    /// Sets the single-qubit gate density γ₁.
    pub fn density_1q(mut self, d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d));
        self.density_1q = d;
        self
    }

    /// Sets the RNG seed (each seed is one instance of the suite).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Synthesizes the benchmark.
    pub fn generate(&self) -> QuekoBenchmark {
        let n = self.device.n_qubits();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x51EC0DE);
        let edges = self.device.edges();
        assert!(!edges.is_empty(), "device must have at least one edge");
        // cycles[t] = gates of cycle t over *physical* qubits.
        let mut cycles: Vec<Vec<PhysGate>> = vec![Vec::new(); self.depth];
        let mut busy: Vec<Vec<bool>> = vec![vec![false; n]; self.depth];
        // 1. Scaffold chain: gate at cycle t shares a qubit with cycle t-1.
        let mut link: u32 = {
            let &(a, b) = edges.choose(&mut rng).expect("non-empty");
            cycles[0].push(PhysGate::Two(a, b));
            busy[0][a as usize] = true;
            busy[0][b as usize] = true;
            if rng.random_bool(0.5) {
                a
            } else {
                b
            }
        };
        for t in 1..self.depth {
            // Prefer extending with a two-qubit gate on an edge at `link`;
            // fall back to a single-qubit gate on `link`.
            let neighbors = self.device.neighbors(link);
            if !neighbors.is_empty() && rng.random_bool(0.8) {
                let &next = neighbors.choose(&mut rng).expect("non-empty");
                cycles[t].push(PhysGate::Two(link, next));
                busy[t][link as usize] = true;
                busy[t][next as usize] = true;
                if rng.random_bool(0.5) {
                    link = next;
                }
            } else {
                cycles[t].push(PhysGate::One(link));
                busy[t][link as usize] = true;
            }
        }
        // 2. Fill to density.
        let target_2q = ((self.density_2q * n as f64) / 2.0).round() as usize;
        let target_1q = (self.density_1q * n as f64).round() as usize;
        for t in 0..self.depth {
            let mut shuffled = edges.clone();
            shuffled.shuffle(&mut rng);
            let mut n2 = cycles[t]
                .iter()
                .filter(|g| matches!(g, PhysGate::Two(..)))
                .count();
            for &(a, b) in &shuffled {
                if n2 >= target_2q {
                    break;
                }
                if !busy[t][a as usize] && !busy[t][b as usize] {
                    cycles[t].push(PhysGate::Two(a, b));
                    busy[t][a as usize] = true;
                    busy[t][b as usize] = true;
                    n2 += 1;
                }
            }
            let mut n1 = cycles[t]
                .iter()
                .filter(|g| matches!(g, PhysGate::One(_)))
                .count();
            let mut qubits: Vec<u32> = (0..n as u32).collect();
            qubits.shuffle(&mut rng);
            for q in qubits {
                if n1 >= target_1q {
                    break;
                }
                if !busy[t][q as usize] {
                    cycles[t].push(PhysGate::One(q));
                    busy[t][q as usize] = true;
                    n1 += 1;
                }
            }
        }
        // 3. Hide the solution: relabel physical -> logical by a random
        // permutation π; the optimal layout maps logical l to the physical
        // qubit it came from.
        let mut perm: Vec<u32> = (0..n as u32).collect(); // perm[phys] = logical
        perm.shuffle(&mut rng);
        let mut optimal_layout = vec![0u32; n]; // [logical] -> physical
        for (phys, &logical) in perm.iter().enumerate() {
            optimal_layout[logical as usize] = phys as u32;
        }
        let one_q_kinds = [GateKind::H, GateKind::T, GateKind::X, GateKind::S];
        let mut circuit = Circuit::with_capacity(n, self.depth * (target_2q + target_1q + 1));
        for cycle in &cycles {
            for g in cycle {
                match *g {
                    PhysGate::Two(a, b) => circuit.push(Gate::two_q(
                        GateKind::Cx,
                        perm[a as usize],
                        perm[b as usize],
                    )),
                    PhysGate::One(q) => {
                        let kind = one_q_kinds[rng.random_range(0..one_q_kinds.len())].clone();
                        circuit.push(Gate::one_q(kind, perm[q as usize]));
                    }
                }
            }
        }
        QuekoBenchmark {
            circuit,
            optimal_depth: self.depth,
            optimal_layout,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum PhysGate {
    One(u32),
    Two(u32, u32),
}

/// A synthesized QUEKO instance.
#[derive(Clone, Debug)]
pub struct QuekoBenchmark {
    /// The permuted (logical) circuit handed to mappers.
    pub circuit: Circuit,
    /// The provably optimal depth `T`.
    pub optimal_depth: usize,
    /// The hidden layout (`[logical] → physical`) that needs zero SWAPs.
    pub optimal_layout: Vec<u32>,
}

/// The depth grid of the BSS ("benchmarks for scaling study") suites used
/// throughout the paper's evaluation: 100, 200, …, 900 cycles.
pub fn bss_depths() -> Vec<usize> {
    (1..=9).map(|k| k * 100).collect()
}

/// Generates a full BSS-style suite: every depth in [`bss_depths`] times
/// `seeds_per_depth` instances.
pub fn bss_suite(
    device: &CouplingGraph,
    seeds_per_depth: usize,
) -> Vec<(usize, u64, QuekoBenchmark)> {
    let mut out = Vec::new();
    for depth in bss_depths() {
        for seed in 0..seeds_per_depth as u64 {
            out.push((
                depth,
                seed,
                QuekoSpec::new(device, depth).seed(seed).generate(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::backends;

    #[test]
    fn depth_is_exactly_t() {
        let device = backends::aspen16();
        for depth in [1, 17, 120] {
            let b = QuekoSpec::new(&device, depth).seed(3).generate();
            assert_eq!(b.circuit.depth(), depth, "depth {depth}");
            assert_eq!(b.optimal_depth, depth);
        }
    }

    #[test]
    fn hidden_layout_needs_zero_swaps() {
        let device = backends::sycamore54();
        let b = QuekoSpec::new(&device, 60).seed(11).generate();
        // Under the optimal layout every two-qubit gate sits on an edge.
        for g in b.circuit.gates() {
            if let Some((a, b_)) = g.qubit_pair() {
                let (pa, pb) = (b.optimal_layout[a as usize], b.optimal_layout[b_ as usize]);
                assert!(device.is_adjacent(pa, pb), "{a}->{pa}, {b_}->{pb}");
            }
        }
    }

    #[test]
    fn densities_respected() {
        let device = backends::king_grid(9, 9); // 81 qubits
        let depth = 200;
        let b = QuekoSpec::new(&device, depth)
            .density_2q(0.4)
            .density_1q(0.1)
            .seed(5)
            .generate();
        let two_q = b.circuit.two_qubit_count() as f64;
        let per_cycle = two_q / depth as f64;
        // Target is 0.4 * 81 / 2 ≈ 16.2 gates per cycle; allow the scaffold
        // and fill randomness a little slack.
        assert!(
            (13.0..=17.0).contains(&per_cycle),
            "2q per cycle = {per_cycle}"
        );
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let device = backends::aspen16();
        let a1 = QuekoSpec::new(&device, 50).seed(1).generate();
        let a2 = QuekoSpec::new(&device, 50).seed(1).generate();
        let b = QuekoSpec::new(&device, 50).seed(2).generate();
        assert_eq!(a1.circuit, a2.circuit);
        assert_ne!(a1.circuit, b.circuit);
    }

    #[test]
    fn identity_mapped_circuit_usually_needs_swaps() {
        // The point of QUEKO: the hidden permutation makes the trivial
        // layout disconnected.
        let device = backends::king_grid(4, 4);
        let b = QuekoSpec::new(&device, 80).seed(9).generate();
        let disconnected = b
            .circuit
            .gates()
            .iter()
            .filter_map(|g| g.qubit_pair())
            .filter(|&(a, b)| !device.is_adjacent(a, b))
            .count();
        assert!(disconnected > 0, "permutation should break adjacency");
    }

    #[test]
    fn bss_suite_shape() {
        let device = backends::aspen16();
        let suite = bss_suite(&device, 2);
        assert_eq!(suite.len(), 18);
        assert_eq!(suite[0].0, 100);
        assert_eq!(suite.last().unwrap().0, 900);
    }

    #[test]
    fn queko_circuits_round_trip_through_qasm() {
        // QUEKO suites are distributed as QASM files; ours must serialize
        // and re-load losslessly.
        let device = backends::aspen16();
        let b = QuekoSpec::new(&device, 40).seed(4).generate();
        let text = qasm::emit(&b.circuit.to_qasm());
        let reparsed = Circuit::from_qasm(&qasm::parse(&text).expect("emitted QASM parses"))
            .expect("converts back");
        assert_eq!(b.circuit, reparsed);
    }
}
