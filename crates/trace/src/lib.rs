//! # qlosure-trace — per-job span trees with near-zero disabled cost
//!
//! The serving tier attributes a job's wall time to stages (queue wait,
//! engine pickup, every mapping pass, each hierarchical fragment, plan-store
//! tier decisions) by recording **spans** into a per-job [`Tracer`]. The
//! design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Instrumented code calls
//!    [`span`]/[`span_label`] unconditionally; when no tracing context is
//!    installed on the thread the call is one thread-local read and a
//!    branch — no allocation, no clock read, no lock.
//! 2. **Bounded.** A [`Tracer`] holds at most its configured capacity of
//!    completed spans; overflow increments a drop counter instead of
//!    growing. The lock is held only to push one finished span.
//! 3. **Additive.** Spans observe; they never feed back into mapping
//!    decisions, so routed output is bit-for-bit identical with tracing on.
//!
//! Timestamps come from one process-wide monotonic clock ([`now_ns`]), so
//! independent measurements of the same interval (e.g. the intake
//! `queue_seconds` sample and the queue-wait span) agree bit-for-bit when
//! derived from the same two stamps.
//!
//! Context hops threads explicitly: the submitting thread's context is
//! captured with [`current_ctx`] and re-installed on the worker with
//! [`set_ctx`]. Span guards nest through the thread-local parent pointer:
//! while a [`SpanGuard`] is live, new spans on the same thread become its
//! children.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Span ID of the per-job root span. [`Tracer::new`] reserves it so
/// children can be recorded before the root itself is (the root's extent
/// is only known when the job finishes and is recorded retroactively via
/// [`Tracer::finish_root`]).
pub const ROOT_SPAN: u64 = 1;

/// Nanoseconds since the process-wide trace-clock origin (the first call
/// to this function). Monotonic; shared by every tracer in the process so
/// spans from different threads order correctly.
pub fn now_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    Instant::now().duration_since(origin).as_nanos() as u64
}

/// One completed span: a named `[start_ns, end_ns]` interval on the
/// process clock, positioned in its job's tree by `parent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique (per tracer) span ID; the root is [`ROOT_SPAN`].
    pub id: u64,
    /// Parent span ID; `0` means top-of-tree (only the root has it).
    pub parent: u64,
    /// Stage label, e.g. `routing:hier-route` or `intake:queue-wait`.
    pub name: String,
    /// Start stamp from [`now_ns`].
    pub start_ns: u64,
    /// End stamp from [`now_ns`].
    pub end_ns: u64,
    /// Key/value annotations, e.g. `("plan_tier", "canonical")`.
    pub notes: Vec<(String, String)>,
}

struct Sink {
    spans: Vec<Span>,
    dropped: u64,
}

/// Spans dropped across every tracer in the process — the scrapeable
/// aggregate behind `qlosure_trace_drops_total` (per-tracer counts die
/// with their job; this one survives for the metrics exporter).
static GLOBAL_DROPS: AtomicU64 = AtomicU64::new(0);

/// Total spans dropped by full sinks, process-wide, since start.
pub fn drops_total() -> u64 {
    GLOBAL_DROPS.load(Ordering::Relaxed)
}

/// A per-job span sink. Cheap to share (`Arc`), safe to record into from
/// any thread, bounded at construction time.
pub struct Tracer {
    trace_id: u64,
    capacity: usize,
    next_id: AtomicU64,
    sink: Mutex<Sink>,
}

impl Tracer {
    /// Creates a tracer identified by `trace_id` (propagated over the
    /// wire so a router can correlate its wrapper span with the shard's
    /// tree) holding at most `capacity` completed spans.
    pub fn new(trace_id: u64, capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            trace_id,
            capacity: capacity.max(1),
            next_id: AtomicU64::new(ROOT_SPAN + 1),
            sink: Mutex::new(Sink {
                spans: Vec::new(),
                dropped: 0,
            }),
        })
    }

    /// The wire-propagated trace identity.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one finished span; past capacity it is counted in
    /// [`Tracer::dropped`] (and the process-wide [`drops_total`])
    /// instead of stored.
    pub fn record(&self, span: Span) {
        let mut sink = self.sink.lock().expect("trace sink poisoned");
        if sink.spans.len() < self.capacity {
            sink.spans.push(span);
        } else {
            sink.dropped += 1;
            GLOBAL_DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a retroactive span as a direct child of the root — used
    /// for intervals that began before any guard could exist on the
    /// worker thread (queue wait starts at admission).
    pub fn record_root_child(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        notes: Vec<(String, String)>,
    ) {
        let id = self.next_span_id();
        self.record(Span {
            id,
            parent: ROOT_SPAN,
            name: name.to_string(),
            start_ns,
            end_ns,
            notes,
        });
    }

    /// Records the reserved root span once the job's full extent is
    /// known. Call exactly once, after all children.
    pub fn finish_root(
        &self,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        notes: Vec<(String, String)>,
    ) {
        self.record(Span {
            id: ROOT_SPAN,
            parent: 0,
            name: name.to_string(),
            start_ns,
            end_ns,
            notes,
        });
    }

    /// Spans silently discarded because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.sink.lock().expect("trace sink poisoned").dropped
    }

    /// Snapshot of the recorded spans, ordered by start stamp (ties by
    /// span ID, which is allocation order).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut spans = self.sink.lock().expect("trace sink poisoned").spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        spans
    }
}

/// A cloneable tracing context: which tracer (if any) the current work
/// belongs to and which span is its parent. [`Ctx::default`] is the
/// disabled context.
#[derive(Clone, Default)]
pub struct Ctx {
    slot: Option<(Arc<Tracer>, u64)>,
}

impl Ctx {
    /// A context recording into `tracer` with spans parented on `parent`
    /// (usually [`ROOT_SPAN`]).
    pub fn new(tracer: Arc<Tracer>, parent: u64) -> Ctx {
        Ctx {
            slot: Some((tracer, parent)),
        }
    }

    /// Whether this context records anything.
    pub fn enabled(&self) -> bool {
        self.slot.is_some()
    }

    /// The tracer behind this context, if enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.slot.as_ref().map(|(t, _)| t)
    }
}

thread_local! {
    static CTX: RefCell<Ctx> = RefCell::new(Ctx::default());
}

/// The calling thread's current context — capture it before handing work
/// to another thread, then [`set_ctx`] there.
pub fn current_ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone())
}

/// Installs `ctx` on the calling thread until the returned guard drops
/// (the previous context is restored).
#[must_use = "dropping the guard immediately uninstalls the context"]
pub fn set_ctx(ctx: &Ctx) -> CtxGuard {
    let prev = CTX.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx.clone()));
    CtxGuard { prev: Some(prev) }
}

/// Disables tracing on the calling thread until the returned guard drops
/// — used around work fanned out speculatively (hier plan prefetch) whose
/// spans would be noise.
#[must_use = "dropping the guard immediately re-enables tracing"]
pub fn suppress() -> CtxGuard {
    set_ctx(&Ctx::default())
}

/// Restores the previously installed context on drop.
pub struct CtxGuard {
    prev: Option<Ctx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CTX.with(|c| *c.borrow_mut() = prev);
        }
    }
}

struct ActiveSpan {
    tracer: Arc<Tracer>,
    id: u64,
    parent: u64,
    name: String,
    start_ns: u64,
    notes: Vec<(String, String)>,
}

/// RAII span: opened by [`span`]/[`span_label`], recorded on drop. While
/// live, spans opened on the same thread nest beneath it. Inert (and
/// free) when the thread has no context installed.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Whether this guard will record anything — check before computing
    /// anything expensive purely for [`SpanGuard::note`].
    pub fn enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a key/value annotation; `value` is only evaluated when
    /// the span is enabled.
    pub fn note(&mut self, key: &str, value: impl FnOnce() -> String) {
        if let Some(active) = self.active.as_mut() {
            active.notes.push((key.to_string(), value()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let end_ns = now_ns();
            CTX.with(|c| {
                let mut ctx = c.borrow_mut();
                if let Some((_, parent)) = ctx.slot.as_mut() {
                    *parent = active.parent;
                }
            });
            active.tracer.record(Span {
                id: active.id,
                parent: active.parent,
                name: active.name,
                start_ns: active.start_ns,
                end_ns,
                notes: active.notes,
            });
        }
    }
}

fn span_with(make_name: impl FnOnce() -> String) -> SpanGuard {
    let slot = CTX.with(|c| c.borrow().slot.clone());
    match slot {
        None => SpanGuard { active: None },
        Some((tracer, parent)) => {
            let id = tracer.next_span_id();
            CTX.with(|c| {
                if let Some((_, p)) = c.borrow_mut().slot.as_mut() {
                    *p = id;
                }
            });
            SpanGuard {
                active: Some(ActiveSpan {
                    tracer,
                    id,
                    parent,
                    name: make_name(),
                    start_ns: now_ns(),
                    notes: Vec::new(),
                }),
            }
        }
    }
}

/// Opens a span named `name` under the thread's current context. With no
/// context installed this is one thread-local read and returns an inert
/// guard.
pub fn span(name: &str) -> SpanGuard {
    span_with(|| name.to_string())
}

/// Opens a span named `stage:name` (the `PassTiming::label` convention);
/// the label is only formatted when tracing is enabled.
pub fn span_label(stage: &str, name: &str) -> SpanGuard {
    span_with(|| format!("{stage}:{name}"))
}

/// Records a retroactive `[start_ns, end_ns]` span as a child of the
/// thread's current parent. No-op without a context.
pub fn record_span(name: &str, start_ns: u64, end_ns: u64) {
    let slot = CTX.with(|c| c.borrow().slot.clone());
    if let Some((tracer, parent)) = slot {
        let id = tracer.next_span_id();
        tracer.record(Span {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            end_ns,
            notes: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let mut guard = span("nothing");
        assert!(!guard.enabled());
        let mut evaluated = false;
        guard.note("k", || {
            evaluated = true;
            "v".to_string()
        });
        drop(guard);
        assert!(!evaluated, "notes must not be evaluated when disabled");
        record_span("also-nothing", 0, 1);
    }

    #[test]
    fn spans_nest_through_the_thread_local_parent() {
        let tracer = Tracer::new(7, 64);
        let ctx = Ctx::new(tracer.clone(), ROOT_SPAN);
        {
            let _g = set_ctx(&ctx);
            let outer = span("outer");
            assert!(outer.enabled());
            {
                let mut inner = span_label("stage", "inner");
                inner.note("tier", || "exact".to_string());
            }
            drop(outer);
            let sibling = span("sibling");
            drop(sibling);
        }
        tracer.finish_root("job", 0, now_ns(), Vec::new());
        let spans = tracer.snapshot();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let outer = by_name("outer");
        let inner = by_name("stage:inner");
        let sibling = by_name("sibling");
        let root = by_name("job");
        assert_eq!(root.id, ROOT_SPAN);
        assert_eq!(root.parent, 0);
        assert_eq!(outer.parent, ROOT_SPAN);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, ROOT_SPAN);
        assert_eq!(inner.notes, vec![("tier".to_string(), "exact".to_string())]);
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
        assert_eq!(tracer.trace_id(), 7);
    }

    #[test]
    fn sink_is_bounded_and_counts_drops() {
        let tracer = Tracer::new(1, 3);
        let ctx = Ctx::new(tracer.clone(), ROOT_SPAN);
        let _g = set_ctx(&ctx);
        for i in 0..5 {
            drop(span(&format!("s{i}")));
        }
        assert_eq!(tracer.snapshot().len(), 3);
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn context_restores_and_suppress_disables() {
        let tracer = Tracer::new(2, 8);
        let ctx = Ctx::new(tracer.clone(), ROOT_SPAN);
        let _g = set_ctx(&ctx);
        {
            let _quiet = suppress();
            assert!(!current_ctx().enabled());
            drop(span("invisible"));
        }
        assert!(current_ctx().enabled());
        record_span("visible", 1, 2);
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "visible");
        assert_eq!(spans[0].parent, ROOT_SPAN);
    }

    #[test]
    fn context_hops_threads() {
        let tracer = Tracer::new(3, 8);
        let ctx = Ctx::new(tracer.clone(), ROOT_SPAN);
        let captured = {
            let _g = set_ctx(&ctx);
            current_ctx()
        };
        std::thread::spawn(move || {
            let _g = set_ctx(&captured);
            drop(span("on-worker"));
        })
        .join()
        .unwrap();
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "on-worker");
    }

    #[test]
    fn root_children_record_before_the_root() {
        let tracer = Tracer::new(4, 8);
        tracer.record_root_child(
            "intake:queue-wait",
            10,
            20,
            vec![("w".to_string(), "1".to_string())],
        );
        tracer.finish_root("job", 10, 30, Vec::new());
        let spans = tracer.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, ROOT_SPAN);
        assert_eq!(spans[1].parent, ROOT_SPAN);
        assert_eq!(spans[1].name, "intake:queue-wait");
    }
}
