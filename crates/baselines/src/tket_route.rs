//! tket-style LexiRoute baseline (Cowtan et al., TQC'19), as a routing
//! pass over the shared [`RoutingState`].

use circuit::Circuit;
use qlosure::{
    Artifacts, IdentityLayoutPass, Mapper, MappingPipeline, MappingResult, RoutingPass,
    RoutingState,
};
use topology::CouplingGraph;

/// Configuration of the tket-style baseline.
#[derive(Clone, Debug)]
pub struct TketConfig {
    /// Number of future slices entering the lexicographic comparison.
    pub depth_limit: usize,
    /// Upper bound on gates per look-ahead slice.
    pub slice_width: usize,
    /// Swaps without progress before a forced shortest-path escape.
    pub stall_slack: usize,
}

impl Default for TketConfig {
    fn default() -> Self {
        TketConfig {
            depth_limit: 4,
            slice_width: 16,
            stall_slack: 16,
        }
    }
}

/// LexiRoute-style router: every candidate swap is scored by the
/// lexicographically compared vector of sorted-descending qubit distances
/// over the current and next few time slices — tket's "bounded longest
/// distance" objective from the paper's Table I.
///
/// A pass composition `identity → tket-route` over the shared
/// [`RoutingState`].
#[derive(Clone, Debug, Default)]
pub struct TketMapper {
    /// Knobs.
    pub config: TketConfig,
}

impl TketMapper {
    /// The pass composition this mapper runs.
    pub fn to_pipeline(&self) -> MappingPipeline {
        MappingPipeline::new(
            IdentityLayoutPass,
            TketRoutingPass::new(self.config.clone()),
        )
    }
}

impl Mapper for TketMapper {
    fn name(&self) -> &str {
        "tket"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

/// The LexiRoute loop as a [`RoutingPass`].
#[derive(Clone, Debug, Default)]
pub struct TketRoutingPass {
    config: TketConfig,
}

impl TketRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: TketConfig) -> Self {
        TketRoutingPass { config }
    }

    /// The current slice plus up to `depth_limit - 1` future slices,
    /// grouped by dependence level.
    fn build_slices(&self, st: &RoutingState<'_>, front: &[u32]) -> Vec<Vec<u32>> {
        let mut slices: Vec<Vec<u32>> = vec![front.to_vec()];
        let budget = self.config.slice_width * (self.config.depth_limit - 1).max(1);
        let upcoming = st.lookahead(budget);
        // Group the upcoming gates by how many two-qubit predecessors they
        // have inside the window — a cheap dependence-level proxy that
        // matches slice order for slice-structured circuits.
        let mut level: std::collections::HashMap<u32, usize> =
            front.iter().map(|&g| (g, 0usize)).collect();
        for &g in &upcoming {
            let l = st
                .dag()
                .preds(g)
                .iter()
                .filter_map(|p| level.get(p))
                .max()
                .map_or(1, |&m| m + 1);
            level.insert(g, l);
            if l < self.config.depth_limit {
                if slices.len() <= l {
                    slices.resize(l + 1, Vec::new());
                }
                if slices[l].len() < self.config.slice_width {
                    slices[l].push(g);
                }
            }
        }
        slices
    }

    /// The lexicographic key: per slice, gate distances sorted descending,
    /// concatenated slice by slice (earlier slices dominate).
    fn lexi_key(&self, st: &RoutingState<'_>, slices: &[Vec<u32>]) -> Vec<u16> {
        let mut key = Vec::new();
        for slice in slices {
            let mut ds: Vec<u16> = slice
                .iter()
                .filter_map(|&g| st.circuit().gates()[g as usize].qubit_pair())
                .map(|(a, b)| st.dist().get(st.layout().phys(a), st.layout().phys(b)))
                .collect();
            ds.sort_unstable_by(|a, b| b.cmp(a));
            key.extend(ds);
            key.push(0); // slice separator keeps comparisons aligned
        }
        key
    }
}

impl RoutingPass for TketRoutingPass {
    fn name(&self) -> &'static str {
        "tket"
    }

    fn run(&self, st: &mut RoutingState<'_>, _artifacts: &Artifacts) {
        let stall_limit = 2 * st.dist().diameter() as usize + self.config.stall_slack;
        let mut stall = 0usize;
        loop {
            if st.execute_ready().ran > 0 {
                stall = 0;
            }
            let front = st.blocked_front();
            if front.is_empty() {
                break;
            }
            let slices = self.build_slices(st, &front);
            let mut best: Option<((u32, u32), Vec<u16>)> = None;
            for (p1, p2) in st.swap_candidates() {
                let key = st.speculate_swap(p1, p2, |s| self.lexi_key(s, &slices));
                match &best {
                    Some((_, k)) if key >= *k => {}
                    _ => best = Some(((p1, p2), key)),
                }
            }
            let baseline = self.lexi_key(st, &slices);
            match best {
                Some(((p1, p2), key)) if key < baseline && stall <= stall_limit => {
                    st.apply_swap(p1, p2);
                    stall += 1;
                }
                _ => {
                    st.force_route(front[0]);
                    stall = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn check(c: &Circuit, device: &CouplingGraph) -> MappingResult {
        let r = TketMapper::default().map(c, device);
        verify_routing(
            c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        )
        .expect("tket routing must verify");
        r
    }

    #[test]
    fn passes_through_adjacent_gates() {
        let device = backends::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = check(&c, &device);
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn lexicographic_prefers_shrinking_worst_gate() {
        // Two blocked gates, one much farther: the router should attack
        // the worst-distance gate first.
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        c.cx(0, 7); // distance 7 — the max
        c.cx(2, 4); // distance 2
        check(&c, &device);
    }

    #[test]
    fn random_circuit_verifies() {
        let device = backends::king_grid(3, 4);
        let mut c = Circuit::new(12);
        let mut s = 77u64;
        for _ in 0..90 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            let a = ((s >> 33) % 12) as u32;
            let b = ((s >> 17) % 12) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        check(&c, &device);
    }

    #[test]
    fn deep_dependent_chain() {
        let device = backends::ring(7);
        let mut c = Circuit::new(7);
        for i in 0..7u32 {
            c.cx(i, (i + 3) % 7);
        }
        check(&c, &device);
    }
}
