//! MQT QMAP-style baseline: per-layer A* search over SWAP sequences
//! (Zulehner, Paler & Wille, DATE'18), as a routing pass over the shared
//! [`RoutingState`].

use circuit::Circuit;
use qlosure::{
    Artifacts, IdentityLayoutPass, Mapper, MappingPipeline, MappingResult, RoutingPass,
    RoutingState,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use topology::CouplingGraph;

/// A* node store entry: (positions, parent id, swap taken, g-cost).
type AStarNode = (Vec<u32>, usize, (u32, u32), u32);

/// Configuration of the QMAP-style baseline.
#[derive(Clone, Debug)]
pub struct QmapConfig {
    /// Maximum A* node expansions per layer before falling back to greedy
    /// shortest-path routing of the remaining gates.
    pub max_expansions: usize,
    /// Upper bound on how many layer pairs the simultaneous-adjacency goal
    /// tracks per search (the closest pairs first); larger values are more
    /// faithful to QMAP's all-at-once layers but exponentially slower.
    pub max_layer_pairs: usize,
    /// Multiplier on the heuristic (`> 1` = weighted A*, faster but not
    /// swap-optimal — mirroring QMAP's non-admissible lookahead).
    pub heuristic_weight: f64,
}

impl Default for QmapConfig {
    fn default() -> Self {
        QmapConfig {
            max_expansions: 20_000,
            max_layer_pairs: 4,
            heuristic_weight: 1.5,
        }
    }
}

/// Layer-at-a-time A* router: each front layer is made *fully* executable
/// (every gate simultaneously adjacent) by an optimal-within-budget SWAP
/// sequence before any of its gates run — the strategy that makes QMAP
/// precise on narrow circuits and SWAP-hungry on wide ones.
///
/// A pass composition `identity → qmap-route` over the shared
/// [`RoutingState`].
#[derive(Clone, Debug, Default)]
pub struct QmapMapper {
    /// Search knobs.
    pub config: QmapConfig,
}

impl QmapMapper {
    /// The pass composition this mapper runs.
    pub fn to_pipeline(&self) -> MappingPipeline {
        MappingPipeline::new(
            IdentityLayoutPass,
            QmapRoutingPass::new(self.config.clone()),
        )
    }
}

impl Mapper for QmapMapper {
    fn name(&self) -> &str {
        "qmap"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

/// The per-layer A* loop as a [`RoutingPass`].
#[derive(Clone, Debug, Default)]
pub struct QmapRoutingPass {
    config: QmapConfig,
}

impl QmapRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: QmapConfig) -> Self {
        QmapRoutingPass { config }
    }
}

impl RoutingPass for QmapRoutingPass {
    fn name(&self) -> &'static str {
        "qmap"
    }

    fn run(&self, st: &mut RoutingState<'_>, _artifacts: &Artifacts) {
        loop {
            st.execute_ready();
            let layer = st.blocked_front();
            if layer.is_empty() {
                break;
            }
            // The logical pairs that must become adjacent simultaneously;
            // wide layers are chunked (closest pairs first) to keep the
            // search space finite.
            let mut pairs: Vec<(u32, u32)> = layer
                .iter()
                .filter_map(|&g| st.circuit().gates()[g as usize].qubit_pair())
                .collect();
            pairs.sort_by_key(|&(a, b)| st.dist().get(st.layout().phys(a), st.layout().phys(b)));
            pairs.truncate(self.config.max_layer_pairs);
            match astar_swaps(st, &pairs, &self.config) {
                Some(swaps) => {
                    for (p1, p2) in swaps {
                        st.apply_swap(p1, p2);
                    }
                }
                None => {
                    // Budget exhausted: route one gate and retry — forcing
                    // several at once could re-block earlier ones.
                    st.force_route(layer[0]);
                }
            }
        }
    }
}

/// A* over layouts restricted to the layer's logical qubits. Returns the
/// SWAP sequence reaching a state where every pair is adjacent, or `None`
/// when the expansion budget runs out.
fn astar_swaps(
    st: &RoutingState<'_>,
    pairs: &[(u32, u32)],
    config: &QmapConfig,
) -> Option<Vec<(u32, u32)>> {
    let max_expansions = config.max_expansions;
    // Track only the physical positions of the involved logical qubits.
    let mut logicals: Vec<u32> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    logicals.sort_unstable();
    logicals.dedup();
    let slot_of: HashMap<u32, usize> = logicals.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let pair_slots: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(a, b)| (slot_of[&a], slot_of[&b]))
        .collect();
    let start: Vec<u32> = logicals.iter().map(|&l| st.layout().phys(l)).collect();
    let h = |pos: &[u32]| -> u32 {
        let raw: u32 = pair_slots
            .iter()
            .map(|&(i, j)| (st.dist().get(pos[i], pos[j]) as u32).saturating_sub(1))
            .sum();
        (raw as f64 * config.heuristic_weight) as u32
    };
    let goal = |pos: &[u32]| {
        pair_slots
            .iter()
            .all(|&(i, j)| st.device().is_adjacent(pos[i], pos[j]))
    };
    if goal(&start) {
        return Some(Vec::new());
    }
    // Node store: id -> (positions, parent, swap, g).
    let mut nodes: Vec<AStarNode> = vec![(start.clone(), usize::MAX, (0, 0), 0)];
    let mut best_g: HashMap<Vec<u32>, u32> = HashMap::from([(start.clone(), 0)]);
    let mut open: BinaryHeap<Reverse<(u32, u32, usize)>> = BinaryHeap::new();
    open.push(Reverse((h(&start), 0, 0)));
    let mut expansions = 0usize;
    while let Some(Reverse((_f, g, id))) = open.pop() {
        let (pos, _, _, node_g) = nodes[id].clone();
        if node_g != g {
            continue; // stale entry
        }
        if goal(&pos) {
            // Reconstruct the swap sequence.
            let mut swaps = Vec::new();
            let mut cur = id;
            while nodes[cur].1 != usize::MAX {
                swaps.push(nodes[cur].2);
                cur = nodes[cur].1;
            }
            swaps.reverse();
            return Some(swaps);
        }
        expansions += 1;
        if expansions > max_expansions {
            return None;
        }
        // Successor states: swaps on edges incident to an involved qubit.
        let mut cand: Vec<(u32, u32)> = Vec::new();
        for &p in pos.iter() {
            for &q in st.device().neighbors(p) {
                let pair = (p.min(q), p.max(q));
                if !cand.contains(&pair) {
                    cand.push(pair);
                }
            }
        }
        for (p1, p2) in cand {
            let mut next = pos.clone();
            for v in next.iter_mut() {
                if *v == p1 {
                    *v = p2;
                } else if *v == p2 {
                    *v = p1;
                }
            }
            let ng = g + 1;
            if best_g.get(&next).is_none_or(|&old| ng < old) {
                best_g.insert(next.clone(), ng);
                let nh = h(&next);
                let nid = nodes.len();
                nodes.push((next, id, (p1, p2), ng));
                open.push(Reverse((ng + nh, ng, nid)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn check(c: &Circuit, device: &CouplingGraph) -> MappingResult {
        let r = QmapMapper::default().map(c, device);
        verify_routing(
            c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        )
        .expect("qmap routing must verify");
        r
    }

    #[test]
    fn single_distant_gate_optimal_swaps() {
        let device = backends::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = check(&c, &device);
        assert_eq!(r.swaps, 3, "A* must find the 3-swap optimum");
    }

    #[test]
    fn layer_made_simultaneously_executable() {
        let device = backends::ring(8);
        let mut c = Circuit::new(8);
        c.cx(0, 4);
        c.cx(1, 5);
        let r = check(&c, &device);
        assert!(r.swaps >= 4);
    }

    #[test]
    fn random_circuit_verifies() {
        let device = backends::square_grid(3, 3);
        let mut c = Circuit::new(9);
        let mut s = 11u64;
        for _ in 0..50 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            let a = ((s >> 33) % 9) as u32;
            let b = ((s >> 17) % 9) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        check(&c, &device);
    }

    #[test]
    fn budget_fallback_still_valid() {
        // Force tiny budget: the fallback greedy path must still verify.
        let device = backends::king_grid(4, 4);
        let mut c = Circuit::new(16);
        for i in 0..8u32 {
            c.cx(i, 15 - i);
        }
        let mapper = QmapMapper {
            config: QmapConfig {
                max_expansions: 10,
                ..QmapConfig::default()
            },
        };
        let r = mapper.map(&c, &device);
        verify_routing(
            &c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        )
        .unwrap();
    }
}
