//! SABRE / LightSABRE baseline (Li, Ding & Xie, ASPLOS'19), as a routing
//! pass over the shared [`RoutingState`].

use circuit::Circuit;
use qlosure::{
    Artifacts, IdentityLayoutPass, Mapper, MappingPipeline, MappingResult, RoutingPass,
    RoutingState,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topology::CouplingGraph;

/// Configuration of the SABRE baseline.
#[derive(Clone, Debug)]
pub struct SabreConfig {
    /// Size of the extended (look-ahead) set; SABRE uses ~20.
    pub extended_set_size: usize,
    /// Weight of the extended set in the heuristic; SABRE uses 0.5.
    pub extended_set_weight: f64,
    /// Decay increment per swap (SABRE: 0.001).
    pub decay_delta: f64,
    /// Decay is reset every this many swap rounds (SABRE: 5).
    pub decay_reset_interval: usize,
    /// Tie-break seed.
    pub seed: u64,
    /// Swaps without progress before a forced shortest-path escape (the
    /// "release valve" LightSABRE added).
    pub stall_slack: usize,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_size: 20,
            extended_set_weight: 0.5,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            seed: 0x5AB3E,
            stall_slack: 16,
        }
    }
}

/// The SABRE decay-heuristic router:
/// `H = max(δ) · (Σ_F D/|F| + W · Σ_E D/|E|)`.
///
/// A pass composition `identity → sabre-route` over the shared
/// [`RoutingState`] (the decay table lives in the state).
#[derive(Clone, Debug, Default)]
pub struct SabreMapper {
    /// Knobs; defaults match the published constants.
    pub config: SabreConfig,
}

impl SabreMapper {
    /// The pass composition this mapper runs.
    pub fn to_pipeline(&self) -> MappingPipeline {
        MappingPipeline::new(
            IdentityLayoutPass,
            SabreRoutingPass::new(self.config.clone()),
        )
    }
}

impl Mapper for SabreMapper {
    fn name(&self) -> &str {
        "sabre"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

/// The SABRE routing loop as a [`RoutingPass`].
#[derive(Clone, Debug, Default)]
pub struct SabreRoutingPass {
    config: SabreConfig,
}

impl SabreRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: SabreConfig) -> Self {
        SabreRoutingPass { config }
    }
}

impl RoutingPass for SabreRoutingPass {
    fn name(&self) -> &'static str {
        "sabre"
    }

    fn run(&self, st: &mut RoutingState<'_>, _artifacts: &Artifacts) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let stall_limit = 3 * st.dist().diameter() as usize + self.config.stall_slack;
        let mut stall = 0usize;
        let mut rounds_since_reset = 0usize;
        loop {
            if st.execute_ready().ran > 0 {
                st.reset_decay();
                stall = 0;
                rounds_since_reset = 0;
            }
            let blocked = st.blocked_front();
            if blocked.is_empty() {
                break;
            }
            let extended = st.lookahead(self.config.extended_set_size);
            let candidates = st.swap_candidates();
            let mut best: Vec<(u32, u32)> = Vec::new();
            let mut best_score = f64::INFINITY;
            for &(p1, p2) in &candidates {
                let (h_front, h_ext) = st.speculate_swap(p1, p2, |s| {
                    let h_front = s.distance_sum(&blocked) / blocked.len() as f64;
                    let h_ext = if extended.is_empty() {
                        0.0
                    } else {
                        s.distance_sum(&extended) / extended.len() as f64
                    };
                    (h_front, h_ext)
                });
                let d = st.decay(p1).max(st.decay(p2));
                let score = d * (h_front + self.config.extended_set_weight * h_ext);
                if score < best_score - 1e-9 {
                    best_score = score;
                    best.clear();
                    best.push((p1, p2));
                } else if (score - best_score).abs() <= 1e-9 {
                    best.push((p1, p2));
                }
            }
            let (p1, p2) = best[rng.random_range(0..best.len())];
            st.apply_swap(p1, p2);
            st.bump_decay(p1, self.config.decay_delta);
            st.bump_decay(p2, self.config.decay_delta);
            stall += 1;
            rounds_since_reset += 1;
            if rounds_since_reset >= self.config.decay_reset_interval {
                st.reset_decay();
                rounds_since_reset = 0;
            }
            if stall > stall_limit {
                let g = blocked[0];
                st.force_route(g);
                st.reset_decay();
                stall = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn check(c: &Circuit, device: &CouplingGraph) -> MappingResult {
        let r = SabreMapper::default().map(c, device);
        verify_routing(
            c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        )
        .expect("sabre routing must verify");
        r
    }

    #[test]
    fn trivial_circuit_no_swaps() {
        let device = backends::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = check(&c, &device);
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn routes_distant_pairs() {
        let device = backends::line(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(5, 0);
        c.cx(2, 4);
        let r = check(&c, &device);
        assert!(r.swaps >= 3);
    }

    #[test]
    fn random_circuit_on_grid() {
        let device = backends::square_grid(3, 3);
        let mut c = Circuit::new(9);
        let mut s = 5u64;
        for _ in 0..80 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((s >> 33) % 9) as u32;
            let b = ((s >> 17) % 9) as u32;
            if a != b {
                c.cx(a, b);
            } else {
                c.h(a);
            }
        }
        check(&c, &device);
    }

    #[test]
    fn deterministic_per_seed() {
        let device = backends::ring(8);
        let mut c = Circuit::new(8);
        for i in 0..8u32 {
            c.cx(i, (i + 3) % 8);
        }
        let r1 = SabreMapper::default().map(&c, &device);
        let r2 = SabreMapper::default().map(&c, &device);
        assert_eq!(r1.routed, r2.routed);
    }

    #[test]
    fn pipeline_form_matches_map_adapter() {
        let device = backends::ring(8);
        let mut c = Circuit::new(8);
        for i in 0..8u32 {
            c.cx(i, (i + 3) % 8);
        }
        let mapper = SabreMapper::default();
        let direct = mapper.map(&c, &device);
        let outcome = mapper.to_pipeline().run(&c, &device).unwrap();
        assert_eq!(outcome.result, direct);
        assert_eq!(outcome.timings.len(), 2); // identity, sabre
    }
}
