//! Cirq-style greedy time-sliced router, as a routing pass over the
//! shared [`RoutingState`].

use circuit::Circuit;
use qlosure::{
    Artifacts, IdentityLayoutPass, Mapper, MappingPipeline, MappingResult, RoutingPass,
    RoutingState,
};
use topology::CouplingGraph;

/// Configuration of the Cirq-style baseline.
#[derive(Clone, Debug)]
pub struct CirqConfig {
    /// How many upcoming two-qubit gates the greedy score peeks at.
    pub lookahead: usize,
    /// Weight of the look-ahead term relative to the active slice.
    pub lookahead_weight: f64,
    /// Swaps without progress before a forced shortest-path escape.
    pub stall_slack: usize,
}

impl Default for CirqConfig {
    fn default() -> Self {
        CirqConfig {
            lookahead: 8,
            lookahead_weight: 0.1,
            stall_slack: 16,
        }
    }
}

/// Greedy router in the spirit of Cirq's `route_circuit_greedily`: per
/// time slice, apply the swap that most decreases the summed qubit
/// distance of the active slice (with a light look-ahead), requiring
/// monotone progress and escaping along a shortest path when stuck.
///
/// A pass composition `identity → cirq-route` over the shared
/// [`RoutingState`].
#[derive(Clone, Debug, Default)]
pub struct CirqMapper {
    /// Knobs.
    pub config: CirqConfig,
}

impl CirqMapper {
    /// The pass composition this mapper runs.
    pub fn to_pipeline(&self) -> MappingPipeline {
        MappingPipeline::new(
            IdentityLayoutPass,
            CirqRoutingPass::new(self.config.clone()),
        )
    }
}

impl Mapper for CirqMapper {
    fn name(&self) -> &str {
        "cirq"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

/// The Cirq greedy loop as a [`RoutingPass`].
#[derive(Clone, Debug, Default)]
pub struct CirqRoutingPass {
    config: CirqConfig,
}

impl CirqRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: CirqConfig) -> Self {
        CirqRoutingPass { config }
    }
}

impl RoutingPass for CirqRoutingPass {
    fn name(&self) -> &'static str {
        "cirq"
    }

    fn run(&self, st: &mut RoutingState<'_>, _artifacts: &Artifacts) {
        let stall_limit = 2 * st.dist().diameter() as usize + self.config.stall_slack;
        let mut stall = 0usize;
        loop {
            if st.execute_ready().ran > 0 {
                stall = 0;
            }
            let slice = st.blocked_front();
            if slice.is_empty() {
                break;
            }
            let lookahead = st.lookahead(self.config.lookahead);
            let base = st.distance_sum(&slice)
                + self.config.lookahead_weight * st.distance_sum(&lookahead);
            let mut best: Option<(u32, u32)> = None;
            let mut best_score = base; // must strictly improve
            for (p1, p2) in st.swap_candidates() {
                let score = st.speculate_swap(p1, p2, |s| {
                    s.distance_sum(&slice)
                        + self.config.lookahead_weight * s.distance_sum(&lookahead)
                });
                if score < best_score - 1e-9 {
                    best_score = score;
                    best = Some((p1, p2));
                }
            }
            match best {
                Some((p1, p2)) if stall <= stall_limit => {
                    st.apply_swap(p1, p2);
                    stall += 1;
                }
                _ => {
                    // No strictly improving swap (local minimum) or too
                    // many swaps without executing: route the first
                    // blocked gate outright.
                    st.force_route(slice[0]);
                    stall = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn check(c: &Circuit, device: &CouplingGraph) -> MappingResult {
        let r = CirqMapper::default().map(c, device);
        verify_routing(
            c,
            &r.routed,
            &|a, b| device.is_adjacent(a, b),
            &r.initial_layout,
        )
        .expect("cirq routing must verify");
        r
    }

    #[test]
    fn adjacent_gates_pass_through() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        let r = check(&c, &device);
        assert_eq!(r.swaps, 0);
    }

    #[test]
    fn routes_crossing_pairs() {
        let device = backends::line(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(1, 4);
        check(&c, &device);
    }

    #[test]
    fn random_circuit_verifies() {
        let device = backends::ring(10);
        let mut c = Circuit::new(10);
        let mut s = 23u64;
        for _ in 0..70 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(12345);
            let a = ((s >> 33) % 10) as u32;
            let b = ((s >> 17) % 10) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        check(&c, &device);
    }

    #[test]
    fn local_minimum_escapes() {
        // A pattern where no single swap improves the sum: the router must
        // still terminate via the escape path.
        let device = backends::ring(6);
        let mut c = Circuit::new(6);
        c.cx(0, 3); // diametrically opposite on the ring
        let r = check(&c, &device);
        assert!(r.swaps >= 2);
    }
}
