//! Baseline qubit mappers: SABRE, QMAP, Cirq and tket reimplementations.
//!
//! The Qlosure paper compares against four production mappers. Binding the
//! original Python/C++ stacks is out of scope for an offline reproduction,
//! so this crate reimplements each tool's published routing algorithm in
//! Rust behind the common [`qlosure::Mapper`] interface:
//!
//! * [`SabreMapper`] — Li, Ding & Xie (ASPLOS'19) / LightSABRE: front +
//!   extended-set heuristic with qubit decay;
//! * [`QmapMapper`] — Zulehner, Paler & Wille (DATE'18), the heuristic in
//!   MQT QMAP: per-layer A* search over SWAP sequences;
//! * [`CirqMapper`] — Cirq's greedy time-sliced router: per-slice distance
//!   minimization with one-slice look-ahead;
//! * [`TketMapper`] — tket's LexiRoute-style router (Cowtan et al.,
//!   TQC'19): lexicographic comparison of per-slice distance vectors.
//!
//! **Every mapper is a pass composition, not a loop of its own**: each is
//! a [`qlosure::MappingPipeline`] of `identity-layout → <tool>-route`
//! whose routing pass drives the shared incremental
//! [`qlosure::RoutingState`] (front-layer maintenance, candidate-SWAP
//! enumeration, decay/clock tables, forced-progress escapes all live in
//! the state, not re-implemented per tool). The routing passes
//! ([`SabreRoutingPass`], [`QmapRoutingPass`], [`CirqRoutingPass`],
//! [`TketRoutingPass`]) are exported so custom pipelines can recompose
//! them — e.g. a SABRE router behind a Qlosure bidirectional layout pass.
//!
//! Every mapper's output is validated by [`circuit::verify_routing`] in
//! this crate's tests (and continuously by the workspace integration
//! tests). Absolute gate counts differ from the original tools — the
//! evaluation compares relative behaviour, which is what the paper's
//! tables measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cirq_greedy;
mod qmap;
mod sabre;
mod tket_route;

pub use cirq_greedy::{CirqConfig, CirqMapper, CirqRoutingPass};
pub use qmap::{QmapConfig, QmapMapper, QmapRoutingPass};
pub use sabre::{SabreConfig, SabreMapper, SabreRoutingPass};
pub use tket_route::{TketConfig, TketMapper, TketRoutingPass};

use qlosure::Mapper;

/// All four baselines, boxed behind the common interface (handy for the
/// evaluation harness).
pub fn all_baselines() -> Vec<Box<dyn Mapper + Send + Sync>> {
    vec![
        Box::new(SabreMapper::default()),
        Box::new(QmapMapper::default()),
        Box::new(CirqMapper::default()),
        Box::new(TketMapper::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Circuit;
    use qlosure::{BidirectionalLayoutPass, MappingPipeline, QlosureConfig};
    use topology::backends;

    #[test]
    fn every_baseline_exposes_its_pipeline() {
        let device = backends::ring(8);
        let mut c = Circuit::new(8);
        for i in 0..8u32 {
            c.cx(i, (i + 3) % 8);
        }
        for mapper in all_baselines() {
            let pipeline = mapper.pipeline().expect("baselines are pipeline-based");
            let outcome = pipeline.run(&c, &device).unwrap();
            assert_eq!(
                outcome.result,
                mapper.map(&c, &device),
                "{}: pipeline form must equal the map adapter",
                mapper.name()
            );
            assert_eq!(outcome.timings.len(), 2, "{}", mapper.name());
        }
    }

    #[test]
    fn routing_passes_recompose_with_foreign_layout_passes() {
        // A SABRE router behind Qlosure's bidirectional layout pass: the
        // point of the pass architecture is that this is just composition.
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        for _ in 0..3 {
            c.cx(0, 7);
            c.cx(1, 6);
        }
        let hybrid = MappingPipeline::new(
            BidirectionalLayoutPass::new(QlosureConfig::default(), 2),
            SabreRoutingPass::new(SabreConfig::default()),
        );
        let outcome = hybrid.run(&c, &device).unwrap();
        circuit::verify_routing(
            &c,
            &outcome.result.routed,
            &|a, b| device.is_adjacent(a, b),
            &outcome.result.initial_layout,
        )
        .unwrap();
    }
}
