//! Baseline qubit mappers: SABRE, QMAP, Cirq and tket reimplementations.
//!
//! The Qlosure paper compares against four production mappers. Binding the
//! original Python/C++ stacks is out of scope for an offline reproduction,
//! so this crate reimplements each tool's published routing algorithm in
//! Rust behind the common [`qlosure::Mapper`] interface:
//!
//! * [`SabreMapper`] — Li, Ding & Xie (ASPLOS'19) / LightSABRE: front +
//!   extended-set heuristic with qubit decay;
//! * [`QmapMapper`] — Zulehner, Paler & Wille (DATE'18), the heuristic in
//!   MQT QMAP: per-layer A* search over SWAP sequences;
//! * [`CirqMapper`] — Cirq's greedy time-sliced router: per-slice distance
//!   minimization with one-slice look-ahead;
//! * [`TketMapper`] — tket's LexiRoute-style router (Cowtan et al.,
//!   TQC'19): lexicographic comparison of per-slice distance vectors.
//!
//! Every mapper's output is validated by [`circuit::verify_routing`] in
//! this crate's tests (and continuously by the workspace integration
//! tests). Absolute gate counts differ from the original tools — the
//! evaluation compares relative behaviour, which is what the paper's
//! tables measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cirq_greedy;
mod common;
mod qmap;
mod sabre;
mod tket_route;

pub use cirq_greedy::CirqMapper;
pub use qmap::QmapMapper;
pub use sabre::SabreMapper;
pub use tket_route::TketMapper;

use qlosure::Mapper;

/// All four baselines, boxed behind the common interface (handy for the
/// evaluation harness).
pub fn all_baselines() -> Vec<Box<dyn Mapper + Send + Sync>> {
    vec![
        Box::new(SabreMapper::default()),
        Box::new(QmapMapper::default()),
        Box::new(CirqMapper::default()),
        Box::new(TketMapper::default()),
    ]
}
