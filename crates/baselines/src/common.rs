//! Shared routing-loop plumbing for the baseline mappers.

use circuit::{Circuit, DependenceGraph, Gate};
use qlosure::{Layout, MappingResult};
use topology::{CouplingGraph, DistanceMatrix};

/// Mutable state of a swap-until-free routing loop, shared by the SABRE,
/// Cirq and tket baselines (QMAP layers its own search on top).
pub(crate) struct RouterState<'a> {
    pub circuit: &'a Circuit,
    pub device: &'a CouplingGraph,
    pub dist: &'a DistanceMatrix,
    pub dag: DependenceGraph,
    pub indeg: Vec<u32>,
    pub front: Vec<u32>,
    pub layout: Layout,
    pub routed: Circuit,
    pub initial_layout: Vec<u32>,
    pub swaps: usize,
}

impl<'a> RouterState<'a> {
    pub fn new(
        circuit: &'a Circuit,
        device: &'a CouplingGraph,
        dist: &'a DistanceMatrix,
        layout: Layout,
    ) -> Self {
        assert!(
            circuit.n_qubits() <= device.n_qubits(),
            "circuit does not fit the device"
        );
        let dag = DependenceGraph::new(circuit);
        let indeg = dag.in_degrees();
        let front = dag.initial_front();
        let initial_layout = layout.as_assignment().to_vec();
        RouterState {
            circuit,
            device,
            dist,
            dag,
            indeg,
            front,
            layout,
            routed: Circuit::with_capacity(device.n_qubits(), circuit.gates().len()),
            initial_layout,
            swaps: 0,
        }
    }

    /// Whether gate `g` is executable under the current layout.
    pub fn executable(&self, g: u32) -> bool {
        match self.circuit.gates()[g as usize].qubit_pair() {
            Some((a, b)) => self
                .device
                .is_adjacent(self.layout.phys(a), self.layout.phys(b)),
            None => true,
        }
    }

    /// Executes every currently executable front gate (cascading), emitting
    /// them into the routed circuit. Returns how many gates ran.
    pub fn execute_ready(&mut self) -> usize {
        let mut ran = 0;
        loop {
            let mut ready: Vec<u32> = self
                .front
                .iter()
                .copied()
                .filter(|&g| self.executable(g))
                .collect();
            if ready.is_empty() {
                return ran;
            }
            ready.sort_unstable();
            for &g in &ready {
                let gate = &self.circuit.gates()[g as usize];
                let mapped = Gate {
                    kind: gate.kind.clone(),
                    qubits: gate.qubits.iter().map(|&q| self.layout.phys(q)).collect(),
                    params: gate.params.clone(),
                };
                self.routed.push(mapped);
                ran += 1;
            }
            self.front.retain(|g| !ready.contains(g));
            for &g in &ready {
                for &s in self.dag.succs(g) {
                    self.indeg[s as usize] -= 1;
                    if self.indeg[s as usize] == 0 {
                        self.front.push(s);
                    }
                }
            }
        }
    }

    /// Emits a SWAP and updates the layout.
    pub fn apply_swap(&mut self, p1: u32, p2: u32) {
        debug_assert!(self.device.is_adjacent(p1, p2), "swap on uncoupled pair");
        self.routed.swap(p1, p2);
        self.layout.apply_swap(p1, p2);
        self.swaps += 1;
    }

    /// The blocked two-qubit gates of the front layer.
    pub fn blocked_front(&self) -> Vec<u32> {
        self.front
            .iter()
            .copied()
            .filter(|&g| self.circuit.gates()[g as usize].is_two_qubit())
            .collect()
    }

    /// Physical qubits hosting operands of blocked front gates.
    pub fn front_physicals(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .blocked_front()
            .iter()
            .filter_map(|&g| self.circuit.gates()[g as usize].qubit_pair())
            .flat_map(|(a, b)| [self.layout.phys(a), self.layout.phys(b)])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate SWAP edges incident to the blocked front (deduplicated).
    pub fn swap_candidates(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for p1 in self.front_physicals() {
            for &p2 in self.device.neighbors(p1) {
                let pair = (p1.min(p2), p1.max(p2));
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
        }
        out
    }

    /// Sum of current physical distances of the given gates.
    pub fn distance_sum(&self, gates: &[u32]) -> f64 {
        gates
            .iter()
            .filter_map(|&g| self.circuit.gates()[g as usize].qubit_pair())
            .map(|(a, b)| self.dist.get(self.layout.phys(a), self.layout.phys(b)) as f64)
            .sum()
    }

    /// The next `limit` upcoming two-qubit gates beyond the front, in
    /// topological (program) order.
    pub fn lookahead(&self, limit: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(limit);
        let mut visited = vec![false; self.dag.n_gates()];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::new();
        for &g in &self.front {
            visited[g as usize] = true;
            heap.push(std::cmp::Reverse(g));
        }
        while let Some(std::cmp::Reverse(g)) = heap.pop() {
            let in_front = self.indeg[g as usize] == 0;
            if !in_front && self.circuit.gates()[g as usize].is_two_qubit() {
                out.push(g);
                if out.len() >= limit {
                    break;
                }
            }
            for &s in self.dag.succs(g) {
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    heap.push(std::cmp::Reverse(s));
                }
            }
        }
        out
    }

    /// Routes the front gate `g` directly along a shortest path (forced
    /// progress for heuristics that stall).
    pub fn force_route(&mut self, g: u32) {
        let (a, b) = self.circuit.gates()[g as usize]
            .qubit_pair()
            .expect("blocked gates are two-qubit");
        let (pa, pb) = (self.layout.phys(a), self.layout.phys(b));
        let path = self.device.shortest_path(pa, pb).expect("connected device");
        for win in path.windows(2).take(path.len().saturating_sub(2)) {
            self.apply_swap(win[0], win[1]);
        }
    }

    /// Finishes the loop, producing the result.
    pub fn into_result(self) -> MappingResult {
        debug_assert!(self.front.is_empty(), "routing ended with pending gates");
        MappingResult {
            routed: self.routed,
            final_layout: self.layout.as_assignment().to_vec(),
            initial_layout: self.initial_layout,
            swaps: self.swaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::backends;

    #[test]
    fn execute_ready_cascades_through_single_qubit_gates() {
        let device = backends::line(3);
        let dist = device.distances();
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.h(1);
        c.cx(1, 2);
        let layout = Layout::identity(3, 3);
        let mut st = RouterState::new(&c, &device, &dist, layout);
        let ran = st.execute_ready();
        assert_eq!(ran, 4);
        assert!(st.front.is_empty());
        assert_eq!(st.routed.qop_count(), 4);
    }

    #[test]
    fn blocked_front_and_candidates() {
        let device = backends::line(4);
        let dist = device.distances();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let mut st = RouterState::new(&c, &device, &dist, Layout::identity(4, 4));
        assert_eq!(st.execute_ready(), 0);
        assert_eq!(st.blocked_front(), vec![0]);
        assert_eq!(st.front_physicals(), vec![0, 3]);
        let cands = st.swap_candidates();
        assert!(cands.contains(&(0, 1)) && cands.contains(&(2, 3)));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn force_route_unblocks() {
        let device = backends::line(5);
        let dist = device.distances();
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let mut st = RouterState::new(&c, &device, &dist, Layout::identity(5, 5));
        st.execute_ready();
        st.force_route(0);
        assert_eq!(st.execute_ready(), 1);
        assert!(st.front.is_empty());
        assert_eq!(st.swaps, 3);
    }

    #[test]
    fn lookahead_respects_topological_order() {
        let device = backends::line(6);
        let dist = device.distances();
        let mut c = Circuit::new(6);
        c.cx(0, 5); // blocked
        c.cx(5, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let mut st = RouterState::new(&c, &device, &dist, Layout::identity(6, 6));
        st.execute_ready();
        let la = st.lookahead(2);
        assert_eq!(la, vec![1, 2]);
    }
}
