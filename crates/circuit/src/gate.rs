//! Gate kinds and gate instances.

use std::fmt;

/// The gate vocabulary of the OpenQASM 2.0 `qelib1.inc` library (plus
/// `measure`/`reset`/`barrier` pseudo-gates and a `Custom` escape hatch).
///
/// Only the *shape* of a gate (its qubit count) matters to routing; the
/// enum keeps names and parameters so circuits round-trip through QASM.
#[derive(Clone, Debug, PartialEq)]
pub enum GateKind {
    // --- single-qubit ---
    /// Identity.
    Id,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S.
    S,
    /// S-dagger.
    Sdg,
    /// T gate.
    T,
    /// T-dagger.
    Tdg,
    /// √X.
    Sx,
    /// √X dagger.
    Sxdg,
    /// X-rotation (1 parameter).
    Rx,
    /// Y-rotation (1 parameter).
    Ry,
    /// Z-rotation (1 parameter).
    Rz,
    /// Phase gate `u1`/`p` (1 parameter).
    U1,
    /// `u2` (2 parameters).
    U2,
    /// Generic single-qubit unitary `u3`/`u` (3 parameters).
    U3,
    // --- two-qubit ---
    /// Controlled-NOT.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled-Y.
    Cy,
    /// Controlled-H.
    Ch,
    /// SWAP (the routing-inserted gate).
    Swap,
    /// Controlled X-rotation (1 parameter).
    Crx,
    /// Controlled Y-rotation (1 parameter).
    Cry,
    /// Controlled Z-rotation (1 parameter).
    Crz,
    /// Controlled phase `cu1`/`cp` (1 parameter).
    Cu1,
    /// Controlled `u3` (3 parameters).
    Cu3,
    /// ZZ interaction (1 parameter).
    Rzz,
    /// XX interaction (1 parameter).
    Rxx,
    /// YY interaction (1 parameter).
    Ryy,
    /// Controlled √X.
    Csx,
    // --- pseudo-gates ---
    /// Measurement (`measure q -> c`): records the classical bit index.
    Measure,
    /// Reset to |0⟩.
    Reset,
    /// Barrier (ordering only; contributes no depth).
    Barrier,
    /// A named gate outside the built-in vocabulary.
    Custom(Box<str>),
}

impl GateKind {
    /// The QASM spelling of the gate.
    pub fn name(&self) -> &str {
        match self {
            GateKind::Id => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Sx => "sx",
            GateKind::Sxdg => "sxdg",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::U1 => "u1",
            GateKind::U2 => "u2",
            GateKind::U3 => "u3",
            GateKind::Cx => "cx",
            GateKind::Cz => "cz",
            GateKind::Cy => "cy",
            GateKind::Ch => "ch",
            GateKind::Swap => "swap",
            GateKind::Crx => "crx",
            GateKind::Cry => "cry",
            GateKind::Crz => "crz",
            GateKind::Cu1 => "cu1",
            GateKind::Cu3 => "cu3",
            GateKind::Rzz => "rzz",
            GateKind::Rxx => "rxx",
            GateKind::Ryy => "ryy",
            GateKind::Csx => "csx",
            GateKind::Measure => "measure",
            GateKind::Reset => "reset",
            GateKind::Barrier => "barrier",
            GateKind::Custom(name) => name,
        }
    }

    /// Parses a QASM gate name into a kind (`measure`/`reset`/`barrier`
    /// excluded — they have dedicated instruction forms).
    pub fn from_name(name: &str) -> GateKind {
        match name {
            "id" => GateKind::Id,
            "x" => GateKind::X,
            "y" => GateKind::Y,
            "z" => GateKind::Z,
            "h" => GateKind::H,
            "s" => GateKind::S,
            "sdg" => GateKind::Sdg,
            "t" => GateKind::T,
            "tdg" => GateKind::Tdg,
            "sx" => GateKind::Sx,
            "sxdg" => GateKind::Sxdg,
            "rx" => GateKind::Rx,
            "ry" => GateKind::Ry,
            "rz" => GateKind::Rz,
            "u1" | "p" => GateKind::U1,
            "u2" => GateKind::U2,
            "u3" | "u" | "U" => GateKind::U3,
            "cx" | "CX" => GateKind::Cx,
            "cz" => GateKind::Cz,
            "cy" => GateKind::Cy,
            "ch" => GateKind::Ch,
            "swap" => GateKind::Swap,
            "crx" => GateKind::Crx,
            "cry" => GateKind::Cry,
            "crz" => GateKind::Crz,
            "cu1" | "cp" => GateKind::Cu1,
            "cu3" => GateKind::Cu3,
            "rzz" => GateKind::Rzz,
            "rxx" => GateKind::Rxx,
            "ryy" => GateKind::Ryy,
            "csx" => GateKind::Csx,
            other => GateKind::Custom(other.into()),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: kind, qubit operands and parameters.
///
/// Operands are flat qubit indices (logical before mapping, physical
/// after). Barriers may have any number of operands; every other kind has
/// one or two.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// What gate this is.
    pub kind: GateKind,
    /// Operand qubits.
    pub qubits: Vec<u32>,
    /// Parameter values (angles).
    pub params: Vec<f64>,
}

impl Gate {
    /// A parameter-free single-qubit gate.
    pub fn one_q(kind: GateKind, q: u32) -> Self {
        Gate {
            kind,
            qubits: vec![q],
            params: Vec::new(),
        }
    }

    /// A parameter-free two-qubit gate.
    pub fn two_q(kind: GateKind, a: u32, b: u32) -> Self {
        assert_ne!(a, b, "two-qubit gate with duplicate operand {a}");
        Gate {
            kind,
            qubits: vec![a, b],
            params: Vec::new(),
        }
    }

    /// Whether this gate constrains routing (acts on exactly two qubits and
    /// is not a pseudo-gate).
    pub fn is_two_qubit(&self) -> bool {
        self.qubits.len() == 2 && !matches!(self.kind, GateKind::Barrier)
    }

    /// The operand pair of a two-qubit gate.
    pub fn qubit_pair(&self) -> Option<(u32, u32)> {
        self.is_two_qubit()
            .then(|| (self.qubits[0], self.qubits[1]))
    }

    /// Whether the gate participates in depth/gate-count statistics
    /// (everything except barriers).
    pub fn is_scheduled(&self) -> bool {
        !matches!(self.kind, GateKind::Barrier)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.params.is_empty() {
            let ps: Vec<String> = self.params.iter().map(|p| format!("{p}")).collect();
            write!(f, "({})", ps.join(", "))?;
        }
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, " {}", qs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for kind in [
            GateKind::H,
            GateKind::Cx,
            GateKind::Swap,
            GateKind::Rz,
            GateKind::Cu1,
            GateKind::Rzz,
        ] {
            assert_eq!(GateKind::from_name(kind.name()), kind);
        }
        assert_eq!(
            GateKind::from_name("mystery"),
            GateKind::Custom("mystery".into())
        );
    }

    #[test]
    fn two_qubit_classification() {
        assert!(Gate::two_q(GateKind::Cx, 0, 1).is_two_qubit());
        assert!(!Gate::one_q(GateKind::H, 0).is_two_qubit());
        let barrier = Gate {
            kind: GateKind::Barrier,
            qubits: vec![0, 1],
            params: vec![],
        };
        assert!(!barrier.is_two_qubit());
        assert!(!barrier.is_scheduled());
    }

    #[test]
    #[should_panic(expected = "duplicate operand")]
    fn rejects_duplicate_operands() {
        let _ = Gate::two_q(GateKind::Cx, 3, 3);
    }

    #[test]
    fn display_format() {
        let g = Gate {
            kind: GateKind::Rz,
            qubits: vec![4],
            params: vec![0.5],
        };
        assert_eq!(g.to_string(), "rz(0.5) q[4]");
        assert_eq!(Gate::two_q(GateKind::Cx, 0, 2).to_string(), "cx q[0], q[2]");
    }
}
