//! Quantum circuit intermediate representation for the Qlosure qubit mapper.
//!
//! This crate is the common substrate every mapper in the workspace works
//! on:
//!
//! * [`Gate`] / [`Circuit`] — a flat, cache-friendly gate list with the
//!   statistics the paper reports (depth, two-qubit gate count, QOPs);
//! * [`DependenceGraph`] — the per-gate dependence DAG (consecutive uses of
//!   a qubit), front-layer iteration, dependence-distance layering and the
//!   transitive-successor counts `ω` of the paper's Eq. (1), computed with
//!   memory-bounded bitset reachability;
//! * [`verify_routing`] — an independent checker that a routed circuit (a)
//!   only applies two-qubit gates to coupled physical qubits and (b) is
//!   equivalent to the original circuit modulo the SWAP-induced
//!   permutation. Every mapper in the workspace is validated against it.
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, DependenceGraph};
//!
//! let mut c = Circuit::new(3);
//! c.h(0);
//! c.cx(0, 1);
//! c.cx(1, 2);
//! assert_eq!(c.depth(), 3);
//! let dag = DependenceGraph::new(&c);
//! assert_eq!(dag.transitive_successor_counts(), vec![2, 1, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dag;
mod gate;
mod verify;

pub use crate::circuit::{Circuit, ConvertError, DepthModel};
pub use dag::DependenceGraph;
pub use gate::{Gate, GateKind};
pub use verify::{verify_routing, VerifyError};
