//! Independent verification of routed circuits.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use std::fmt;

/// Why a routed circuit failed verification.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// A two-qubit gate (or SWAP) acts on physical qubits that are not
    /// coupled on the device.
    Disconnected {
        /// Index of the offending gate in the routed circuit.
        gate: usize,
        /// The physical operand pair.
        pair: (u32, u32),
    },
    /// The initial layout is not a permutation of the physical qubits.
    BadLayout(String),
    /// After un-permuting, the logical gate stream does not match the
    /// original circuit.
    Mismatch(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Disconnected { gate, pair } => write!(
                f,
                "gate #{gate} acts on uncoupled physical qubits ({}, {})",
                pair.0, pair.1
            ),
            VerifyError::BadLayout(m) => write!(f, "bad initial layout: {m}"),
            VerifyError::Mismatch(m) => write!(f, "logical mismatch: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `routed` is a hardware-valid implementation of `original`.
///
/// * `adjacent(p, q)` must say whether physical qubits are coupled;
/// * `initial_layout[logical]` gives the physical qubit each logical qubit
///   starts on (an injection into the device's qubits).
///
/// Verification walks the routed circuit, tracking the evolving
/// physical→logical permutation through SWAPs, and checks
///
/// 1. every two-qubit gate and SWAP touches coupled physical qubits, and
/// 2. per logical qubit, the sequence of (gate kind, parameters, partner
///    logical qubit, operand role) is exactly the original's — i.e. the
///    routed circuit equals the original modulo SWAP-induced permutation
///    and reordering of commuting (disjoint) gates.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_routing(
    original: &Circuit,
    routed: &Circuit,
    adjacent: &dyn Fn(u32, u32) -> bool,
    initial_layout: &[u32],
) -> Result<(), VerifyError> {
    let n_logical = original.n_qubits();
    let n_physical = routed.n_qubits();
    if initial_layout.len() != n_logical {
        return Err(VerifyError::BadLayout(format!(
            "layout has {} entries for {} logical qubits",
            initial_layout.len(),
            n_logical
        )));
    }
    let mut phys_to_logical: Vec<Option<u32>> = vec![None; n_physical];
    for (l, &p) in initial_layout.iter().enumerate() {
        let slot = phys_to_logical
            .get_mut(p as usize)
            .ok_or_else(|| VerifyError::BadLayout(format!("physical {p} out of range")))?;
        if slot.is_some() {
            return Err(VerifyError::BadLayout(format!(
                "physical {p} assigned twice"
            )));
        }
        *slot = Some(l as u32);
    }
    // Per-logical-qubit event streams for the original ...
    let mut expected: Vec<Vec<Event>> = vec![Vec::new(); n_logical];
    for g in original.gates() {
        record_events(&mut expected, g, |q| q);
    }
    // ... and for the routed circuit, un-permuting through SWAPs.
    let mut actual: Vec<Vec<Event>> = vec![Vec::new(); n_logical];
    for (i, g) in routed.gates().iter().enumerate() {
        if g.kind == GateKind::Swap {
            let (a, b) = g.qubit_pair().expect("swap is two-qubit");
            if !adjacent(a, b) {
                return Err(VerifyError::Disconnected {
                    gate: i,
                    pair: (a, b),
                });
            }
            phys_to_logical.swap(a as usize, b as usize);
            continue;
        }
        if let Some((a, b)) = g.qubit_pair() {
            if !adjacent(a, b) {
                return Err(VerifyError::Disconnected {
                    gate: i,
                    pair: (a, b),
                });
            }
        }
        // Translate operands to logical space.
        let mut ok = true;
        for &p in &g.qubits {
            if phys_to_logical.get(p as usize).copied().flatten().is_none() {
                ok = false;
            }
        }
        if !ok {
            return Err(VerifyError::Mismatch(format!(
                "gate #{i} ({}) touches a physical qubit holding no logical state",
                g.kind
            )));
        }
        record_events(&mut actual, g, |p| {
            phys_to_logical[p as usize].expect("checked above")
        });
    }
    for l in 0..n_logical {
        if expected[l] != actual[l] {
            let (e, a) = (&expected[l], &actual[l]);
            let at = e.iter().zip(a.iter()).position(|(x, y)| x != y);
            return Err(VerifyError::Mismatch(format!(
                "logical qubit {l}: expected {} events, saw {} (first divergence at {:?})",
                e.len(),
                a.len(),
                at
            )));
        }
    }
    Ok(())
}

/// One gate occurrence from a single qubit's point of view.
#[derive(Clone, Debug, PartialEq)]
struct Event {
    kind: GateKind,
    /// Parameters, bit-exact.
    params: Vec<u64>,
    /// This qubit's operand position.
    role: usize,
    /// The other logical operands in order.
    partners: Vec<u32>,
}

fn record_events(
    streams: &mut [Vec<Event>],
    gate: &crate::gate::Gate,
    to_logical: impl Fn(u32) -> u32,
) {
    if gate.kind == GateKind::Barrier {
        // Barriers are scheduling hints; they do not affect equivalence.
        return;
    }
    let logical: Vec<u32> = gate.qubits.iter().map(|&q| to_logical(q)).collect();
    for (role, &l) in logical.iter().enumerate() {
        let partners: Vec<u32> = logical
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != role)
            .map(|(_, &x)| x)
            .collect();
        streams[l as usize].push(Event {
            kind: gate.kind.clone(),
            params: gate.params.iter().map(|p| p.to_bits()).collect(),
            role,
            partners,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line topology 0-1-2-3.
    fn line_adjacent(a: u32, b: u32) -> bool {
        a.abs_diff(b) == 1
    }

    fn identity_layout(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn accepts_faithful_routing() {
        // Original: cx(0, 2) on a line needs routing.
        let mut original = Circuit::new(3);
        original.h(0);
        original.cx(0, 2);
        // Routed: swap(1,2) brings logical 2 next to logical 0 at physical 1.
        let mut routed = Circuit::new(3);
        routed.h(0);
        routed.swap(1, 2);
        routed.cx(0, 1);
        verify_routing(&original, &routed, &line_adjacent, &identity_layout(3))
            .expect("valid routing");
    }

    #[test]
    fn rejects_disconnected_gate() {
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let mut routed = Circuit::new(3);
        routed.cx(0, 2); // not adjacent on the line
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(3)).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::Disconnected { pair: (0, 2), .. }
        ));
    }

    #[test]
    fn rejects_wrong_logical_gate() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(2);
        routed.cx(1, 0); // control/target flipped
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(2)).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch(_)));
    }

    #[test]
    fn rejects_dropped_gate() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        original.h(0);
        let mut routed = Circuit::new(2);
        routed.cx(0, 1);
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(2)).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch(_)));
    }

    #[test]
    fn accepts_commuting_reorder() {
        // Disjoint gates may be reordered freely.
        let mut original = Circuit::new(4);
        original.cx(0, 1);
        original.cx(2, 3);
        let mut routed = Circuit::new(4);
        routed.cx(2, 3);
        routed.cx(0, 1);
        verify_routing(&original, &routed, &line_adjacent, &identity_layout(4))
            .expect("commuting reorder is fine");
    }

    #[test]
    fn rejects_reordered_dependent_gates() {
        let mut original = Circuit::new(3);
        original.cx(0, 1);
        original.cx(1, 2);
        let mut routed = Circuit::new(3);
        routed.cx(1, 2);
        routed.cx(0, 1);
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(3)).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch(_)));
    }

    #[test]
    fn tracks_permutation_through_swap_chains() {
        // Move logical 0 all the way to physical 3 and interact there.
        let mut original = Circuit::new(4);
        original.cx(0, 3);
        original.x(0);
        let mut routed = Circuit::new(4);
        routed.swap(0, 1);
        routed.swap(1, 2);
        routed.cx(2, 3);
        routed.x(2); // logical 0 now lives on physical 2
        verify_routing(&original, &routed, &line_adjacent, &identity_layout(4))
            .expect("valid swap chain");
    }

    #[test]
    fn respects_nontrivial_initial_layout() {
        // logical 0 -> physical 2, logical 1 -> physical 1.
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(3);
        routed.cx(2, 1);
        verify_routing(&original, &routed, &line_adjacent, &[2, 1]).expect("layout respected");
    }

    #[test]
    fn rejects_duplicate_layout() {
        let original = Circuit::new(2);
        let routed = Circuit::new(2);
        let err = verify_routing(&original, &routed, &line_adjacent, &[0, 0]).unwrap_err();
        assert!(matches!(err, VerifyError::BadLayout(_)));
    }

    #[test]
    fn rejects_disconnected_swap() {
        let mut original = Circuit::new(3);
        original.cx(0, 1);
        let mut routed = Circuit::new(3);
        routed.swap(0, 2); // not adjacent
        routed.cx(2, 1);
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(3)).unwrap_err();
        assert!(matches!(err, VerifyError::Disconnected { .. }));
    }

    #[test]
    fn rejects_untracked_swap_permutation() {
        // The routing "forgets" that its own SWAP moved logical 0 to
        // physical 1: the following CX implements cx(1, 0), not cx(0, 1).
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(2);
        routed.swap(0, 1);
        routed.cx(0, 1);
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(2)).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch(_)));
    }

    #[test]
    fn rejects_duplicated_gate() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(2);
        routed.cx(0, 1);
        routed.cx(0, 1); // executed twice
        let err =
            verify_routing(&original, &routed, &line_adjacent, &identity_layout(2)).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch(_)));
    }

    #[test]
    fn rejects_non_permutation_layout() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(2);
        routed.cx(0, 1);
        // Both logical qubits claim physical 0.
        let err = verify_routing(&original, &routed, &line_adjacent, &[0, 0]).unwrap_err();
        assert!(matches!(err, VerifyError::BadLayout(_)));
    }

    #[test]
    fn rejects_out_of_range_layout() {
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut routed = Circuit::new(2);
        routed.cx(0, 1);
        let err = verify_routing(&original, &routed, &line_adjacent, &[0, 7]).unwrap_err();
        assert!(matches!(err, VerifyError::BadLayout(_)));
    }
}
