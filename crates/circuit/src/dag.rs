//! The per-gate dependence DAG and transitive-successor counts.

use crate::circuit::Circuit;

/// The dependence graph of a circuit: one node per gate, one edge for each
/// pair of *consecutive* uses of a qubit (the covering relation of the
/// paper's `Rdep`; both have the same transitive closure, which is what the
/// ω weights are computed from).
///
/// Gate indices refer to positions in [`Circuit::gates`]; program order is
/// a topological order of this DAG by construction.
#[derive(Clone, Debug)]
pub struct DependenceGraph {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
}

impl DependenceGraph {
    /// Builds the dependence DAG of `circuit`.
    ///
    /// Barriers participate as ordering nodes (they sequence their operand
    /// qubits) even though they are never routed.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.gates().len();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut last_use: Vec<Option<u32>> = vec![None; circuit.n_qubits()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            let i = i as u32;
            for &q in &gate.qubits {
                if let Some(prev) = last_use[q as usize] {
                    if !preds[i as usize].contains(&prev) {
                        preds[i as usize].push(prev);
                        succs[prev as usize].push(i);
                    }
                }
                last_use[q as usize] = Some(i);
            }
        }
        DependenceGraph { preds, succs }
    }

    /// Number of nodes (gates).
    pub fn n_gates(&self) -> usize {
        self.preds.len()
    }

    /// Immediate predecessors of gate `g`.
    pub fn preds(&self, g: u32) -> &[u32] {
        &self.preds[g as usize]
    }

    /// Immediate successors of gate `g`.
    pub fn succs(&self, g: u32) -> &[u32] {
        &self.succs[g as usize]
    }

    /// In-degree of every gate (predecessor count).
    pub fn in_degrees(&self) -> Vec<u32> {
        self.preds.iter().map(|p| p.len() as u32).collect()
    }

    /// Gates with no predecessors — the initial front layer `Lf`.
    pub fn initial_front(&self) -> Vec<u32> {
        (0..self.n_gates() as u32)
            .filter(|&g| self.preds[g as usize].is_empty())
            .collect()
    }

    /// ASAP level of every gate (longest path from any source, sources at
    /// level 0).
    pub fn levels(&self) -> Vec<u32> {
        let n = self.n_gates();
        let mut level = vec![0u32; n];
        for g in 0..n {
            for &p in &self.preds[g] {
                level[g] = level[g].max(level[p as usize] + 1);
            }
        }
        level
    }

    /// The number of transitive successors of every gate — the paper's
    /// dependence weight `ω(g) = card{ h : (g, h) ∈ R⁺ }` (Eq. 1).
    ///
    /// Computed by bitset reachability over the reverse topological order,
    /// processed in column blocks so memory stays `O(n · block)` instead of
    /// `O(n²)` bits.
    pub fn transitive_successor_counts(&self) -> Vec<u64> {
        const BLOCK_BITS: usize = 8192;
        const WORDS: usize = BLOCK_BITS / 64;
        let n = self.n_gates();
        let mut counts = vec![0u64; n];
        if n == 0 {
            return counts;
        }
        let mut rows: Vec<[u64; WORDS]> = Vec::new();
        for block_start in (0..n).step_by(BLOCK_BITS) {
            let block_end = (block_start + BLOCK_BITS).min(n);
            rows.clear();
            rows.resize(n, [0u64; WORDS]);
            for g in (0..n).rev() {
                // Union the successor rows, then set the successor bits
                // that fall inside the current column block.
                // Work around simultaneous borrow with a split copy.
                let mut acc = [0u64; WORDS];
                for &s in &self.succs[g] {
                    let s = s as usize;
                    let row = &rows[s];
                    for w in 0..WORDS {
                        acc[w] |= row[w];
                    }
                    if (block_start..block_end).contains(&s) {
                        let bit = s - block_start;
                        acc[bit / 64] |= 1u64 << (bit % 64);
                    }
                }
                counts[g] += acc.iter().map(|w| w.count_ones() as u64).sum::<u64>();
                rows[g] = acc;
            }
        }
        counts
    }

    /// Full reachability row of gate `g` as a sorted list of gate indices
    /// (exact but `O(n)` memory per call; intended for tests and small
    /// circuits).
    pub fn reachable_from(&self, g: u32) -> Vec<u32> {
        let n = self.n_gates();
        let mut seen = vec![false; n];
        let mut stack = vec![g];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            for &s in &self.succs[cur as usize] {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    out.push(s);
                    stack.push(s);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1); // g0
        c.cx(2, 3); // g1 (independent)
        c.cx(1, 2); // g2 (depends on g0 via q1, g1 via q2)
        c.cx(3, 0); // g3 (depends on g1 via q3, g0 via q0 — and g2 transitively? no: direct preds)
        c
    }

    #[test]
    fn edges_follow_consecutive_qubit_use() {
        let c = chain_circuit();
        let dag = DependenceGraph::new(&c);
        assert_eq!(dag.preds(0), &[] as &[u32]);
        assert_eq!(dag.preds(1), &[] as &[u32]);
        assert_eq!(dag.preds(2), &[0, 1]);
        assert_eq!(dag.preds(3), &[1, 0]);
        assert_eq!(dag.initial_front(), vec![0, 1]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(1, 0); // shares both qubits with the previous gate
        let dag = DependenceGraph::new(&c);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn levels_are_longest_paths() {
        let c = chain_circuit();
        let dag = DependenceGraph::new(&c);
        assert_eq!(dag.levels(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn transitive_counts_match_reachability() {
        let c = chain_circuit();
        let dag = DependenceGraph::new(&c);
        let counts = dag.transitive_successor_counts();
        for g in 0..dag.n_gates() as u32 {
            assert_eq!(
                counts[g as usize],
                dag.reachable_from(g).len() as u64,
                "gate {g}"
            );
        }
        assert_eq!(counts, vec![2, 2, 0, 0]);
    }

    #[test]
    fn barrier_orders_qubits() {
        let mut c = Circuit::new(2);
        c.h(0); // g0
        c.barrier(&[0, 1]); // g1
        c.h(1); // g2: depends on the barrier, hence transitively on h(0)
        let dag = DependenceGraph::new(&c);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.reachable_from(0), vec![1, 2]);
    }

    #[test]
    fn counts_on_larger_random_like_circuit_cross_check() {
        // Deterministic pseudo-random circuit, cross-checked against the
        // O(n) per-gate reachability.
        let mut c = Circuit::new(8);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let a = (next() % 8) as u32;
            let b = (next() % 8) as u32;
            if a != b {
                c.cx(a, b);
            } else {
                c.h(a);
            }
        }
        let dag = DependenceGraph::new(&c);
        let counts = dag.transitive_successor_counts();
        for g in (0..dag.n_gates() as u32).step_by(17) {
            assert_eq!(counts[g as usize], dag.reachable_from(g).len() as u64);
        }
    }

    #[test]
    fn measure_and_reset_participate() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        c.reset(0);
        let dag = DependenceGraph::new(&c);
        assert_eq!(dag.succs(0), &[1]);
        assert_eq!(dag.succs(1), &[2]);
        assert_eq!(c.gates()[1].kind, GateKind::Measure);
    }
}
