//! The [`Circuit`] container and its statistics.

use crate::gate::{Gate, GateKind};
use std::fmt;

/// How SWAP gates are charged when computing depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DepthModel {
    /// Every scheduled gate (including SWAP) occupies one cycle — the
    /// convention of Qiskit's `depth()` and of the paper's tables.
    #[default]
    UnitGates,
    /// A SWAP is charged as its 3-CX decomposition.
    DecomposedSwap,
}

/// Errors raised when converting a QASM program into a [`Circuit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvertError {
    /// A gate acts on more than two qubits and no decomposition is known.
    UnsupportedGate {
        /// The gate's QASM name.
        name: String,
        /// Its operand count.
        arity: usize,
    },
    /// A qubit reference did not resolve to a declared register element.
    BadQubitRef(String),
    /// User-defined gate expansion failed.
    Expansion(String),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::UnsupportedGate { name, arity } => {
                write!(f, "unsupported {arity}-qubit gate `{name}`")
            }
            ConvertError::BadQubitRef(r) => write!(f, "unresolved qubit reference {r}"),
            ConvertError::Expansion(m) => write!(f, "gate expansion failed: {m}"),
        }
    }
}

impl std::error::Error for ConvertError {}

/// A flat quantum circuit: a number of qubits plus an ordered gate list.
///
/// Gate operands are indices in `0..n_qubits`. Before mapping they denote
/// logical qubits; mappers produce circuits whose operands denote physical
/// qubits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// An empty circuit with a pre-allocated gate buffer.
    pub fn with_capacity(n_qubits: usize, gates: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::with_capacity(gates),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn push(&mut self, gate: Gate) {
        for &q in &gate.qubits {
            assert!(
                (q as usize) < self.n_qubits,
                "qubit {q} out of range {}",
                self.n_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Extends the circuit with the gates of `other` (same qubit count).
    pub fn extend_from(&mut self, other: &Circuit) {
        assert_eq!(self.n_qubits, other.n_qubits);
        self.gates.extend(other.gates.iter().cloned());
    }

    /// Truncates the gate list to its first `len` gates (no-op when the
    /// circuit is already that short). Backs the undo deltas of routing
    /// state: appended gates are rolled back by truncating to the
    /// remembered length.
    pub fn truncate(&mut self, len: usize) {
        self.gates.truncate(len);
    }

    // --- gate builders (fluent, panic on out-of-range operands) ---

    /// Hadamard.
    pub fn h(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::H, q));
    }

    /// Pauli-X.
    pub fn x(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::X, q));
    }

    /// Pauli-Y.
    pub fn y(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Y, q));
    }

    /// Pauli-Z.
    pub fn z(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Z, q));
    }

    /// S gate.
    pub fn s(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::S, q));
    }

    /// S† gate.
    pub fn sdg(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Sdg, q));
    }

    /// T gate.
    pub fn t(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::T, q));
    }

    /// T† gate.
    pub fn tdg(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Tdg, q));
    }

    /// √X gate.
    pub fn sx(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Sx, q));
    }

    /// X-rotation.
    pub fn rx(&mut self, theta: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::Rx,
            qubits: vec![q],
            params: vec![theta],
        });
    }

    /// Y-rotation.
    pub fn ry(&mut self, theta: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::Ry,
            qubits: vec![q],
            params: vec![theta],
        });
    }

    /// Z-rotation.
    pub fn rz(&mut self, theta: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::Rz,
            qubits: vec![q],
            params: vec![theta],
        });
    }

    /// Phase gate `u1`.
    pub fn u1(&mut self, lambda: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::U1,
            qubits: vec![q],
            params: vec![lambda],
        });
    }

    /// `u2` gate.
    pub fn u2(&mut self, phi: f64, lambda: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::U2,
            qubits: vec![q],
            params: vec![phi, lambda],
        });
    }

    /// Generic single-qubit unitary `u3`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: u32) {
        self.push(Gate {
            kind: GateKind::U3,
            qubits: vec![q],
            params: vec![theta, phi, lambda],
        });
    }

    /// Controlled-NOT.
    pub fn cx(&mut self, control: u32, target: u32) {
        self.push(Gate::two_q(GateKind::Cx, control, target));
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: u32, b: u32) {
        self.push(Gate::two_q(GateKind::Cz, a, b));
    }

    /// SWAP gate.
    pub fn swap(&mut self, a: u32, b: u32) {
        self.push(Gate::two_q(GateKind::Swap, a, b));
    }

    /// Controlled phase.
    pub fn cu1(&mut self, lambda: f64, a: u32, b: u32) {
        self.push(Gate {
            kind: GateKind::Cu1,
            qubits: vec![a, b],
            params: vec![lambda],
        });
    }

    /// Controlled Z-rotation.
    pub fn crz(&mut self, lambda: f64, a: u32, b: u32) {
        self.push(Gate {
            kind: GateKind::Crz,
            qubits: vec![a, b],
            params: vec![lambda],
        });
    }

    /// ZZ interaction.
    pub fn rzz(&mut self, theta: f64, a: u32, b: u32) {
        self.push(Gate {
            kind: GateKind::Rzz,
            qubits: vec![a, b],
            params: vec![theta],
        });
    }

    /// Toffoli gate, decomposed into the standard 6-CX network (the
    /// `qelib1.inc` body) so the circuit stays within 1-/2-qubit gates.
    pub fn ccx(&mut self, a: u32, b: u32, c: u32) {
        self.h(c);
        self.cx(b, c);
        self.tdg(c);
        self.cx(a, c);
        self.t(c);
        self.cx(b, c);
        self.tdg(c);
        self.cx(a, c);
        self.t(b);
        self.t(c);
        self.h(c);
        self.cx(a, b);
        self.t(a);
        self.tdg(b);
        self.cx(a, b);
    }

    /// Fredkin (controlled-SWAP), decomposed via [`Circuit::ccx`].
    pub fn cswap(&mut self, a: u32, b: u32, c: u32) {
        self.cx(c, b);
        self.ccx(a, b, c);
        self.cx(c, b);
    }

    /// Measurement of `q` into classical bit `q` (the workloads in this
    /// workspace measure registers pairwise).
    pub fn measure(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Measure, q));
    }

    /// Measures every qubit.
    pub fn measure_all(&mut self) {
        for q in 0..self.n_qubits as u32 {
            self.measure(q);
        }
    }

    /// Reset of `q` to |0⟩.
    pub fn reset(&mut self, q: u32) {
        self.push(Gate::one_q(GateKind::Reset, q));
    }

    /// A barrier across all qubits.
    pub fn barrier_all(&mut self) {
        self.push(Gate {
            kind: GateKind::Barrier,
            qubits: (0..self.n_qubits as u32).collect(),
            params: Vec::new(),
        });
    }

    /// A barrier across the given qubits.
    pub fn barrier(&mut self, qubits: &[u32]) {
        self.push(Gate {
            kind: GateKind::Barrier,
            qubits: qubits.to_vec(),
            params: Vec::new(),
        });
    }

    // --- statistics ---

    /// Number of scheduled gates (barriers excluded) — the "QOPs" count of
    /// the paper's tables.
    pub fn qop_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_scheduled()).count()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::Swap)
            .count()
    }

    /// Circuit depth under [`DepthModel::UnitGates`].
    pub fn depth(&self) -> usize {
        self.depth_with(DepthModel::UnitGates)
    }

    /// Circuit depth (critical path length) under the given model.
    ///
    /// Barriers synchronize their operands but occupy no cycle.
    pub fn depth_with(&self, model: DepthModel) -> usize {
        let mut clock = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            if g.qubits.is_empty() {
                continue;
            }
            let ready = g
                .qubits
                .iter()
                .map(|&q| clock[q as usize])
                .max()
                .expect("non-empty");
            let dur = match (&g.kind, model) {
                (GateKind::Barrier, _) => 0,
                (GateKind::Swap, DepthModel::DecomposedSwap) => 3,
                _ => 1,
            };
            let done = ready + dur;
            for &q in &g.qubits {
                clock[q as usize] = done;
            }
            depth = depth.max(done);
        }
        depth
    }

    /// The two-qubit interactions in program order, as
    /// `(gate_index, q1, q2)`.
    pub fn interactions(&self) -> impl Iterator<Item = (usize, u32, u32)> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.qubit_pair().map(|(a, b)| (i, a, b)))
    }

    /// Converts a parsed QASM program into a circuit.
    ///
    /// User-defined gates are expanded; `ccx`/`cswap` (and gates whose
    /// expansion contains them) are decomposed into 1-/2-qubit primitives.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] for gates of arity ≥ 3 without a known
    /// decomposition or for malformed qubit references.
    pub fn from_qasm(program: &qasm::Program) -> Result<Circuit, ConvertError> {
        let expanded = program.expanded().map_err(ConvertError::Expansion)?;
        let mut circuit = Circuit::new(expanded.qubit_count());
        let flatten = |q: &qasm::QubitRef| -> Result<u32, ConvertError> {
            expanded
                .flatten(q)
                .map(|i| i as u32)
                .ok_or_else(|| ConvertError::BadQubitRef(q.to_string()))
        };
        for instr in expanded.instructions() {
            match instr {
                qasm::Instruction::Gate {
                    name,
                    params,
                    qubits,
                    ..
                } => {
                    let qs: Vec<u32> = qubits.iter().map(&flatten).collect::<Result<_, _>>()?;
                    match (name.as_str(), qs.len()) {
                        ("ccx", 3) => circuit.ccx(qs[0], qs[1], qs[2]),
                        ("cswap", 3) => circuit.cswap(qs[0], qs[1], qs[2]),
                        (_, 1) | (_, 2) => circuit.push(Gate {
                            kind: GateKind::from_name(name),
                            qubits: qs,
                            params: params.clone(),
                        }),
                        (_, arity) => {
                            return Err(ConvertError::UnsupportedGate {
                                name: name.clone(),
                                arity,
                            })
                        }
                    }
                }
                qasm::Instruction::Measure { qubit, .. } => {
                    let q = flatten(qubit)?;
                    circuit.measure(q);
                }
                qasm::Instruction::Barrier(qubits) => {
                    let qs: Vec<u32> = qubits.iter().map(&flatten).collect::<Result<_, _>>()?;
                    circuit.barrier(&qs);
                }
                qasm::Instruction::Reset(qubit) => {
                    let q = flatten(qubit)?;
                    circuit.reset(q);
                }
            }
        }
        Ok(circuit)
    }

    /// Renders the circuit as a QASM program (register `q`, classical
    /// register `c` when measurements are present).
    pub fn to_qasm(&self) -> qasm::Program {
        let mut p = qasm::Program::new();
        p.add_qreg("q", self.n_qubits.max(1));
        if self.gates.iter().any(|g| g.kind == GateKind::Measure) {
            p.add_creg("c", self.n_qubits.max(1));
        }
        for g in &self.gates {
            let qref = |q: u32| qasm::QubitRef {
                reg: "q".into(),
                index: q as usize,
            };
            match g.kind {
                GateKind::Measure => p.push(qasm::Instruction::Measure {
                    qubit: qref(g.qubits[0]),
                    bit: ("c".into(), g.qubits[0] as usize),
                }),
                GateKind::Barrier => p.push(qasm::Instruction::Barrier(
                    g.qubits.iter().copied().map(qref).collect(),
                )),
                GateKind::Reset => p.push(qasm::Instruction::Reset(qref(g.qubits[0]))),
                _ => p.push(qasm::Instruction::Gate {
                    name: g.kind.name().to_string(),
                    params: g.params.clone(),
                    qubits: g.qubits.iter().copied().map(qref).collect(),
                    condition: None,
                }),
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_of_sequential_and_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(0); // depth 1 on q0
        c.h(1); // parallel
        c.cx(0, 1); // depth 2
        c.cx(2, 3); // parallel, depth 1
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
        assert_eq!(c.qop_count(), 5);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn swap_depth_models() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.depth_with(DepthModel::UnitGates), 1);
        assert_eq!(c.depth_with(DepthModel::DecomposedSwap), 3);
        assert_eq!(c.swap_count(), 1);
    }

    #[test]
    fn barriers_synchronize_without_depth() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.barrier_all();
        c.h(1); // must start after the barrier, i.e. at cycle 2
        assert_eq!(c.depth(), 2);
        assert_eq!(c.qop_count(), 2); // barrier not counted
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_operand() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn ccx_decomposes_to_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(c.gates().iter().all(|g| g.qubits.len() <= 2));
        assert_eq!(c.two_qubit_count(), 6);
    }

    #[test]
    fn qasm_round_trip() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0], q[1];
            rz(pi/2) q[2];
            ccx q[0], q[1], q[2];
            measure q[1] -> c[1];
        "#;
        let program = qasm::parse(src).unwrap();
        let circuit = Circuit::from_qasm(&program).unwrap();
        assert_eq!(circuit.n_qubits(), 3);
        // 3 plain gates + 15 from ccx + 1 measure
        assert_eq!(circuit.qop_count(), 19);
        // Round-trip through QASM text.
        let emitted = qasm::emit(&circuit.to_qasm());
        let reparsed = Circuit::from_qasm(&qasm::parse(&emitted).unwrap()).unwrap();
        assert_eq!(circuit, reparsed);
    }

    #[test]
    fn interactions_iterator() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cz(1, 2);
        let pairs: Vec<(usize, u32, u32)> = c.interactions().collect();
        assert_eq!(pairs, vec![(1, 0, 1), (2, 1, 2)]);
    }

    #[test]
    fn multi_register_qasm_flattening() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[2];\nqreg b[2];\ncx a[1], b[0];";
        let circuit = Circuit::from_qasm(&qasm::parse(src).unwrap()).unwrap();
        assert_eq!(circuit.n_qubits(), 4);
        assert_eq!(circuit.gates()[0].qubits, vec![1, 2]);
    }
}
