//! Per-device noise models and reliability-weighted distances.
//!
//! The paper's conclusion names "qubit-state and error-aware mapping
//! heuristics" as future work; this module provides the substrate: a
//! [`NoiseModel`] with per-coupling two-qubit error rates and per-qubit
//! single-qubit/readout error rates, plus a reliability-weighted distance
//! matrix (Dijkstra over `-ln(1 - ε)` edge costs) that slots into the same
//! cost functions the hop-count matrix feeds.

use crate::cache::ContentCache;
use crate::graph::{CouplingGraph, DistanceMatrix};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Calibration data for a device: error rates per coupling and per qubit.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    edge_error: HashMap<(u32, u32), f64>,
    qubit_error: Vec<f64>,
    default_edge_error: f64,
}

impl NoiseModel {
    /// A uniform model: every coupling has the same two-qubit error rate,
    /// every qubit the same single-qubit rate.
    ///
    /// # Panics
    ///
    /// Panics unless both rates lie in `[0, 1)`.
    pub fn uniform(graph: &CouplingGraph, edge_error: f64, qubit_error: f64) -> Self {
        assert!((0.0..1.0).contains(&edge_error), "edge error out of range");
        assert!(
            (0.0..1.0).contains(&qubit_error),
            "qubit error out of range"
        );
        NoiseModel {
            edge_error: HashMap::new(),
            qubit_error: vec![qubit_error; graph.n_qubits()],
            default_edge_error: edge_error,
        }
    }

    /// A synthetic calibration in the spirit of published IBM Eagle data:
    /// two-qubit errors spread log-uniformly around `median_2q`
    /// (0.25×–4×), single-qubit errors an order of magnitude lower.
    /// Deterministic per seed.
    pub fn synthetic(graph: &CouplingGraph, median_2q: f64, seed: u64) -> Self {
        let mut state = seed ^ 0x9E3779B97F4A7C15;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut edge_error = HashMap::new();
        for (a, b) in graph.edges() {
            // log-uniform in [median/4, median*4]
            let factor = 4f64.powf(2.0 * next() - 1.0);
            edge_error.insert((a, b), (median_2q * factor).min(0.5));
        }
        let qubit_error = (0..graph.n_qubits())
            .map(|_| (median_2q / 10.0) * 4f64.powf(2.0 * next() - 1.0))
            .collect();
        NoiseModel {
            edge_error,
            qubit_error,
            default_edge_error: median_2q,
        }
    }

    /// Overrides one coupling's error rate (both orientations).
    pub fn set_edge_error(&mut self, a: u32, b: u32, error: f64) {
        assert!((0.0..1.0).contains(&error));
        self.edge_error.insert((a.min(b), a.max(b)), error);
    }

    /// The two-qubit error rate of coupling `(a, b)`.
    pub fn edge_error(&self, a: u32, b: u32) -> f64 {
        self.edge_error
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or(self.default_edge_error)
    }

    /// The single-qubit error rate of qubit `q`.
    pub fn qubit_error(&self, q: u32) -> f64 {
        self.qubit_error.get(q as usize).copied().unwrap_or(0.0)
    }

    /// Negative log-fidelity of one two-qubit gate on `(a, b)` — the
    /// additive edge cost for reliability-shortest paths.
    pub fn edge_cost(&self, a: u32, b: u32) -> f64 {
        -(1.0 - self.edge_error(a, b)).ln()
    }

    /// Reliability-weighted all-pairs distances: Dijkstra over
    /// `-ln(1 - ε)` per coupling, scaled by `3` per hop (a SWAP costs
    /// three CX), quantized onto the integer [`DistanceMatrix`] grid so it
    /// drops into the same cost functions as hop counts.
    ///
    /// The quantization scale is chosen so the *cheapest* edge maps to
    /// roughly 1 unit, preserving relative path costs.
    pub fn weighted_distances(&self, graph: &CouplingGraph) -> DistanceMatrix {
        let n = graph.n_qubits();
        // Cheapest edge sets the unit.
        let min_cost = graph
            .edges()
            .iter()
            .map(|&(a, b)| self.edge_cost(a, b))
            .fold(f64::INFINITY, f64::min);
        let unit = if min_cost.is_finite() && min_cost > 0.0 {
            min_cost
        } else {
            1.0
        };
        let mut quantized = vec![DistanceMatrix::UNREACHABLE; n * n];
        for src in 0..n as u32 {
            // Dijkstra with a simple binary heap.
            let mut dist = vec![f64::INFINITY; n];
            dist[src as usize] = 0.0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((ordered(0.0), src)));
            while let Some(std::cmp::Reverse((d, p))) = heap.pop() {
                let d = d.0;
                if d > dist[p as usize] {
                    continue;
                }
                for &q in graph.neighbors(p) {
                    let nd = d + 3.0 * self.edge_cost(p, q);
                    if nd < dist[q as usize] {
                        dist[q as usize] = nd;
                        heap.push(std::cmp::Reverse((ordered(nd), q)));
                    }
                }
            }
            for dst in 0..n {
                if dist[dst].is_finite() {
                    let units = (dist[dst] / (3.0 * unit)).round() as u64;
                    quantized[src as usize * n + dst] = units.min(u64::from(u16::MAX - 1)) as u16;
                }
            }
        }
        DistanceMatrix::from_raw(n, quantized)
    }

    /// The shared, cached form of [`NoiseModel::weighted_distances`].
    ///
    /// Functionally identical, but the Floyd–Warshall-class all-pairs
    /// Dijkstra runs at most once per distinct `(noise model, graph)` pair
    /// process-wide. Mirrors [`CouplingGraph::shared_distances`]: entries
    /// are keyed by *full content* (graph name + adjacency, plus the
    /// model's canonical error-rate encoding — never invalidated in
    /// place), the cache is bounded with FIFO eviction, and when threads
    /// race on an uncached pair exactly one computes while the rest share
    /// its result. Hit/miss counters are surfaced through
    /// [`crate::weighted_distance_stats`].
    pub fn shared_weighted_distances(&self, graph: &CouplingGraph) -> Arc<DistanceMatrix> {
        weighted_cache().get(self, graph)
    }

    /// Canonical content encoding of this model, the cache-key component
    /// that makes two models with identical rates share an entry.
    fn content_key(&self) -> NoiseContent {
        let mut edges: Vec<(u32, u32, u64)> = self
            .edge_error
            .iter()
            .map(|(&(a, b), &e)| (a, b, e.to_bits()))
            .collect();
        edges.sort_unstable();
        NoiseContent {
            edges,
            qubits: self.qubit_error.iter().map(|e| e.to_bits()).collect(),
            default_bits: self.default_edge_error.to_bits(),
        }
    }

    /// Estimated success probability of a routed circuit: the product of
    /// per-gate fidelities (two-qubit gates and SWAPs use the coupling's
    /// rate, SWAPs three times; single-qubit gates use the qubit's rate).
    pub fn success_probability<'a, I>(&self, gates: I) -> f64
    where
        I: IntoIterator<Item = (&'a str, &'a [u32])>,
    {
        let mut log_fidelity = 0.0f64;
        for (kind, qubits) in gates {
            match qubits {
                [q] => log_fidelity += (1.0 - self.qubit_error(*q)).ln(),
                [a, b] => {
                    let per_gate = (1.0 - self.edge_error(*a, *b)).ln();
                    let reps = if kind == "swap" { 3.0 } else { 1.0 };
                    log_fidelity += reps * per_gate;
                }
                _ => {}
            }
        }
        log_fidelity.exp()
    }
}

/// Canonical, hashable encoding of a [`NoiseModel`]'s rates (f64s as bit
/// patterns, edge overrides sorted) — one half of the weighted-distance
/// cache key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct NoiseContent {
    edges: Vec<(u32, u32, u64)>,
    qubits: Vec<u64>,
    default_bits: u64,
}

/// Maximum number of distinct `(graph, noise)` pairs kept. Noise-aware
/// runs use one calibration per device, so this never evicts in practice
/// while still bounding memory for adversarial workloads.
const WEIGHTED_CAPACITY: usize = 32;

/// Bounded, content-keyed, single-computation cache of reliability-
/// weighted distance matrices — the hop-count cache's [`ContentCache`]
/// core keyed by `(graph content, noise content)`.
pub(crate) struct WeightedDistanceCache {
    cache: ContentCache<(CouplingGraph, NoiseContent), DistanceMatrix>,
}

impl WeightedDistanceCache {
    fn new() -> Self {
        WeightedDistanceCache {
            cache: ContentCache::new(WEIGHTED_CAPACITY),
        }
    }

    fn get(&self, noise: &NoiseModel, graph: &CouplingGraph) -> Arc<DistanceMatrix> {
        let key = (graph.clone(), noise.content_key());
        self.cache
            .get_or_compute(&key, || noise.weighted_distances(graph))
    }

    pub(crate) fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

static WEIGHTED_GLOBAL: OnceLock<WeightedDistanceCache> = OnceLock::new();

fn weighted_cache() -> &'static WeightedDistanceCache {
    WEIGHTED_GLOBAL.get_or_init(WeightedDistanceCache::new)
}

/// (hits, misses) of the global weighted-distance cache — the backing of
/// [`crate::weighted_distance_stats`].
pub(crate) fn weighted_global_stats() -> (u64, u64) {
    weighted_cache().stats()
}

/// Total-ordering wrapper for f64 heap keys (costs are never NaN).
fn ordered(x: f64) -> OrderedF64 {
    OrderedF64(x)
}

#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("costs are never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends;

    #[test]
    fn uniform_model_reduces_to_hop_counts() {
        let g = backends::line(6);
        let noise = NoiseModel::uniform(&g, 0.01, 0.001);
        let weighted = noise.weighted_distances(&g);
        let hops = g.distances();
        for a in 0..6u32 {
            for b in 0..6u32 {
                assert_eq!(weighted.get(a, b), hops.get(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn weighted_distances_route_around_bad_links() {
        // Ring of 6: direct edge (0,1) is terrible, going the long way
        // round (5 hops of good links) must win.
        let g = backends::ring(6);
        let mut noise = NoiseModel::uniform(&g, 0.001, 0.0001);
        noise.set_edge_error(0, 1, 0.4);
        let weighted = noise.weighted_distances(&g);
        // Unit = cheapest edge ≈ 0.001; bad edge ≈ 510 units; long way = 5.
        assert!(weighted.get(0, 1) <= 6, "{}", weighted.get(0, 1));
        assert!(weighted.get(0, 1) >= 5);
    }

    #[test]
    fn synthetic_model_is_deterministic_and_spread() {
        let g = backends::sherbrooke();
        let a = NoiseModel::synthetic(&g, 7e-3, 1);
        let b = NoiseModel::synthetic(&g, 7e-3, 1);
        let c = NoiseModel::synthetic(&g, 7e-3, 2);
        let edges = g.edges();
        let (e0, e1) = (edges[0], edges[17]);
        assert_eq!(a.edge_error(e0.0, e0.1), b.edge_error(e0.0, e0.1));
        assert_ne!(a.edge_error(e0.0, e0.1), c.edge_error(e0.0, e0.1));
        assert_ne!(a.edge_error(e0.0, e0.1), a.edge_error(e1.0, e1.1));
        // All within the advertised envelope.
        for (x, y) in edges {
            let e = a.edge_error(x, y);
            assert!((7e-3 / 4.1..=7e-3 * 4.1).contains(&e), "{e}");
        }
    }

    #[test]
    fn success_probability_multiplies_fidelities() {
        let g = backends::line(3);
        let noise = NoiseModel::uniform(&g, 0.01, 0.001);
        let gates: Vec<(&str, &[u32])> = vec![("h", &[0]), ("cx", &[0, 1]), ("swap", &[1, 2])];
        let p = noise.success_probability(gates);
        let expected = (1.0f64 - 0.001) * (1.0 - 0.01) * (1.0 - 0.01f64).powi(3);
        assert!((p - expected).abs() < 1e-12, "{p} vs {expected}");
    }

    #[test]
    fn weighted_cache_returns_same_matrix_as_direct_computation() {
        let cache = WeightedDistanceCache::new();
        let g = backends::ring(9);
        let noise = NoiseModel::uniform(&g, 0.02, 0.001);
        assert_eq!(*cache.get(&noise, &g), noise.weighted_distances(&g));
        assert_eq!(cache.stats(), (0, 1));
        // A clone of the same model on the same graph is a content hit.
        let again = cache.get(&noise.clone(), &g.clone());
        assert_eq!(cache.stats(), (1, 1));
        assert!(Arc::ptr_eq(&again, &cache.get(&noise, &g)));
    }

    #[test]
    fn weighted_cache_keys_on_noise_content() {
        let cache = WeightedDistanceCache::new();
        let g = backends::ring(6);
        let mut a = NoiseModel::uniform(&g, 0.01, 0.001);
        let b = a.clone();
        a.set_edge_error(0, 1, 0.3); // different content, same graph
        let da = cache.get(&a, &g);
        let db = cache.get(&b, &g);
        assert_eq!(cache.stats(), (0, 2), "distinct rates must not collide");
        assert_ne!(*da, *db);
    }

    #[test]
    fn weighted_cache_eviction_keeps_it_bounded() {
        let cache = WeightedDistanceCache::new();
        let g = backends::line(5);
        for i in 0..(WEIGHTED_CAPACITY + 3) {
            let noise = NoiseModel::uniform(&g, 0.001 * (i + 1) as f64, 0.0001);
            cache.get(&noise, &g);
        }
        // The oldest entry was evicted, so asking again recomputes.
        cache.get(&NoiseModel::uniform(&g, 0.001, 0.0001), &g);
        let (_, misses) = cache.stats();
        assert_eq!(misses as usize, WEIGHTED_CAPACITY + 3 + 1);
    }

    #[test]
    fn eight_threads_hammering_one_weighted_entry_compute_once() {
        let cache = WeightedDistanceCache::new();
        let g = backends::king_grid(5, 5);
        let noise = NoiseModel::synthetic(&g, 5e-3, 42);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let d = cache.get(&noise, &g);
                        assert_eq!(d.n_qubits(), 25);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "single-computation semantics");
        assert_eq!(hits, 8 * 25 - 1);
    }

    #[test]
    fn public_weighted_stats_observe_global_traffic() {
        // Global counters are shared with concurrently running tests, so
        // only monotonicity and attributable growth are asserted.
        let g = backends::king_grid(2, 6);
        let noise = NoiseModel::synthetic(&g, 3e-3, 7);
        let (h0, m0) = crate::weighted_distance_stats();
        assert_eq!(
            *noise.shared_weighted_distances(&g),
            noise.weighted_distances(&g)
        );
        noise.shared_weighted_distances(&g);
        let (h1, m1) = crate::weighted_distance_stats();
        assert!(h1 + m1 >= h0 + m0 + 2, "two lookups must be counted");
        assert!(h1 >= h0 && m1 >= m0, "counters never decrease");
    }

    #[test]
    fn edge_cost_is_monotone_in_error() {
        let g = backends::line(3);
        let mut noise = NoiseModel::uniform(&g, 0.01, 0.001);
        let base = noise.edge_cost(0, 1);
        noise.set_edge_error(0, 1, 0.1);
        assert!(noise.edge_cost(0, 1) > base);
    }
}
