//! QPU coupling graphs and physical distance matrices.
//!
//! Models the hardware back-ends of the Qlosure evaluation:
//!
//! * [`backends::sherbrooke`] — IBM Sherbrooke, the 127-qubit heavy-hexagon
//!   Eagle lattice;
//! * [`backends::ankaa3`] — Rigetti Ankaa-3, an 82-qubit square lattice
//!   (7×12 tile with two qubits disabled, matching the paper's count);
//! * [`backends::sherbrooke_2x`] — the paper's synthetic 256-qubit back-end:
//!   two Sherbrooke topologies joined by two bridge qubits;
//! * [`backends::king_grid`] — the 9×9 / 16×16 eight-neighbour grids used
//!   to synthesize the custom QUEKO suites;
//! * generic generators (lines, rings, grids, Aspen- and Sycamore-like
//!   lattices) for tests and workload generation.
//!
//! [`CouplingGraph`] provides adjacency plus the all-pairs-shortest-path
//! [`DistanceMatrix`] (`Dphys` in the paper, §V-B.3).
//!
//! # Example
//!
//! ```
//! use topology::backends;
//!
//! let dev = backends::sherbrooke();
//! assert_eq!(dev.n_qubits(), 127);
//! assert!(dev.max_degree() <= 3); // heavy-hex property
//! let d = dev.distances();
//! assert_eq!(d.get(0, 1), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
mod cache;
mod graph;
mod noise;

pub use graph::{CouplingGraph, DistanceMatrix};
pub use noise::NoiseModel;

/// `(hits, misses)` counters of the process-wide shared distance cache
/// behind [`CouplingGraph::shared_distances`].
///
/// A *miss* is an actual all-pairs BFS computation; a *hit* is any call
/// that reused an already-computed matrix (including calls that blocked
/// while another thread computed it). The counters are cumulative over the
/// process lifetime — long-lived consumers (the mapping service) report
/// deltas across requests to make cross-request amortization observable.
pub fn shared_distance_stats() -> (u64, u64) {
    cache::global_stats()
}

/// `(hits, misses)` counters of the process-wide shared reliability-
/// weighted distance cache behind [`NoiseModel::shared_weighted_distances`].
///
/// Same semantics as [`shared_distance_stats`]: a *miss* is an actual
/// all-pairs Dijkstra computation, a *hit* any call that reused one, and
/// the counters are cumulative over the process lifetime.
pub fn weighted_distance_stats() -> (u64, u64) {
    noise::weighted_global_stats()
}
