//! Coupling graphs and all-pairs shortest paths.

use std::collections::VecDeque;

/// An undirected coupling graph over physical qubits `0..n`.
///
/// This is the paper's `Rhw` abstraction: the set of physical qubit pairs
/// that may host a two-qubit gate directly. Adjacency is stored in CSR
/// (compressed sparse row) form — one flat `offsets` array indexing into a
/// flat `targets` array — so the whole graph lives in two contiguous
/// allocations and `neighbors()` is a single slice view.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CouplingGraph {
    name: String,
    n_qubits: usize,
    /// `offsets[p]..offsets[p + 1]` indexes `targets` for qubit `p`.
    offsets: Vec<u32>,
    /// Neighbour lists, concatenated; each qubit's segment is sorted.
    targets: Vec<u32>,
}

impl CouplingGraph {
    /// Builds a graph from undirected edges.
    ///
    /// Self-loops are rejected; duplicate edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n_qubits` or an edge is a
    /// self-loop.
    pub fn new(name: impl Into<String>, n_qubits: usize, edges: &[(u32, u32)]) -> Self {
        let mut normalized: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(a != b, "self-loop on qubit {a}");
            assert!(
                (a as usize) < n_qubits && (b as usize) < n_qubits,
                "edge ({a}, {b}) out of range {n_qubits}"
            );
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        normalized.dedup();

        // Count degrees, then prefix-sum into CSR offsets.
        let mut offsets = vec![0u32; n_qubits + 1];
        for &(a, b) in &normalized {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for i in 0..n_qubits {
            offsets[i + 1] += offsets[i];
        }
        // Fill each segment. Walking the normalized (min, max) edge list in
        // lexicographic order appends smaller-than-p neighbours (from edges
        // where p is the max endpoint) before larger-than-p neighbours, each
        // run in ascending order, so every segment comes out sorted.
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; normalized.len() * 2];
        for &(a, b) in &normalized {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        debug_assert!((0..n_qubits)
            .all(|p| targets[offsets[p] as usize..offsets[p + 1] as usize].is_sorted()));
        CouplingGraph {
            name: name.into(),
            n_qubits,
            offsets,
            targets,
        }
    }

    /// Human-readable back-end name (e.g. `"ibm_sherbrooke"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed neighbour entries (`2 * n_edges`); sized for
    /// per-directed-edge scratch such as epoch stamps.
    pub fn n_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbours of qubit `p`, sorted.
    pub fn neighbors(&self, p: u32) -> &[u32] {
        &self.targets[self.offsets[p as usize] as usize..self.offsets[p as usize + 1] as usize]
    }

    /// Whether `a` and `b` are directly coupled.
    pub fn is_adjacent(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Index of the directed neighbour entry `a -> b` in `0..n_directed_edges()`,
    /// or `None` when the qubits are not coupled. Stable for a given graph;
    /// used to key per-edge scratch buffers.
    pub fn edge_index(&self, a: u32, b: u32) -> Option<usize> {
        let base = self.offsets[a as usize] as usize;
        self.neighbors(a).binary_search(&b).ok().map(|i| base + i)
    }

    /// Degree of qubit `p`.
    pub fn degree(&self, p: u32) -> usize {
        (self.offsets[p as usize + 1] - self.offsets[p as usize]) as usize
    }

    /// The maximum vertex degree (the paper sizes its look-ahead constant
    /// `c` above this).
    pub fn max_degree(&self) -> usize {
        (0..self.n_qubits)
            .map(|p| self.degree(p as u32))
            .max()
            .unwrap_or(0)
    }

    /// All undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.n_edges());
        for a in 0..self.n_qubits as u32 {
            for &b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether the graph is connected (trivially true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.n_qubits();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0u32]);
        seen[0] = true;
        let mut count = 1;
        while let Some(p) = queue.pop_front() {
            for &q in self.neighbors(p) {
                if !seen[q as usize] {
                    seen[q as usize] = true;
                    count += 1;
                    queue.push_back(q);
                }
            }
        }
        count == n
    }

    /// BFS all-pairs shortest paths — the paper's distance matrix `Dphys`.
    pub fn distances(&self) -> DistanceMatrix {
        let n = self.n_qubits();
        let mut data = vec![DistanceMatrix::UNREACHABLE; n * n];
        for src in 0..n as u32 {
            let row = &mut data[src as usize * n..(src as usize + 1) * n];
            row[src as usize] = 0;
            let mut queue = VecDeque::from([src]);
            while let Some(p) = queue.pop_front() {
                let d = row[p as usize];
                for &q in self.neighbors(p) {
                    if row[q as usize] == DistanceMatrix::UNREACHABLE {
                        row[q as usize] = d + 1;
                        queue.push_back(q);
                    }
                }
            }
        }
        DistanceMatrix { n, data }
    }

    /// The shared, cached distance matrix of this graph.
    ///
    /// Functionally identical to [`CouplingGraph::distances`], but the BFS
    /// runs at most once per distinct graph process-wide: results are kept
    /// in a bounded global cache (keyed by full graph content) and handed
    /// out as `Arc` clones, so batch runs that map thousands of circuits
    /// onto the same device share a single matrix. Safe and deterministic
    /// under concurrency — when threads race on an uncached graph, exactly
    /// one computes and the rest share its result.
    pub fn shared_distances(&self) -> std::sync::Arc<DistanceMatrix> {
        crate::cache::global().get(self)
    }

    /// One shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when unreachable. Ties broken toward smaller qubit indices.
    pub fn shortest_path(&self, a: u32, b: u32) -> Option<Vec<u32>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.n_qubits();
        let mut prev: Vec<u32> = vec![u32::MAX; n];
        let mut queue = VecDeque::from([a]);
        prev[a as usize] = a;
        while let Some(p) = queue.pop_front() {
            for &q in self.neighbors(p) {
                if prev[q as usize] == u32::MAX {
                    prev[q as usize] = p;
                    if q == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(q);
                }
            }
        }
        None
    }
}

/// Symmetric matrix of SWAP distances between physical qubits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u16>,
}

impl DistanceMatrix {
    /// Sentinel distance for disconnected pairs.
    pub const UNREACHABLE: u16 = u16::MAX;

    /// Builds a matrix from raw row-major data (used by the noise module's
    /// weighted distances).
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == n * n`.
    pub fn from_raw(n: usize, data: Vec<u16>) -> Self {
        assert_eq!(data.len(), n * n, "distance matrix shape");
        DistanceMatrix { n, data }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Distance (in hops) between `a` and `b`.
    pub fn get(&self, a: u32, b: u32) -> u16 {
        self.data[a as usize * self.n + b as usize]
    }

    /// The graph diameter (maximum finite distance).
    pub fn diameter(&self) -> u16 {
        self.data
            .iter()
            .copied()
            .filter(|&d| d != Self::UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> CouplingGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CouplingGraph::new("line", n, &edges)
    }

    #[test]
    fn adjacency_and_degree() {
        let g = line(4);
        assert!(g.is_adjacent(0, 1));
        assert!(!g.is_adjacent(0, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = CouplingGraph::new("dup", 2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = CouplingGraph::new("bad", 2, &[(1, 1)]);
    }

    #[test]
    fn distances_on_line() {
        let g = line(5);
        let d = g.distances();
        assert_eq!(d.get(0, 4), 4);
        assert_eq!(d.get(2, 2), 0);
        assert_eq!(d.get(3, 1), 2);
        assert_eq!(d.diameter(), 4);
    }

    #[test]
    fn disconnected_components() {
        let g = CouplingGraph::new("two islands", 4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        let d = g.distances();
        assert_eq!(d.get(0, 2), DistanceMatrix::UNREACHABLE);
        assert_eq!(g.shortest_path(0, 3), None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = line(6);
        let p = g.shortest_path(1, 4).unwrap();
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(g.shortest_path(3, 3), Some(vec![3]));
    }

    #[test]
    fn ring_distances_wrap() {
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let g = CouplingGraph::new("ring", 6, &edges);
        let d = g.distances();
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(0, 5), 1);
        assert_eq!(d.get(1, 5), 2);
    }
}
