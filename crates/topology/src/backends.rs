//! The hardware back-ends of the Qlosure evaluation, plus generic lattice
//! generators for tests and workload synthesis.

use crate::graph::CouplingGraph;

/// IBM Sherbrooke: the 127-qubit heavy-hexagon (Eagle r3) lattice.
///
/// The layout is seven horizontal rows of up to 15 qubits joined by
/// four-qubit vertical connector columns, alternating between columns
/// {0, 4, 8, 12} and {2, 6, 10, 14}; the top row omits its last column and
/// the bottom row its first, giving exactly 127 qubits with degree ≤ 3.
pub fn sherbrooke() -> CouplingGraph {
    let g = heavy_hex_lattice("ibm_sherbrooke", 7);
    assert_eq!(g.n_qubits(), 127, "Sherbrooke must have 127 qubits");
    g
}

/// Generalized heavy-hexagon lattice with `d` rows of `2d + 1` qubits
/// (Eagle-style numbering: `d = 7` reproduces the 127-qubit Sherbrooke
/// layout exactly). `d` must be odd so the bottom connector band lands on
/// columns the truncated bottom row still has.
///
/// # Panics
///
/// Panics unless `d` is odd and at least 3.
pub fn heavy_hex(d: usize) -> CouplingGraph {
    assert!(d >= 3 && d % 2 == 1, "heavy-hex distance must be odd >= 3");
    heavy_hex_lattice(&format!("heavy_hex_{d}"), d)
}

/// Number of qubits of [`heavy_hex`]`(d)` without building the graph
/// (used to enforce the [`by_name`] size cap before allocation).
pub fn heavy_hex_qubits(d: usize) -> usize {
    let cols = 2 * d + 1;
    // Row qubits: top and bottom rows each drop one column.
    let rows = d * cols - 2;
    // Connector bands alternate start columns 0 and 2, stepping by 4.
    let connectors: usize = (0..d - 1)
        .map(|band| {
            let start = if band % 2 == 0 { 0 } else { 2 };
            (start..cols).step_by(4).count()
        })
        .sum();
    rows + connectors
}

fn heavy_hex_lattice(name: &str, d: usize) -> CouplingGraph {
    let rows = d;
    let cols = 2 * d + 1;
    // Assign indices: row qubits then connector qubits, interleaved per row
    // band, matching IBM's published numbering.
    let mut index_of = vec![vec![u32::MAX; cols]; rows]; // row qubits
    let mut next = 0u32;
    let mut connector_edges: Vec<(usize, usize, u32)> = Vec::new(); // (row above, col, connector idx)
    for row in 0..rows {
        let row_cols: Vec<usize> = match row {
            0 => (0..cols - 1).collect(),
            r if r == rows - 1 => (1..cols).collect(),
            _ => (0..cols).collect(),
        };
        for c in row_cols {
            index_of[row][c] = next;
            next += 1;
        }
        if row + 1 < rows {
            let start = if row % 2 == 0 { 0 } else { 2 };
            for c in (start..cols).step_by(4) {
                connector_edges.push((row, c, next));
                next += 1;
            }
        }
    }
    assert_eq!(
        next as usize,
        heavy_hex_qubits(d),
        "heavy-hex construction must match its qubit-count formula"
    );
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Horizontal chains.
    for row in &index_of {
        for c in 0..cols - 1 {
            let (a, b) = (row[c], row[c + 1]);
            if a != u32::MAX && b != u32::MAX {
                edges.push((a, b));
            }
        }
    }
    // Vertical connectors.
    for &(row, c, conn) in &connector_edges {
        let above = index_of[row][c];
        let below = index_of[row + 1][c];
        assert!(above != u32::MAX && below != u32::MAX);
        edges.push((above, conn));
        edges.push((conn, below));
    }
    CouplingGraph::new(name, next as usize, &edges)
}

/// Rigetti Ankaa-3: an 82-qubit square lattice.
///
/// Modelled as the published 7×12 square-lattice tile with the two
/// highest-numbered qubits disabled, matching the 82-qubit count the paper
/// reports (max degree 4).
pub fn ankaa3() -> CouplingGraph {
    let full = square_grid_edges(7, 12);
    let keep = 82u32;
    let edges: Vec<(u32, u32)> = full
        .into_iter()
        .filter(|&(a, b)| a < keep && b < keep)
        .collect();
    CouplingGraph::new("rigetti_ankaa3", keep as usize, &edges)
}

/// Sherbrooke-2X: the paper's synthetic 256-qubit back-end — two Sherbrooke
/// topologies whose facing rows are joined through two bridge qubits,
/// forming an extended heavy-hexagon lattice.
pub fn sherbrooke_2x() -> CouplingGraph {
    let base = sherbrooke();
    let n = 127;
    let mut edges: Vec<(u32, u32)> = base.edges();
    edges.extend(base.edges().iter().map(|&(a, b)| (a + n, b + n)));
    // Bridge qubits 254 and 255 join the bottom row of copy A (qubits
    // 113..=126, columns 1..=14) to the top row of copy B (qubits
    // 127..=140, columns 0..=13) at two spread-out columns.
    let a_bottom = |col: usize| 113 + (col - 1) as u32; // cols 1..=14
    let b_top = |col: usize| 127 + col as u32; // cols 0..=13
    edges.push((a_bottom(3), 254));
    edges.push((254, b_top(3)));
    edges.push((a_bottom(11), 255));
    edges.push((255, b_top(11)));
    CouplingGraph::new("sherbrooke_2x", 256, &edges)
}

/// Rectangular grid with 4-neighbour (von Neumann) connectivity.
pub fn square_grid(rows: usize, cols: usize) -> CouplingGraph {
    CouplingGraph::new(
        format!("grid_{rows}x{cols}"),
        rows * cols,
        &square_grid_edges(rows, cols),
    )
}

fn square_grid_edges(rows: usize, cols: usize) -> Vec<(u32, u32)> {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    edges
}

/// Rectangular grid with 8-neighbour (king-move) connectivity — the
/// topology of the paper's custom 81-qubit (9×9) and 256-qubit (16×16)
/// QUEKO generators, where interior qubits connect to all eight
/// neighbours.
pub fn king_grid(rows: usize, cols: usize) -> CouplingGraph {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
                if c + 1 < cols {
                    edges.push((at(r, c), at(r + 1, c + 1)));
                }
                if c > 0 {
                    edges.push((at(r, c), at(r + 1, c - 1)));
                }
            }
        }
    }
    CouplingGraph::new(format!("king_{rows}x{cols}"), rows * cols, &edges)
}

/// A 1-D chain of `n` qubits.
pub fn line(n: usize) -> CouplingGraph {
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    CouplingGraph::new(format!("line_{n}"), n, &edges)
}

/// A ring of `n` qubits.
pub fn ring(n: usize) -> CouplingGraph {
    assert!(n >= 3, "a ring needs at least 3 qubits");
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    CouplingGraph::new(format!("ring_{n}"), n, &edges)
}

/// A fully connected device (useful as a routing-free baseline in tests).
pub fn complete(n: usize) -> CouplingGraph {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in a + 1..n as u32 {
            edges.push((a, b));
        }
    }
    CouplingGraph::new(format!("complete_{n}"), n, &edges)
}

/// A 16-qubit Aspen-style topology (two octagons bridged by two edges) —
/// the device family the original `queko-bss-16qbt` suite targets.
pub fn aspen16() -> CouplingGraph {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..8u32 {
        edges.push((i, (i + 1) % 8));
        edges.push((8 + i, 8 + (i + 1) % 8));
    }
    // Bridge the rings on adjacent vertices, like Aspen's fused octagons.
    edges.push((1, 14));
    edges.push((2, 13));
    CouplingGraph::new("aspen_16", 16, &edges)
}

/// A 54-qubit Sycamore-style diagonal lattice (6×9, degree ≤ 4) — the
/// device family the original `queko-bss-54qbt` suite targets.
pub fn sycamore54() -> CouplingGraph {
    let rows = 6;
    let cols = 9;
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows - 1 {
        for c in 0..cols {
            edges.push((at(r, c), at(r + 1, c)));
            if r % 2 == 0 {
                if c > 0 {
                    edges.push((at(r, c), at(r + 1, c - 1)));
                }
            } else if c + 1 < cols {
                edges.push((at(r, c), at(r + 1, c + 1)));
            }
        }
    }
    CouplingGraph::new("sycamore_54", rows * cols, &edges)
}

/// Upper bound on qubit counts accepted by [`by_name`]'s parametric forms,
/// so a device name arriving over a wire cannot request an absurd
/// allocation.
const BY_NAME_MAX_QUBITS: usize = 4096;

/// Resolves an evaluation back-end by its roster name, or a parametric
/// test topology.
///
/// Roster names: `sherbrooke`, `ankaa3`, `sherbrooke2x`, `king9`,
/// `king16`, `aspen16`, `sycamore54`. Parametric forms (for tests and
/// service requests): `line:<n>`, `ring:<n>`, `king:<rows>x<cols>`,
/// `grid:<rows>x<cols>` (4-neighbour square lattice) and
/// `heavy-hex:<distance>` (generalized Eagle-style heavy-hexagon, odd
/// distance ≥ 3) — with qubit counts capped at 4096 so untrusted request
/// decoding cannot trigger huge allocations. Returns `None` for unknown
/// names or out-of-range parameters; this is the one name→device decoder
/// shared by the bench harness and the mapping service.
pub fn by_name(name: &str) -> Option<CouplingGraph> {
    let parse_n = |s: &str| {
        s.parse::<usize>()
            .ok()
            .filter(|&n| (2..=BY_NAME_MAX_QUBITS).contains(&n))
    };
    if let Some(rest) = name.strip_prefix("line:") {
        return parse_n(rest).map(line);
    }
    if let Some(rest) = name.strip_prefix("ring:") {
        return parse_n(rest).map(ring);
    }
    if let Some(rest) = name.strip_prefix("king:") {
        let (r, c) = rest.split_once('x')?;
        let (rows, cols) = (parse_n(r)?, parse_n(c)?);
        if rows * cols > BY_NAME_MAX_QUBITS {
            return None;
        }
        return Some(king_grid(rows, cols));
    }
    if let Some(rest) = name.strip_prefix("grid:") {
        let (r, c) = rest.split_once('x')?;
        let (rows, cols) = (parse_n(r)?, parse_n(c)?);
        if rows * cols > BY_NAME_MAX_QUBITS {
            return None;
        }
        return Some(square_grid(rows, cols));
    }
    if let Some(rest) = name.strip_prefix("heavy-hex:") {
        let d = rest.parse::<usize>().ok()?;
        // Bound d *before* evaluating the qubit-count formula — its O(d²)
        // band loop must never run on an attacker-chosen magnitude. 45 is
        // already past the largest distance fitting the 4096-qubit cap.
        if !(3..=45).contains(&d) || d % 2 == 0 || heavy_hex_qubits(d) > BY_NAME_MAX_QUBITS {
            return None;
        }
        return Some(heavy_hex(d));
    }
    match name {
        "sherbrooke" => Some(sherbrooke()),
        "ankaa3" => Some(ankaa3()),
        "sherbrooke2x" => Some(sherbrooke_2x()),
        "king9" => Some(king_grid(9, 9)),
        "king16" => Some(king_grid(16, 16)),
        "aspen16" => Some(aspen16()),
        "sycamore54" => Some(sycamore54()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sherbrooke_matches_eagle_lattice() {
        let g = sherbrooke();
        assert_eq!(g.n_qubits(), 127);
        assert_eq!(g.n_edges(), 144); // published ibm_sherbrooke edge count
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
        // Spot-check known couplings of the 127-qubit Eagle numbering.
        for (a, b) in [(0, 1), (0, 14), (14, 18), (4, 15), (20, 33), (33, 39)] {
            assert!(g.is_adjacent(a, b), "expected edge ({a}, {b})");
        }
        assert!(!g.is_adjacent(13, 14));
        // Bottom row runs 113..=126 and its connectors join columns 2,6,10,14.
        for (a, b) in [(109, 96), (109, 114), (112, 108), (112, 126)] {
            assert!(g.is_adjacent(a, b), "expected edge ({a}, {b})");
        }
    }

    #[test]
    fn ankaa3_is_82_qubit_square_lattice() {
        let g = ankaa3();
        assert_eq!(g.n_qubits(), 82);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn sherbrooke_2x_bridges_two_copies() {
        let g = sherbrooke_2x();
        assert_eq!(g.n_qubits(), 256);
        assert!(g.is_connected());
        // Bridges have degree 2; everything else keeps degree <= 3.
        assert_eq!(g.degree(254), 2);
        assert_eq!(g.degree(255), 2);
        assert_eq!(g.max_degree(), 3);
        // A path from copy A to copy B must cross a bridge.
        let p = g.shortest_path(0, 127 + 126).unwrap();
        assert!(p.iter().any(|&q| q == 254 || q == 255));
    }

    #[test]
    fn king_grid_has_eight_neighbors_inside() {
        let g = king_grid(9, 9);
        assert_eq!(g.n_qubits(), 81);
        assert_eq!(g.max_degree(), 8);
        // Interior qubit (4,4) = 40 has exactly 8 neighbours.
        assert_eq!(g.degree(40), 8);
        // Corner has 3.
        assert_eq!(g.degree(0), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn square_grid_degrees() {
        let g = square_grid(7, 12);
        assert_eq!(g.n_qubits(), 84);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn small_generators() {
        assert_eq!(line(5).n_edges(), 4);
        assert_eq!(ring(5).n_edges(), 5);
        assert_eq!(complete(5).n_edges(), 10);
        assert!(complete(5).is_adjacent(0, 4));
    }

    #[test]
    fn aspen16_shape() {
        let g = aspen16();
        assert_eq!(g.n_qubits(), 16);
        assert!(g.is_connected());
        assert_eq!(g.n_edges(), 18);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn sycamore54_shape() {
        let g = sycamore54();
        assert_eq!(g.n_qubits(), 54);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn by_name_resolves_roster_and_parametric_forms() {
        for name in [
            "sherbrooke",
            "ankaa3",
            "sherbrooke2x",
            "king9",
            "king16",
            "aspen16",
            "sycamore54",
        ] {
            let g = by_name(name).unwrap_or_else(|| panic!("roster name {name} must resolve"));
            assert!(g.n_qubits() >= 16);
        }
        assert_eq!(by_name("line:7").unwrap().n_qubits(), 7);
        assert_eq!(by_name("ring:12").unwrap().n_edges(), 12);
        assert_eq!(by_name("king:3x4").unwrap().n_qubits(), 12);
        assert_eq!(by_name("grid:4x5").unwrap().n_qubits(), 20);
        assert_eq!(by_name("grid:64x64").unwrap().n_qubits(), 4096);
        assert_eq!(by_name("heavy-hex:7").unwrap().n_qubits(), 127);
        // Unknown names, malformed parameters and oversized requests are
        // all `None`, never a panic — this decoder faces the wire.
        for bad in [
            "eagle",
            "line:",
            "line:1",
            "line:abc",
            "line:99999",
            "king:3",
            "king:0x4",
            "king:100x100",
            "grid:64x65",
            "grid:4",
            "grid:0x9",
            "grid:x",
            "heavy-hex:",
            "heavy-hex:1",
            "heavy-hex:4",          // even distances don't tile
            "heavy-hex:45",         // over the 4096-qubit cap
            "heavy-hex:9999999999", // must be rejected before any O(d²) work
            "heavy-hex:abc",
            "",
        ] {
            assert!(by_name(bad).is_none(), "`{bad}` must not resolve");
        }
    }

    #[test]
    fn grid_by_name_matches_generator() {
        let g = by_name("grid:3x7").unwrap();
        assert_eq!(g, square_grid(3, 7));
        assert_eq!(g.name(), "grid_3x7");
    }

    #[test]
    fn heavy_hex_family_shapes() {
        // d = 7 is exactly the Sherbrooke lattice under another name.
        let h7 = heavy_hex(7);
        let sb = sherbrooke();
        assert_eq!(h7.n_qubits(), sb.n_qubits());
        assert_eq!(h7.edges(), sb.edges());
        assert_eq!(h7.name(), "heavy_hex_7");
        // Other odd distances stay connected, degree-bounded heavy-hex.
        for d in [3usize, 5, 9, 13] {
            let g = heavy_hex(d);
            assert_eq!(g.n_qubits(), heavy_hex_qubits(d), "d={d}");
            assert!(g.is_connected(), "d={d}");
            assert!(g.max_degree() <= 3, "d={d}");
        }
        assert_eq!(heavy_hex_qubits(3), 23);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn heavy_hex_rejects_even_distance() {
        let _ = heavy_hex(6);
    }

    #[test]
    fn distances_sane_on_sherbrooke() {
        let g = sherbrooke();
        let d = g.distances();
        // Heavy-hex 127 diameter is large-ish; sanity-bound it.
        assert!(d.diameter() >= 15 && d.diameter() <= 40, "{}", d.diameter());
        assert_eq!(d.get(0, 14), 1);
    }
}
