//! Process-wide shared per-device caches.
//!
//! The all-pairs-distance matrix (`Dphys`) is a pure function of a
//! [`CouplingGraph`], yet every mapper invocation used to recompute it —
//! `O(n²)` BFS work repeated thousands of times over a batch run. The
//! [`DistanceCache`] here computes each matrix once per distinct graph and
//! hands out `Arc` clones, with single-computation semantics under
//! concurrency: when several threads race on an uncached graph, exactly one
//! runs the BFS and the others block on the same cell and share its result.
//!
//! **Invalidation rule:** a [`CouplingGraph`] is immutable after
//! construction, so entries are keyed by the *full graph content* (name +
//! adjacency). A different graph — even one with the same name — is a
//! different key; nothing is ever invalidated in place. The cache is
//! bounded ([`CAPACITY`] entries) with FIFO eviction; an evicted entry's
//! matrix stays alive for as long as callers hold their `Arc`s.

use crate::graph::{CouplingGraph, DistanceMatrix};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of distinct graphs kept; the evaluation roster has 7
/// back-ends plus a handful of test topologies, so 32 never evicts in
/// practice while still bounding memory for adversarial workloads.
const CAPACITY: usize = 32;

/// A bounded, content-keyed, single-computation cache: the one
/// implementation behind both the hop-count distance cache and the
/// reliability-weighted distance cache, so their locking, eviction and
/// counter semantics can never drift apart.
///
/// Entries are keyed by full content (the invalidation rule: nothing is
/// ever invalidated in place, a different value is a different key), the
/// store is FIFO-bounded, and when threads race on an uncached key
/// exactly one computes while the rest block on the same cell and share
/// its result.
pub(crate) struct ContentCache<K, V> {
    inner: Mutex<CacheInner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheInner<K, V> {
    cells: HashMap<K, Arc<OnceLock<Arc<V>>>>,
    order: VecDeque<K>,
}

impl<K: Hash + Eq + Clone, V> ContentCache<K, V> {
    pub(crate) fn new(capacity: usize) -> Self {
        ContentCache {
            inner: Mutex::new(CacheInner {
                cells: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The value for `key`, computed with `compute` at most once per
    /// distinct key no matter how many threads ask concurrently.
    pub(crate) fn get_or_compute(&self, key: &K, compute: impl FnOnce() -> V) -> Arc<V> {
        let cell = {
            let mut inner = self.inner.lock().expect("content cache poisoned");
            match inner.cells.get(key) {
                Some(cell) => cell.clone(),
                None => {
                    if inner.order.len() >= self.capacity {
                        if let Some(evicted) = inner.order.pop_front() {
                            inner.cells.remove(&evicted);
                        }
                    }
                    let cell = Arc::new(OnceLock::new());
                    inner.cells.insert(key.clone(), cell.clone());
                    inner.order.push_back(key.clone());
                    cell
                }
            }
        };
        // The map lock is released before the (possibly expensive)
        // compute; racers on the same cell serialize on the OnceLock
        // instead, so one slow key never blocks lookups of other keys.
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                self.misses.fetch_add(1, Ordering::Relaxed);
                Arc::new(compute())
            })
            .clone();
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// (hits, misses) so far. A "miss" is an actual computation; a "hit"
    /// is any call that reused an already-computed value (including calls
    /// that blocked while another thread computed it).
    pub(crate) fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// The hop-count distance cache: a [`ContentCache`] keyed by full graph
/// content.
///
/// The global instance behind [`CouplingGraph::shared_distances`] is what
/// production code uses; tests construct private instances so their
/// hit/miss assertions cannot race with other tests.
pub(crate) struct DistanceCache {
    cache: ContentCache<CouplingGraph, DistanceMatrix>,
}

impl DistanceCache {
    pub(crate) fn new() -> Self {
        DistanceCache {
            cache: ContentCache::new(CAPACITY),
        }
    }

    /// The distance matrix of `graph`, computed at most once per distinct
    /// graph no matter how many threads ask concurrently.
    pub(crate) fn get(&self, graph: &CouplingGraph) -> Arc<DistanceMatrix> {
        self.cache.get_or_compute(graph, || graph.distances())
    }

    pub(crate) fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }
}

static GLOBAL: OnceLock<DistanceCache> = OnceLock::new();

/// The global cache consulted by [`CouplingGraph::shared_distances`].
pub(crate) fn global() -> &'static DistanceCache {
    GLOBAL.get_or_init(DistanceCache::new)
}

/// (hits, misses) of the global cache — the backing of
/// [`crate::shared_distance_stats`].
pub(crate) fn global_stats() -> (u64, u64) {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends;

    #[test]
    fn cache_returns_same_matrix_as_direct_computation() {
        let cache = DistanceCache::new();
        let g = backends::line(9);
        assert_eq!(*cache.get(&g), g.distances());
        assert_eq!(cache.stats(), (0, 1));
    }

    #[test]
    fn repeated_lookups_share_one_allocation() {
        let cache = DistanceCache::new();
        let g = backends::ring(12);
        let a = cache.get(&g);
        let b = cache.get(&g.clone());
        assert!(Arc::ptr_eq(&a, &b), "clone of the same graph must hit");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn distinct_graphs_get_distinct_entries() {
        let cache = DistanceCache::new();
        let a = cache.get(&backends::line(4));
        let b = cache.get(&backends::line(5));
        assert_ne!(a.n_qubits(), b.n_qubits());
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn same_name_different_adjacency_is_a_different_key() {
        // The invalidation rule: keys are full graph content, not names.
        let cache = DistanceCache::new();
        let a = CouplingGraph::new("dev", 3, &[(0, 1), (1, 2)]);
        let b = CouplingGraph::new("dev", 3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(cache.get(&a).get(0, 2), 2);
        assert_eq!(cache.get(&b).get(0, 2), 1);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn eviction_keeps_the_cache_bounded() {
        let cache = DistanceCache::new();
        for n in 2..(2 + CAPACITY + 4) {
            cache.get(&backends::line(n));
        }
        // The oldest entry was evicted, so asking again recomputes.
        cache.get(&backends::line(2));
        let (_, misses) = cache.stats();
        assert_eq!(misses as usize, CAPACITY + 4 + 1);
    }

    #[test]
    fn eight_threads_hammering_one_graph_compute_once() {
        let cache = DistanceCache::new();
        let g = backends::king_grid(6, 6);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let d = cache.get(&g);
                        assert_eq!(d.n_qubits(), 36);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "single-computation semantics");
        assert_eq!(hits, 8 * 50 - 1);
    }

    #[test]
    fn eight_threads_over_disjoint_graphs_do_not_poison_locks() {
        let cache = DistanceCache::new();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = &cache;
                scope.spawn(move || {
                    for round in 0..20 {
                        let n = 3 + (t + round) % 6;
                        let d = cache.get(&backends::line(n));
                        assert_eq!(d.n_qubits(), n);
                    }
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 6, "one computation per distinct graph");
        assert_eq!(hits, 8 * 20 - 6);
    }

    #[test]
    fn global_cache_is_shared_across_call_sites() {
        let g = backends::king_grid(2, 7);
        let a = g.shared_distances();
        let b = g.shared_distances();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, g.distances());
    }

    #[test]
    fn public_stats_observe_global_traffic() {
        // The global counters are shared with every concurrently running
        // test, so only monotonicity and attributable growth are asserted.
        let g = backends::king_grid(3, 5);
        let (h0, m0) = crate::shared_distance_stats();
        g.shared_distances();
        g.shared_distances();
        let (h1, m1) = crate::shared_distance_stats();
        assert!(h1 + m1 >= h0 + m0 + 2, "two lookups must be counted");
        assert!(h1 >= h0 && m1 >= m0, "counters never decrease");
    }
}
