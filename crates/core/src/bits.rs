//! A minimal packed bitset for the routing hot path.
//!
//! `RoutingState` tracks per-gate markers (executed-this-wave, front
//! membership) over circuits with up to millions of gates; packing them
//! 64-to-a-word keeps the marker tables cache-resident and makes the
//! front-retain and window walks branch on a single bit test.

/// A fixed-capacity bitset over `0..len` packed into `u64` words.
#[derive(Clone, Debug, Default)]
pub(crate) struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zero bitset of capacity `len`.
    pub fn new(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Clears every bit.
    #[allow(dead_code)]
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_across_word_boundaries() {
        let mut b = BitVec::new(130);
        assert_eq!(b.len(), 130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        b.clear(64);
        assert!(!b.get(64));
        assert!(b.get(63) && b.get(65));
        b.clear_all();
        for i in 0..130 {
            assert!(!b.get(i));
        }
    }
}
