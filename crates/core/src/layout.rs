//! The logical↔physical qubit assignment `φ`.

/// A bijective-on-its-image assignment of logical qubits to physical
/// qubits (the paper's `φ : Q_logical → Q_phys`), with the inverse kept in
/// sync for O(1) lookups both ways.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// `log_to_phys[l]` = physical qubit hosting logical `l`.
    log_to_phys: Vec<u32>,
    /// `phys_to_log[p]` = logical qubit hosted on `p`, or `u32::MAX`.
    phys_to_log: Vec<u32>,
}

impl Layout {
    /// Sentinel for unoccupied physical qubits.
    pub const FREE: u32 = u32::MAX;

    /// The identity layout `φ₀(qᵢ) = pᵢ` (the paper's trivial initial
    /// mapping, §V-B.4).
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the circuit.
    pub fn identity(n_logical: usize, n_physical: usize) -> Self {
        assert!(
            n_logical <= n_physical,
            "{n_logical} logical qubits exceed {n_physical} physical"
        );
        let mut phys_to_log = vec![Self::FREE; n_physical];
        for l in 0..n_logical {
            phys_to_log[l] = l as u32;
        }
        Layout {
            log_to_phys: (0..n_logical as u32).collect(),
            phys_to_log,
        }
    }

    /// Builds a layout from an explicit assignment
    /// (`assignment[logical] = physical`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not injective or out of range.
    pub fn from_assignment(assignment: &[u32], n_physical: usize) -> Self {
        let mut phys_to_log = vec![Self::FREE; n_physical];
        for (l, &p) in assignment.iter().enumerate() {
            assert!(
                (p as usize) < n_physical,
                "physical qubit {p} out of range {n_physical}"
            );
            assert_eq!(
                phys_to_log[p as usize],
                Self::FREE,
                "physical qubit {p} assigned twice"
            );
            phys_to_log[p as usize] = l as u32;
        }
        Layout {
            log_to_phys: assignment.to_vec(),
            phys_to_log,
        }
    }

    /// Number of logical qubits.
    pub fn n_logical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn n_physical(&self) -> usize {
        self.phys_to_log.len()
    }

    /// Physical qubit hosting logical `l`.
    pub fn phys(&self, l: u32) -> u32 {
        self.log_to_phys[l as usize]
    }

    /// Logical qubit hosted on physical `p`, if any.
    pub fn logical(&self, p: u32) -> Option<u32> {
        let l = self.phys_to_log[p as usize];
        (l != Self::FREE).then_some(l)
    }

    /// Applies a SWAP between physical qubits `p1` and `p2`
    /// (`φ ← φ ∘ s`).
    pub fn apply_swap(&mut self, p1: u32, p2: u32) {
        let l1 = self.phys_to_log[p1 as usize];
        let l2 = self.phys_to_log[p2 as usize];
        self.phys_to_log.swap(p1 as usize, p2 as usize);
        if l1 != Self::FREE {
            self.log_to_phys[l1 as usize] = p2;
        }
        if l2 != Self::FREE {
            self.log_to_phys[l2 as usize] = p1;
        }
    }

    /// The assignment vector (`[logical] → physical`).
    pub fn as_assignment(&self) -> &[u32] {
        &self.log_to_phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let l = Layout::identity(3, 5);
        for q in 0..3 {
            assert_eq!(l.phys(q), q);
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(4), None);
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut l = Layout::identity(3, 4);
        l.apply_swap(0, 1);
        assert_eq!(l.phys(0), 1);
        assert_eq!(l.phys(1), 0);
        assert_eq!(l.logical(0), Some(1));
        assert_eq!(l.logical(1), Some(0));
        // Swap with an empty physical slot moves the state.
        l.apply_swap(1, 3);
        assert_eq!(l.phys(0), 3);
        assert_eq!(l.logical(1), None);
        assert_eq!(l.logical(3), Some(0));
    }

    #[test]
    fn swap_is_involutive() {
        let mut l = Layout::identity(4, 4);
        l.apply_swap(2, 3);
        l.apply_swap(2, 3);
        assert_eq!(l, Layout::identity(4, 4));
    }

    #[test]
    fn from_assignment_respects_mapping() {
        let l = Layout::from_assignment(&[2, 0, 1], 4);
        assert_eq!(l.phys(0), 2);
        assert_eq!(l.logical(2), Some(0));
        assert_eq!(l.logical(3), None);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn rejects_non_injective() {
        let _ = Layout::from_assignment(&[1, 1], 3);
    }
}
