//! The shared incremental routing state ([`RoutingState`]).
//!
//! Every routing pass in the workspace — Qlosure and the four baseline
//! reimplementations — drives the same mutable state machine: a front
//! layer of dependence-ready gates, a logical↔physical [`Layout`], the
//! routed output circuit, per-physical-qubit decay and schedule-clock
//! tables, and the candidate-SWAP frontier. `RoutingState` maintains all
//! of it **incrementally**: executing a batch of ready gates or applying a
//! SWAP updates the affected entries in place (and returns an undo delta),
//! instead of recomputing the front layer, candidate set or clocks from
//! scratch every step.
//!
//! Two orderings of the candidate frontier are exposed because the paper's
//! mapper and the baselines enumerate SWAPs differently (and candidate
//! order feeds tie-breaking, which must stay bit-for-bit stable):
//!
//! * [`RoutingState::swap_candidates`] — edges incident to the *sorted
//!   physical* front qubits (the SABRE/Cirq/tket convention);
//! * [`RoutingState::swap_candidates_logical`] — edges incident to the
//!   *sorted logical* front qubits mapped through the layout (the Qlosure
//!   §V-D convention).
//!
//! # Apply/undo deltas
//!
//! [`RoutingState::apply_swap`] and [`RoutingState::execute_ready`] return
//! [`SwapDelta`] / [`ExecDelta`] tokens; feeding them back into
//! [`RoutingState::undo_swap`] / [`RoutingState::undo_execute`] restores
//! the state exactly (the property suite asserts fingerprint equality).
//! Search-style passes can therefore explore swap sequences on the real
//! state without cloning it; cost evaluation of a single speculative SWAP
//! has a cheaper layout-only path, [`RoutingState::speculate_swap`].

use crate::bits::BitVec;
use crate::layout::Layout;
use crate::MappingResult;
use circuit::{Circuit, DependenceGraph, Gate};
use topology::{CouplingGraph, DistanceMatrix};

/// Undo token for one applied SWAP (see [`RoutingState::apply_swap`]).
#[derive(Clone, Debug)]
pub struct SwapDelta {
    p1: u32,
    p2: u32,
    clock1: u32,
    clock2: u32,
    clock_max: u32,
    routed_len: usize,
}

/// Undo token for one [`RoutingState::execute_ready`] cascade.
#[derive(Clone, Debug)]
pub struct ExecDelta {
    /// How many gates the cascade executed (0 = nothing was ready and the
    /// state is unchanged).
    pub ran: usize,
    /// Executed gate indices in emission order.
    executed: Vec<u32>,
    /// The front layer as it was before the cascade.
    front_before: Vec<u32>,
    /// First-touch previous clock values of the physical qubits the
    /// executed gates advanced.
    clock_prev: Vec<(u32, u32)>,
    clock_max_before: u32,
    routed_len: usize,
}

/// A comparable snapshot of everything [`RoutingState`] mutates — used to
/// assert that apply-then-undo restores the state exactly. Floats are
/// captured as bit patterns so the comparison is exact, not approximate.
#[derive(Clone, Debug, PartialEq)]
pub struct StateFingerprint {
    front: Vec<u32>,
    indeg: Vec<u32>,
    assignment: Vec<u32>,
    routed: Vec<Gate>,
    swaps: usize,
    clock: Vec<u32>,
    clock_max: u32,
    decay_bits: Vec<u64>,
}

/// Mutable state of a swap-until-free routing loop, shared by every
/// routing pass in the workspace: front layer, layout, routed output,
/// decay/clock tables and the candidate-SWAP frontier, all maintained
/// incrementally with apply/undo deltas ([`SwapDelta`], [`ExecDelta`]).
pub struct RoutingState<'a> {
    circuit: &'a Circuit,
    device: &'a CouplingGraph,
    dist: &'a DistanceMatrix,
    dag: DependenceGraph,
    indeg: Vec<u32>,
    front: Vec<u32>,
    /// Bumped on every front-layer mutation; cache-invalidation signal for
    /// the candidate frontier and for pass-local look-ahead caches.
    front_version: u64,
    layout: Layout,
    routed: Circuit,
    initial_layout: Vec<u32>,
    swaps: usize,
    decay: Vec<f64>,
    clock: Vec<u32>,
    clock_max: u32,
    /// Front-membership bitset, kept in lockstep with `front`: bit `g` is
    /// set iff `g` is in the front layer.
    front_bits: BitVec,
    // --- reusable scratch (the incremental part) ---
    /// Ready-gate collection buffer for `execute_ready`.
    ready_buf: Vec<u32>,
    /// Per-gate marker bitset backing the O(front) retain in
    /// `execute_ready`.
    gate_mark: BitVec,
    /// First-touch stamps for clock-delta recording.
    touch_stamp: Vec<u32>,
    touch_epoch: u32,
    /// Cached sorted-deduplicated logical operands of the two-qubit front
    /// gates; valid while `fl_version == front_version`.
    fl_cache: Vec<u32>,
    fl_version: u64,
    /// Per-directed-edge stamps for duplicate-free candidate enumeration
    /// (a canonical pair `(lo, hi)` stamps the `lo -> hi` entry).
    edge_stamp: Vec<u64>,
    edge_epoch: u64,
}

impl<'a> RoutingState<'a> {
    /// Fresh state over `circuit`, `device` and the device's distance
    /// matrix `dist`, starting from `layout`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the device offers.
    pub fn new(
        circuit: &'a Circuit,
        device: &'a CouplingGraph,
        dist: &'a DistanceMatrix,
        layout: Layout,
    ) -> Self {
        assert!(
            circuit.n_qubits() <= device.n_qubits(),
            "circuit does not fit the device"
        );
        let dag = DependenceGraph::new(circuit);
        let indeg = dag.in_degrees();
        let front = dag.initial_front();
        let initial_layout = layout.as_assignment().to_vec();
        let n_gates = circuit.gates().len();
        let mut front_bits = BitVec::new(n_gates);
        for &g in &front {
            front_bits.set(g as usize);
        }
        RoutingState {
            circuit,
            device,
            dist,
            dag,
            indeg,
            front,
            front_version: 1,
            layout,
            routed: Circuit::with_capacity(device.n_qubits(), n_gates + n_gates / 4),
            initial_layout,
            swaps: 0,
            decay: vec![1.0; device.n_qubits()],
            clock: vec![0; device.n_qubits()],
            clock_max: 0,
            front_bits,
            ready_buf: Vec::new(),
            gate_mark: BitVec::new(n_gates),
            touch_stamp: vec![0; device.n_qubits()],
            touch_epoch: 0,
            fl_cache: Vec::new(),
            fl_version: 0,
            edge_stamp: vec![0; device.n_directed_edges()],
            edge_epoch: 0,
        }
    }

    // --- read-only accessors ---

    /// The logical circuit being routed.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The target coupling graph.
    pub fn device(&self) -> &CouplingGraph {
        self.device
    }

    /// The distance matrix routing distances come from.
    pub fn dist(&self) -> &DistanceMatrix {
        self.dist
    }

    /// The dependence DAG of the circuit.
    pub fn dag(&self) -> &DependenceGraph {
        &self.dag
    }

    /// Remaining unexecuted-predecessor count of gate `g`.
    pub fn in_degree(&self, g: u32) -> u32 {
        self.indeg[g as usize]
    }

    /// The current logical↔physical layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The front layer (dependence-ready gates), in maintenance order.
    pub fn front(&self) -> &[u32] {
        &self.front
    }

    /// Monotone counter bumped on every front-layer mutation — compare
    /// against a remembered value to invalidate pass-local caches.
    pub fn front_version(&self) -> u64 {
        self.front_version
    }

    /// Whether gate `g` is in the front layer — a single bit test against
    /// the front-membership bitset, for hot-path walks that would
    /// otherwise scan the front vector or load in-degrees.
    pub fn in_front(&self, g: u32) -> bool {
        self.front_bits.get(g as usize)
    }

    /// Whether every gate has been routed.
    pub fn is_done(&self) -> bool {
        self.front.is_empty()
    }

    /// SWAPs inserted so far.
    pub fn swaps(&self) -> usize {
        self.swaps
    }

    /// Gates emitted into the routed circuit so far.
    pub fn routed_len(&self) -> usize {
        self.routed.gates().len()
    }

    /// Decay of physical qubit `p` (starts at 1.0).
    pub fn decay(&self, p: u32) -> f64 {
        self.decay[p as usize]
    }

    /// Schedule clock of physical qubit `p`.
    pub fn clock(&self, p: u32) -> u32 {
        self.clock[p as usize]
    }

    /// Maximum over all schedule clocks.
    pub fn clock_max(&self) -> u32 {
        self.clock_max
    }

    /// The cycle a SWAP on `(p1, p2)` would finish at, under the evolving
    /// schedule: one past the later of the two qubit clocks.
    pub fn swap_completion(&self, p1: u32, p2: u32) -> u32 {
        self.clock[p1 as usize].max(self.clock[p2 as usize]) + 1
    }

    /// Whether gate `g` is executable under the current layout.
    pub fn executable(&self, g: u32) -> bool {
        match self.circuit.gates()[g as usize].qubit_pair() {
            Some((a, b)) => self
                .device
                .is_adjacent(self.layout.phys(a), self.layout.phys(b)),
            None => true,
        }
    }

    /// The blocked two-qubit gates of the front layer.
    pub fn blocked_front(&self) -> Vec<u32> {
        self.front
            .iter()
            .copied()
            .filter(|&g| self.circuit.gates()[g as usize].is_two_qubit())
            .collect()
    }

    /// Sum of current physical distances of the given gates.
    pub fn distance_sum(&self, gates: &[u32]) -> f64 {
        gates
            .iter()
            .filter_map(|&g| self.circuit.gates()[g as usize].qubit_pair())
            .map(|(a, b)| self.dist.get(self.layout.phys(a), self.layout.phys(b)) as f64)
            .sum()
    }

    /// The next `limit` upcoming two-qubit gates beyond the front, in
    /// topological (program) order.
    pub fn lookahead(&self, limit: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(limit);
        let mut visited = vec![false; self.dag.n_gates()];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> =
            std::collections::BinaryHeap::new();
        for &g in &self.front {
            visited[g as usize] = true;
            heap.push(std::cmp::Reverse(g));
        }
        while let Some(std::cmp::Reverse(g)) = heap.pop() {
            let in_front = self.indeg[g as usize] == 0;
            if !in_front && self.circuit.gates()[g as usize].is_two_qubit() {
                out.push(g);
                if out.len() >= limit {
                    break;
                }
            }
            for &s in self.dag.succs(g) {
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    heap.push(std::cmp::Reverse(s));
                }
            }
        }
        out
    }

    // --- candidate frontier (incrementally cached on the front layer) ---

    /// Sorted, deduplicated logical operands of the two-qubit front gates.
    /// Cached across SWAP steps — only a front-layer change recomputes it.
    pub fn front_logicals(&mut self) -> &[u32] {
        if self.fl_version != self.front_version {
            self.fl_cache.clear();
            for &g in &self.front {
                if let Some((a, b)) = self.circuit.gates()[g as usize].qubit_pair() {
                    self.fl_cache.push(a);
                    self.fl_cache.push(b);
                }
            }
            self.fl_cache.sort_unstable();
            self.fl_cache.dedup();
            self.fl_version = self.front_version;
        }
        &self.fl_cache
    }

    /// Sorted, deduplicated physical qubits hosting operands of blocked
    /// front gates.
    pub fn front_physicals(&mut self) -> Vec<u32> {
        self.front_logicals();
        let mut out: Vec<u32> = self.fl_cache.iter().map(|&l| self.layout.phys(l)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate SWAP edges incident to the blocked front, enumerated in
    /// **sorted-physical-qubit** order (deduplicated, first occurrence
    /// wins) — the ordering the baseline mappers score in.
    pub fn swap_candidates(&mut self) -> Vec<(u32, u32)> {
        let physicals = self.front_physicals();
        self.edge_epoch += 1;
        let mut out: Vec<(u32, u32)> = Vec::new();
        for p1 in physicals {
            push_incident_edges(
                self.device,
                p1,
                self.edge_epoch,
                &mut self.edge_stamp,
                &mut out,
            );
        }
        out
    }

    /// Candidate SWAP edges incident to the blocked front, enumerated in
    /// **sorted-logical-qubit** order mapped through the layout
    /// (deduplicated, first occurrence wins). Covers *every* front gate;
    /// the Qlosure pass instead draws its §V-D candidates from its
    /// look-ahead window, whose budget can exclude late front gates.
    pub fn swap_candidates_logical(&mut self) -> Vec<(u32, u32)> {
        self.front_logicals();
        self.edge_epoch += 1;
        let mut out: Vec<(u32, u32)> = Vec::new();
        for i in 0..self.fl_cache.len() {
            let p1 = self.layout.phys(self.fl_cache[i]);
            push_incident_edges(
                self.device,
                p1,
                self.edge_epoch,
                &mut self.edge_stamp,
                &mut out,
            );
        }
        out
    }

    // --- mutations (each returns / consumes an undo delta) ---

    /// Executes every currently executable front gate, **cascading**:
    /// freed successors that are themselves executable run in the same
    /// call. Ready gates execute in ascending index order per wave.
    /// Returns the undo delta (its [`ExecDelta::ran`] field is the number
    /// of gates executed).
    pub fn execute_ready(&mut self) -> ExecDelta {
        let mut delta = ExecDelta {
            ran: 0,
            executed: Vec::new(),
            front_before: Vec::new(),
            clock_prev: Vec::new(),
            clock_max_before: self.clock_max,
            routed_len: self.routed.gates().len(),
        };
        self.touch_epoch += 1;
        loop {
            let mut ready = std::mem::take(&mut self.ready_buf);
            ready.clear();
            ready.extend(self.front.iter().copied().filter(|&g| self.executable(g)));
            if ready.is_empty() {
                self.ready_buf = ready;
                return delta;
            }
            if delta.ran == 0 {
                delta.front_before = self.front.clone();
            }
            ready.sort_unstable();
            for &g in &ready {
                let gate = &self.circuit.gates()[g as usize];
                self.emit_mapped(gate);
                self.advance_clock_tracked(g, &mut delta.clock_prev);
                self.gate_mark.set(g as usize);
                self.front_bits.clear(g as usize);
            }
            delta.ran += ready.len();
            let mark = &self.gate_mark;
            self.front.retain(|&g| !mark.get(g as usize));
            for &g in &ready {
                self.gate_mark.clear(g as usize);
                for &s in self.dag.succs(g) {
                    self.indeg[s as usize] -= 1;
                    if self.indeg[s as usize] == 0 {
                        self.front.push(s);
                        self.front_bits.set(s as usize);
                    }
                }
            }
            delta.executed.extend_from_slice(&ready);
            self.front_version += 1;
            self.ready_buf = ready;
        }
    }

    /// Rolls back one [`execute_ready`](Self::execute_ready) cascade.
    /// Deltas must be undone in reverse application order.
    pub fn undo_execute(&mut self, delta: ExecDelta) {
        if delta.ran == 0 {
            return;
        }
        self.routed.truncate(delta.routed_len);
        for &g in &delta.executed {
            for &s in self.dag.succs(g) {
                self.indeg[s as usize] += 1;
            }
        }
        for &(p, prev) in &delta.clock_prev {
            self.clock[p as usize] = prev;
        }
        self.clock_max = delta.clock_max_before;
        for &g in &self.front {
            self.front_bits.clear(g as usize);
        }
        self.front = delta.front_before;
        for &g in &self.front {
            self.front_bits.set(g as usize);
        }
        self.front_version += 1;
    }

    /// Emits a SWAP on the coupled pair `(p1, p2)`: appends the gate,
    /// updates the layout, advances both schedule clocks to the swap's
    /// completion cycle and counts it. Returns the undo delta.
    pub fn apply_swap(&mut self, p1: u32, p2: u32) -> SwapDelta {
        debug_assert!(self.device.is_adjacent(p1, p2), "swap on uncoupled pair");
        let delta = SwapDelta {
            p1,
            p2,
            clock1: self.clock[p1 as usize],
            clock2: self.clock[p2 as usize],
            clock_max: self.clock_max,
            routed_len: self.routed.gates().len(),
        };
        self.routed.swap(p1, p2);
        self.layout.apply_swap(p1, p2);
        let done = self.clock[p1 as usize].max(self.clock[p2 as usize]) + 1;
        self.clock[p1 as usize] = done;
        self.clock[p2 as usize] = done;
        self.clock_max = self.clock_max.max(done);
        self.swaps += 1;
        delta
    }

    /// Rolls back one [`apply_swap`](Self::apply_swap). Deltas must be
    /// undone in reverse application order.
    pub fn undo_swap(&mut self, delta: SwapDelta) {
        self.layout.apply_swap(delta.p1, delta.p2);
        self.clock[delta.p1 as usize] = delta.clock1;
        self.clock[delta.p2 as usize] = delta.clock2;
        self.clock_max = delta.clock_max;
        self.routed.truncate(delta.routed_len);
        self.swaps -= 1;
    }

    /// Applies `(p1, p2)` to the **layout only**, evaluates `f` on the
    /// speculative state, and undoes the layout change — the cheap path
    /// for scoring a candidate SWAP without touching clocks or the routed
    /// circuit.
    pub fn speculate_swap<R>(&mut self, p1: u32, p2: u32, f: impl FnOnce(&Self) -> R) -> R {
        self.layout.apply_swap(p1, p2);
        let r = f(self);
        self.layout.apply_swap(p1, p2);
        r
    }

    /// Routes the front gate `g` directly along a shortest path (forced
    /// progress for heuristics that stall).
    pub fn force_route(&mut self, g: u32) {
        let (a, b) = self.circuit.gates()[g as usize]
            .qubit_pair()
            .expect("blocked gates are two-qubit");
        let (pa, pb) = (self.layout.phys(a), self.layout.phys(b));
        let path = self.device.shortest_path(pa, pb).expect("connected device");
        for win in path.windows(2).take(path.len().saturating_sub(2)) {
            self.apply_swap(win[0], win[1]);
        }
    }

    // --- decay table ---

    /// Resets every decay entry to 1.0.
    pub fn reset_decay(&mut self) {
        self.decay.fill(1.0);
    }

    /// Adds `delta` to the decay of physical qubit `p`.
    pub fn bump_decay(&mut self, p: u32, delta: f64) {
        self.decay[p as usize] += delta;
    }

    // --- finish / inspect ---

    /// Finishes the loop, producing the result.
    ///
    /// Debug builds assert that routing is complete.
    pub fn into_result(self) -> MappingResult {
        debug_assert!(self.front.is_empty(), "routing ended with pending gates");
        MappingResult {
            routed: self.routed,
            final_layout: self.layout.as_assignment().to_vec(),
            initial_layout: self.initial_layout,
            swaps: self.swaps,
        }
    }

    /// Exact snapshot of the mutable state, for apply/undo verification.
    pub fn fingerprint(&self) -> StateFingerprint {
        StateFingerprint {
            front: self.front.clone(),
            indeg: self.indeg.clone(),
            assignment: self.layout.as_assignment().to_vec(),
            routed: self.routed.gates().to_vec(),
            swaps: self.swaps,
            clock: self.clock.clone(),
            clock_max: self.clock_max,
            decay_bits: self.decay.iter().map(|d| d.to_bits()).collect(),
        }
    }

    /// Emits `gate` with operands translated through the layout.
    fn emit_mapped(&mut self, gate: &Gate) {
        let mapped = Gate {
            kind: gate.kind.clone(),
            qubits: gate.qubits.iter().map(|&q| self.layout.phys(q)).collect(),
            params: gate.params.clone(),
        };
        self.routed.push(mapped);
    }

    /// Advances the schedule clocks for executed gate `g`, recording
    /// first-touch previous values into `prev` for undo.
    fn advance_clock_tracked(&mut self, g: u32, prev: &mut Vec<(u32, u32)>) {
        let gate = &self.circuit.gates()[g as usize];
        if gate.qubits.is_empty() {
            return;
        }
        let ready = gate
            .qubits
            .iter()
            .map(|&q| self.clock[self.layout.phys(q) as usize])
            .max()
            .expect("non-empty");
        let dur = u32::from(gate.is_scheduled());
        let done = ready + dur;
        for &q in &gate.qubits {
            let p = self.layout.phys(q);
            if self.touch_stamp[p as usize] != self.touch_epoch {
                self.touch_stamp[p as usize] = self.touch_epoch;
                prev.push((p, self.clock[p as usize]));
            }
            self.clock[p as usize] = done;
        }
        self.clock_max = self.clock_max.max(done);
    }
}

/// Appends every coupling edge incident to `p1` as a canonical `(lo, hi)`
/// pair, skipping pairs already stamped with `epoch` — the O(1) dedup
/// behind the candidate frontiers. Each canonical pair stamps its
/// `lo -> hi` directed CSR entry, so one epoch bump starts a fresh set
/// without clearing the stamp table.
pub(crate) fn push_incident_edges(
    device: &CouplingGraph,
    p1: u32,
    epoch: u64,
    stamp: &mut [u64],
    out: &mut Vec<(u32, u32)>,
) {
    for &p2 in device.neighbors(p1) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let slot = device.edge_index(lo, hi).expect("coupled pair");
        if stamp[slot] != epoch {
            stamp[slot] = epoch;
            out.push((lo, hi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::backends;

    #[test]
    fn execute_ready_cascades_through_single_qubit_gates() {
        let device = backends::line(3);
        let dist = device.distances();
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.h(1);
        c.cx(1, 2);
        let layout = Layout::identity(3, 3);
        let mut st = RoutingState::new(&c, &device, &dist, layout);
        let ran = st.execute_ready().ran;
        assert_eq!(ran, 4);
        assert!(st.is_done());
        assert_eq!(st.routed_len(), 4);
    }

    #[test]
    fn blocked_front_and_candidates() {
        let device = backends::line(4);
        let dist = device.distances();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(4, 4));
        assert_eq!(st.execute_ready().ran, 0);
        assert_eq!(st.blocked_front(), vec![0]);
        assert_eq!(st.front_physicals(), vec![0, 3]);
        assert_eq!(st.front_logicals(), &[0, 3]);
        let cands = st.swap_candidates();
        assert!(cands.contains(&(0, 1)) && cands.contains(&(2, 3)));
        assert_eq!(cands.len(), 2);
        assert_eq!(st.swap_candidates_logical(), cands);
    }

    #[test]
    fn force_route_unblocks() {
        let device = backends::line(5);
        let dist = device.distances();
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(5, 5));
        st.execute_ready();
        st.force_route(0);
        assert_eq!(st.execute_ready().ran, 1);
        assert!(st.is_done());
        assert_eq!(st.swaps(), 3);
    }

    #[test]
    fn lookahead_respects_topological_order() {
        let device = backends::line(6);
        let dist = device.distances();
        let mut c = Circuit::new(6);
        c.cx(0, 5); // blocked
        c.cx(5, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(6, 6));
        st.execute_ready();
        let la = st.lookahead(2);
        assert_eq!(la, vec![1, 2]);
    }

    #[test]
    fn swap_apply_undo_restores_fingerprint() {
        let device = backends::ring(6);
        let dist = device.distances();
        let mut c = Circuit::new(6);
        c.cx(0, 3);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(6, 6));
        st.execute_ready();
        let before = st.fingerprint();
        let d = st.apply_swap(0, 1);
        assert_ne!(st.fingerprint(), before);
        st.undo_swap(d);
        assert_eq!(st.fingerprint(), before);
    }

    #[test]
    fn execute_apply_undo_restores_fingerprint() {
        let device = backends::line(4);
        let dist = device.distances();
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(0, 3); // blocked after the first two run
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(4, 4));
        let before = st.fingerprint();
        let d = st.execute_ready();
        assert_eq!(d.ran, 2);
        assert_ne!(st.fingerprint(), before);
        st.undo_execute(d);
        assert_eq!(st.fingerprint(), before);
        // Redo is deterministic.
        let d2 = st.execute_ready();
        assert_eq!(d2.ran, 2);
    }

    #[test]
    fn empty_execute_delta_is_a_noop_undo() {
        let device = backends::line(4);
        let dist = device.distances();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(4, 4));
        st.execute_ready();
        let before = st.fingerprint();
        let d = st.execute_ready(); // nothing ready: blocked front
        assert_eq!(d.ran, 0);
        st.undo_execute(d);
        assert_eq!(st.fingerprint(), before);
    }

    #[test]
    fn speculate_swap_leaves_state_untouched() {
        let device = backends::line(4);
        let dist = device.distances();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(4, 4));
        st.execute_ready();
        let before = st.fingerprint();
        let d = st.speculate_swap(0, 1, |s| {
            s.dist().get(s.layout().phys(0), s.layout().phys(3))
        });
        assert_eq!(d, 2); // one hop closer under the speculative layout
        assert_eq!(st.fingerprint(), before);
    }

    #[test]
    fn front_logicals_cache_tracks_front_changes() {
        let device = backends::line(5);
        let dist = device.distances();
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(1, 2);
        let mut st = RoutingState::new(&c, &device, &dist, Layout::identity(5, 5));
        assert_eq!(st.front_logicals(), &[0, 1, 2, 4]);
        let v = st.front_version();
        st.execute_ready(); // runs cx(1,2); cx(0,4) stays blocked
        assert!(st.front_version() > v);
        assert_eq!(st.front_logicals(), &[0, 4]);
        // A swap does not invalidate the (logical) cache.
        let v = st.front_version();
        st.apply_swap(0, 1);
        assert_eq!(st.front_version(), v);
        assert_eq!(st.front_logicals(), &[0, 4]);
    }
}
