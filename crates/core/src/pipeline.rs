//! The QASM-in / QASM-out endpoints of the mapping pipeline.
//!
//! [`route_qasm`] is the full multi-stage story: parse OpenQASM, convert
//! to the circuit IR, run a [`MappingPipeline`](crate::MappingPipeline)
//! (ω-weights analysis → layout → dependence-driven routing → independent
//! verification), and emit the mapped program back as QASM with its
//! layout annotation.

use crate::pass::VerifyPass;
use crate::{MappingResult, QlosureConfig, QlosureMapper};
use circuit::Circuit;
use std::fmt;
use topology::CouplingGraph;

/// Errors of the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// QASM parsing failed.
    Parse(qasm::ParseError),
    /// The parsed program could not be converted to the circuit IR.
    Convert(circuit::ConvertError),
    /// The circuit needs more qubits than the device offers.
    DeviceTooSmall {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// The device's coupling graph is disconnected, so some qubit pairs
    /// can never be brought adjacent and routing would not terminate.
    DisconnectedDevice {
        /// Back-end name of the rejected device.
        device: String,
    },
    /// A post pass (verification, metrics) rejected the mapping result.
    Post {
        /// Name of the failing pass.
        pass: String,
        /// What it rejected the result for.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Convert(e) => write!(f, "conversion error: {e}"),
            PipelineError::DeviceTooSmall { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but device has {available}"
            ),
            PipelineError::DisconnectedDevice { device } => write!(
                f,
                "device `{device}` is disconnected: qubits in different \
                 components can never be made adjacent by SWAPs"
            ),
            PipelineError::Post { pass, message } => {
                write!(f, "post pass `{pass}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Convert(e) => Some(e),
            PipelineError::DeviceTooSmall { .. }
            | PipelineError::DisconnectedDevice { .. }
            | PipelineError::Post { .. } => None,
        }
    }
}

impl From<qasm::ParseError> for PipelineError {
    fn from(e: qasm::ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<circuit::ConvertError> for PipelineError {
    fn from(e: circuit::ConvertError) -> Self {
        PipelineError::Convert(e)
    }
}

/// Parses OpenQASM source, routes it onto `device` with the Qlosure
/// pipeline (weights analysis → layout → routing → verification), and
/// returns the mapped program's QASM text together with the full
/// [`MappingResult`].
///
/// The emitted program is annotated with the initial layout as a comment
/// so downstream tools can recover the logical↔physical correspondence.
///
/// # Errors
///
/// Returns [`PipelineError`] for malformed QASM, unsupported gates, or a
/// device smaller than the circuit.
///
/// # Example
///
/// ```
/// use qlosure::{route_qasm, QlosureConfig};
/// use topology::backends;
///
/// let src = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[3];
/// cx q[0], q[2];
/// "#;
/// let device = backends::line(3);
/// let (mapped, result) = route_qasm(src, &device, &QlosureConfig::default())?;
/// assert!(result.swaps >= 1); // q[0] and q[2] are not adjacent on a line
/// assert!(mapped.contains("swap"));
/// # Ok::<(), qlosure::PipelineError>(())
/// ```
pub fn route_qasm(
    src: &str,
    device: &CouplingGraph,
    config: &QlosureConfig,
) -> Result<(String, MappingResult), PipelineError> {
    let program = qasm::parse(src)?;
    let circuit = Circuit::from_qasm(&program)?;
    let mapper = QlosureMapper::with_config(config.clone());
    let pipeline = mapper.to_pipeline().with_post(VerifyPass);
    let outcome = pipeline.run(&circuit, device)?;
    let result = outcome.result;
    let mut text = String::new();
    text.push_str(&format!("// mapped onto {}\n", device.name()));
    let layout: Vec<String> = result
        .initial_layout
        .iter()
        .enumerate()
        .map(|(l, p)| format!("q[{l}]->p[{p}]"))
        .collect();
    text.push_str(&format!("// initial layout: {}\n", layout.join(" ")));
    text.push_str(&qasm::emit(&result.routed.to_qasm()));
    Ok((text, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;
    use topology::backends;

    #[test]
    fn pipeline_round_trip() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n\
                   h q[0];\ncx q[0], q[3];\ncx q[1], q[2];\n";
        let device = backends::line(4);
        let (text, result) = route_qasm(src, &device, &QlosureConfig::default()).unwrap();
        assert!(text.contains("OPENQASM 2.0"));
        assert!(text.contains("initial layout"));
        assert!(result.swaps >= 2);
        // The emitted QASM must re-parse.
        let reparsed = qasm::parse(text.trim_start_matches(|c| c != 'O')).unwrap();
        assert_eq!(reparsed.qubit_count(), 4);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\ncx q[0], q[4];\n";
        let device = backends::line(3);
        let err = route_qasm(src, &device, &QlosureConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::DeviceTooSmall { .. }));
    }

    #[test]
    fn propagates_parse_errors() {
        let err = route_qasm("qreg q[", &backends::line(2), &QlosureConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
    }

    #[test]
    fn error_source_chain_reaches_the_wrapped_error() {
        // Parse errors: the chain must surface the qasm::ParseError.
        let err = route_qasm("qreg q[", &backends::line(2), &QlosureConfig::default()).unwrap_err();
        let source = err.source().expect("parse error must expose a source");
        assert!(
            source.downcast_ref::<qasm::ParseError>().is_some(),
            "source must be the wrapped qasm::ParseError, got: {source}"
        );

        // Convert errors: constructed directly so this arm cannot rot if
        // the parser learns to handle inputs that used to fail conversion.
        let err = PipelineError::from(circuit::ConvertError::UnsupportedGate {
            name: "ccczz".into(),
            arity: 5,
        });
        assert!(matches!(err, PipelineError::Convert(_)));
        let source = err.source().expect("convert error must expose a source");
        assert!(source.downcast_ref::<circuit::ConvertError>().is_some());

        // Structural errors carry no source.
        let err = PipelineError::DeviceTooSmall {
            needed: 5,
            available: 3,
        };
        assert!(err.source().is_none());
        let err = PipelineError::DisconnectedDevice {
            device: "two islands".into(),
        };
        assert!(err.source().is_none());
        let err = PipelineError::Post {
            pass: "verify".into(),
            message: "bad".into(),
        };
        assert!(err.source().is_none());
    }

    #[test]
    fn rejects_disconnected_device() {
        // Two 2-qubit islands: without the entry check, a gate spanning
        // components would spin in `route_with` forever (its distance stays
        // UNREACHABLE and no SWAP can reduce it).
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncx q[0], q[3];\n";
        let device = topology::CouplingGraph::new("two islands", 4, &[(0, 1), (2, 3)]);
        let err = route_qasm(src, &device, &QlosureConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::DisconnectedDevice { .. }));
        assert!(err.to_string().contains("disconnected"));
    }
}
