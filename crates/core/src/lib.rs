//! # Qlosure — dependence-driven qubit mapping with affine abstractions
//!
//! Reproduction of *Dependence-Driven, Scalable Quantum Circuit Mapping
//! with Affine Abstractions* (CGO 2026). Qlosure repairs the connectivity
//! of two-qubit gates on restricted coupling graphs by inserting SWAPs,
//! choosing each SWAP with a cost function driven by **transitive
//! dependence weights**: the number of downstream gates each look-ahead
//! gate transitively blocks, computed from a polyhedral (Presburger)
//! encoding of the circuit with a graph fallback (see the [`affine`]
//! crate).
//!
//! The crate is organized as a **staged pass pipeline** (see the [`pass`]
//! module): every mapper — Qlosure here, the four baselines in the
//! `baselines` crate — is a [`MappingPipeline`] composition of
//! [`AnalysisPass`] → [`LayoutPass`] → [`RoutingPass`] → [`PostPass`]
//! stages over one shared incremental [`RoutingState`]. The crate exposes:
//!
//! * [`QlosureMapper`] — the paper's Algorithm 1 as the composition
//!   `weights → layout → qlosure-route`, configurable via
//!   [`QlosureConfig`] (including the §VI-E ablation variants);
//! * [`RoutingState`] — the incremental front-layer / decay / clock /
//!   candidate-SWAP state machine with apply/undo deltas, shared by every
//!   routing pass;
//! * [`Mapper`] / [`MappingResult`] — the interface shared with the
//!   baseline mappers (`Mapper::map` stays a thin adapter over the
//!   pipeline; [`Mapper::pipeline`] exposes the composition for per-pass
//!   timing);
//! * [`route_qasm`] — the QASM-in/QASM-out endpoints of the pipeline.
//!
//! # Quickstart
//!
//! ```
//! use qlosure::{Mapper, QlosureMapper};
//! use circuit::Circuit;
//! use topology::backends;
//!
//! // A GHZ ladder on a line topology: every other CX needs routing.
//! let mut c = Circuit::new(5);
//! c.h(0);
//! for i in 0..4 {
//!     c.cx(0, i + 1);
//! }
//! let device = backends::line(5);
//! let result = QlosureMapper::default().map(&c, &device);
//! // The routed circuit is hardware-valid:
//! circuit::verify_routing(
//!     &c,
//!     &result.routed,
//!     &|a, b| device.is_adjacent(a, b),
//!     &result.initial_layout,
//! )
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod cost;
mod layout;
pub mod pass;
mod pipeline;
mod router;
mod state;

pub use cost::{CostVariant, OmegaScaling, ScoredGate, SwapCost};
pub use layout::Layout;
pub use pass::{
    run_mapper_timed, AnalysisPass, Artifacts, DependenceWeightsPass, FidelityPass,
    FixedLayoutPass, IdentityLayoutPass, LayoutPass, MappingPipeline, MetricsPass, PassContext,
    PassStage, PassTiming, PipelineOutcome, PostPass, RoutingPass, TimedMapRun, VerifyPass,
};
pub use pipeline::{route_qasm, PipelineError};
pub use router::{
    BidirectionalLayoutPass, InitialMapping, QlosureConfig, QlosureMapper, QlosureRoutingPass,
};
pub use state::{ExecDelta, RoutingState, StateFingerprint, SwapDelta};

use circuit::Circuit;
use topology::CouplingGraph;

/// The outcome of mapping a circuit onto a device.
#[derive(Clone, Debug, PartialEq)]
pub struct MappingResult {
    /// The routed circuit over *physical* qubits, SWAPs included.
    pub routed: Circuit,
    /// Initial layout: `initial_layout[logical] = physical`.
    pub initial_layout: Vec<u32>,
    /// Final layout after all SWAPs: `final_layout[logical] = physical`.
    pub final_layout: Vec<u32>,
    /// Number of SWAP gates inserted.
    pub swaps: usize,
}

impl MappingResult {
    /// Depth of the routed circuit (unit-gate model).
    pub fn depth(&self) -> usize {
        self.routed.depth()
    }

    /// Depth increase over the unrouted circuit, the Δ of the paper's
    /// Fig. 2.
    pub fn depth_delta(&self, original: &Circuit) -> isize {
        self.depth() as isize - original.depth() as isize
    }
}

/// A qubit mapper: routes a logical circuit onto a coupling graph.
///
/// Implemented by [`QlosureMapper`] and by every baseline in the
/// `baselines` crate, so the evaluation harness can drive them uniformly.
/// Built-in mappers are pass compositions: their [`Mapper::map`] is a thin
/// adapter over [`Mapper::pipeline`], which harnesses use to collect
/// per-pass timings.
pub trait Mapper {
    /// Short identifier used in result tables (e.g. `"qlosure"`).
    fn name(&self) -> &str;

    /// Routes `circuit` onto `device`.
    ///
    /// Implementations must return a [`MappingResult`] that passes
    /// [`circuit::verify_routing`] against the original circuit.
    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult;

    /// The staged pass composition behind this mapper, when it is
    /// pipeline-based. Running the returned pipeline produces a result
    /// identical to [`Mapper::map`], plus per-pass timings. Opaque
    /// mappers (the default) return `None`.
    fn pipeline(&self) -> Option<MappingPipeline> {
        None
    }
}
