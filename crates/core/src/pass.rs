//! The staged pass-pipeline architecture.
//!
//! Mapping a circuit is a multi-stage story — analyze dependences, choose
//! an initial layout, route, then verify/measure — and every mapper in the
//! workspace is a *composition of passes* over the shared incremental
//! [`RoutingState`], not a bespoke loop. The stages:
//!
//! 1. **[`AnalysisPass`]** — produces typed artifacts (e.g. the
//!    [`affine::DependenceAnalysis`] ω-weights) into an [`Artifacts`] map
//!    keyed by type;
//! 2. **[`LayoutPass`]** — produces the initial logical→physical
//!    [`Layout`] ([`IdentityLayoutPass`], [`FixedLayoutPass`], or the
//!    SABRE-style [`crate::BidirectionalLayoutPass`]);
//! 3. **[`RoutingPass`]** — consumes a [`RoutingState`] seeded with that
//!    layout and drives it to completion;
//! 4. **[`PostPass`]** — validates or measures the finished
//!    [`MappingResult`] ([`VerifyPass`], [`MetricsPass`]).
//!
//! [`MappingPipeline`] composes one routing pass and one layout pass with
//! any number of analysis/post passes, times every pass, and returns a
//! [`PipelineOutcome`] carrying the result, per-pass timings and post-pass
//! metrics. `Mapper::map` on every built-in mapper is a thin adapter over
//! its pipeline, and `Mapper::pipeline` exposes the composition so
//! harnesses (the batch engine, the bench binaries) can record per-pass
//! timings.
//!
//! # Composing a pipeline
//!
//! ```
//! use affine::WeightMode;
//! use circuit::Circuit;
//! use qlosure::{
//!     DependenceWeightsPass, IdentityLayoutPass, MappingPipeline, MetricsPass, QlosureConfig,
//!     QlosureRoutingPass,
//! };
//! use topology::backends;
//!
//! let mut c = Circuit::new(3);
//! c.cx(0, 2); // not adjacent on a line: needs a SWAP
//! let device = backends::line(3);
//! let pipeline = MappingPipeline::new(
//!     IdentityLayoutPass,
//!     QlosureRoutingPass::new(QlosureConfig::default()),
//! )
//! .with_analysis(DependenceWeightsPass::new(WeightMode::Auto))
//! .with_post(MetricsPass);
//! let outcome = pipeline.run(&c, &device)?;
//! assert!(outcome.result.swaps >= 1);
//! assert_eq!(outcome.timings.len(), 4); // weights, identity, qlosure, metrics
//! assert!(outcome.metrics.iter().any(|(k, _)| k == "swaps"));
//! # Ok::<(), qlosure::PipelineError>(())
//! ```

use crate::layout::Layout;
use crate::pipeline::PipelineError;
use crate::state::RoutingState;
use crate::MappingResult;
use affine::{DependenceAnalysis, WeightMode};
use circuit::Circuit;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;
use topology::{CouplingGraph, DistanceMatrix, NoiseModel};

/// Read-only inputs shared by every pass of one pipeline run.
pub struct PassContext<'a> {
    /// The logical circuit being mapped.
    pub circuit: &'a Circuit,
    /// The target coupling graph.
    pub device: &'a CouplingGraph,
    /// The distance matrix routing costs come from (hop counts by
    /// default; reliability-weighted for noise-aware runs).
    pub dist: &'a DistanceMatrix,
}

/// Typed artifact store filled by [`AnalysisPass`]es and read by later
/// stages, keyed by artifact type (one artifact per type).
#[derive(Default)]
pub struct Artifacts {
    inner: HashMap<TypeId, Box<dyn Any + Send + Sync>>,
}

impl Artifacts {
    /// Stores `artifact`, replacing any previous artifact of the same
    /// type.
    pub fn insert<T: Any + Send + Sync>(&mut self, artifact: T) {
        self.inner.insert(TypeId::of::<T>(), Box::new(artifact));
    }

    /// The artifact of type `T`, if an analysis pass produced one.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.inner
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref())
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no artifacts have been stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// A pass that derives typed artifacts from the input circuit/device
/// before layout and routing run.
pub trait AnalysisPass: Send + Sync {
    /// Short identifier used in timing reports.
    fn name(&self) -> &'static str;
    /// Runs the analysis, inserting artifacts into `artifacts`.
    fn run(&self, ctx: &PassContext<'_>, artifacts: &mut Artifacts);
}

/// A pass that chooses the initial logical→physical assignment.
pub trait LayoutPass: Send + Sync {
    /// Short identifier used in timing reports.
    fn name(&self) -> &'static str;
    /// Produces the initial layout.
    fn run(&self, ctx: &PassContext<'_>, artifacts: &Artifacts) -> Layout;
}

/// A pass that drives a [`RoutingState`] to completion (the hot stage).
pub trait RoutingPass: Send + Sync {
    /// Short identifier used in timing reports.
    fn name(&self) -> &'static str;
    /// Routes until `state.is_done()`.
    fn run(&self, state: &mut RoutingState<'_>, artifacts: &Artifacts);
}

/// A pass that validates or measures the finished mapping.
pub trait PostPass: Send + Sync {
    /// Short identifier used in timing reports.
    fn name(&self) -> &'static str;
    /// Inspects the result; returns named integer metrics, or an error
    /// message to fail the pipeline.
    ///
    /// # Errors
    ///
    /// An `Err` aborts the pipeline with [`PipelineError::Post`].
    fn run(
        &self,
        ctx: &PassContext<'_>,
        result: &MappingResult,
    ) -> Result<Vec<(String, i64)>, String>;
}

/// Which pipeline stage a timing entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassStage {
    /// An [`AnalysisPass`].
    Analysis,
    /// The [`LayoutPass`].
    Layout,
    /// The [`RoutingPass`].
    Routing,
    /// A [`PostPass`].
    Post,
}

impl fmt::Display for PassStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PassStage::Analysis => "analysis",
            PassStage::Layout => "layout",
            PassStage::Routing => "routing",
            PassStage::Post => "post",
        })
    }
}

/// Wall-clock of one executed pass.
#[derive(Clone, Debug)]
pub struct PassTiming {
    /// The stage the pass ran in.
    pub stage: PassStage,
    /// The pass's name.
    pub pass: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl PassTiming {
    /// `stage:name` label used as a report column key.
    pub fn label(&self) -> String {
        format!("{}:{}", self.stage, self.pass)
    }
}

/// The outcome of one [`MappingPipeline::run`].
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The mapping result (identical to what the mapper's plain
    /// `Mapper::map` adapter returns).
    pub result: MappingResult,
    /// Per-pass wall-clock timings, in execution order.
    pub timings: Vec<PassTiming>,
    /// Named integer metrics collected from the post passes.
    pub metrics: Vec<(String, i64)>,
}

/// A staged mapper: analyses, one layout pass, one routing pass, post
/// passes — run in that order over a shared [`RoutingState`].
pub struct MappingPipeline {
    analyses: Vec<Box<dyn AnalysisPass>>,
    layout: Box<dyn LayoutPass>,
    routing: Box<dyn RoutingPass>,
    post: Vec<Box<dyn PostPass>>,
}

impl MappingPipeline {
    /// A pipeline from its two mandatory stages.
    pub fn new(layout: impl LayoutPass + 'static, routing: impl RoutingPass + 'static) -> Self {
        MappingPipeline {
            analyses: Vec::new(),
            layout: Box::new(layout),
            routing: Box::new(routing),
            post: Vec::new(),
        }
    }

    /// Appends an analysis pass (analyses run in insertion order).
    #[must_use]
    pub fn with_analysis(mut self, pass: impl AnalysisPass + 'static) -> Self {
        self.analyses.push(Box::new(pass));
        self
    }

    /// Appends a post pass (post passes run in insertion order).
    #[must_use]
    pub fn with_post(mut self, pass: impl PostPass + 'static) -> Self {
        self.post.push(Box::new(pass));
        self
    }

    /// The pass composition as a `a → b → c` description string.
    pub fn describe(&self) -> String {
        let mut names: Vec<&'static str> = Vec::new();
        names.extend(self.analyses.iter().map(|p| p.name()));
        names.push(self.layout.name());
        names.push(self.routing.name());
        names.extend(self.post.iter().map(|p| p.name()));
        names.join(" → ")
    }

    /// Runs the pipeline with the device's (cached) hop-count distances.
    ///
    /// # Errors
    ///
    /// [`PipelineError::DeviceTooSmall`] when the circuit does not fit,
    /// [`PipelineError::DisconnectedDevice`] when the coupling graph has
    /// more than one component (routing could not terminate),
    /// [`PipelineError::Post`] when a post pass rejects the result.
    pub fn run(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
    ) -> Result<PipelineOutcome, PipelineError> {
        let dist = device.shared_distances();
        self.run_with_distances(circuit, device, &dist)
    }

    /// Runs the pipeline with an explicit distance matrix (e.g. the
    /// reliability-weighted distances of a noise model).
    ///
    /// # Errors
    ///
    /// Same as [`MappingPipeline::run`].
    pub fn run_with_distances(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        dist: &DistanceMatrix,
    ) -> Result<PipelineOutcome, PipelineError> {
        if circuit.n_qubits() > device.n_qubits() {
            return Err(PipelineError::DeviceTooSmall {
                needed: circuit.n_qubits(),
                available: device.n_qubits(),
            });
        }
        // A disconnected device would make routing non-terminating: a gate
        // spanning components keeps distance UNREACHABLE forever and the
        // stall limit (scaled by the finite diameter) never fires.
        if !device.is_connected() {
            return Err(PipelineError::DisconnectedDevice {
                device: device.name().to_string(),
            });
        }
        let ctx = PassContext {
            circuit,
            device,
            dist,
        };
        let mut timings: Vec<PassTiming> = Vec::new();
        let mut artifacts = Artifacts::default();
        for pass in &self.analyses {
            let _span = trace::span_label("analysis", pass.name());
            let t0 = Instant::now();
            pass.run(&ctx, &mut artifacts);
            timings.push(PassTiming {
                stage: PassStage::Analysis,
                pass: pass.name().to_string(),
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
        let layout = {
            let _span = trace::span_label("layout", self.layout.name());
            let t0 = Instant::now();
            let layout = self.layout.run(&ctx, &artifacts);
            timings.push(PassTiming {
                stage: PassStage::Layout,
                pass: self.layout.name().to_string(),
                seconds: t0.elapsed().as_secs_f64(),
            });
            layout
        };
        let mut state = RoutingState::new(circuit, device, dist, layout);
        {
            let _span = trace::span_label("routing", self.routing.name());
            let t0 = Instant::now();
            self.routing.run(&mut state, &artifacts);
            timings.push(PassTiming {
                stage: PassStage::Routing,
                pass: self.routing.name().to_string(),
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
        let result = state.into_result();
        let mut metrics: Vec<(String, i64)> = Vec::new();
        for pass in &self.post {
            let _span = trace::span_label("post", pass.name());
            let t0 = Instant::now();
            let out = pass.run(&ctx, &result);
            timings.push(PassTiming {
                stage: PassStage::Post,
                pass: pass.name().to_string(),
                seconds: t0.elapsed().as_secs_f64(),
            });
            match out {
                Ok(m) => metrics.extend(m),
                Err(message) => {
                    return Err(PipelineError::Post {
                        pass: pass.name().to_string(),
                        message,
                    })
                }
            }
        }
        Ok(PipelineOutcome {
            result,
            timings,
            metrics,
        })
    }

    /// [`MappingPipeline::run`] with the error path collapsed to a panic —
    /// the thin-adapter form behind every `Mapper::map`.
    ///
    /// # Panics
    ///
    /// Panics when the pipeline errors (circuit larger than the device, or
    /// a post pass rejecting the result).
    pub fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        match self.run(circuit, device) {
            Ok(outcome) => outcome.result,
            Err(e) => panic!("mapping pipeline `{}` failed: {e}", self.describe()),
        }
    }
}

impl fmt::Debug for MappingPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappingPipeline")
            .field("passes", &self.describe())
            .finish()
    }
}

/// The outcome of [`run_mapper_timed`]: the mapping result plus whatever
/// pipeline telemetry the mapper exposes.
#[derive(Debug)]
pub struct TimedMapRun {
    /// The mapping result (identical to `Mapper::map`).
    pub result: MappingResult,
    /// The pass composition description; empty for opaque mappers.
    pub pipeline: String,
    /// Per-pass wall-clock timings (`stage:name`, seconds) in execution
    /// order; empty for opaque mappers.
    pub passes: Vec<(String, f64)>,
}

/// Runs `mapper` through its pass pipeline when it has one — collecting
/// the composition description and per-pass timings — or through its
/// plain `map` adapter otherwise. This is the one dispatch shared by the
/// batch engine and the bench harness, so their timing telemetry can
/// never drift apart.
///
/// # Panics
///
/// Panics when the pipeline errors (circuit larger than the device, post
/// pass rejection) — mirroring the `map` adapter's behavior.
pub fn run_mapper_timed(
    mapper: &dyn crate::Mapper,
    circuit: &Circuit,
    device: &CouplingGraph,
) -> TimedMapRun {
    match mapper.pipeline() {
        Some(pipeline) => match pipeline.run(circuit, device) {
            Ok(outcome) => TimedMapRun {
                result: outcome.result,
                pipeline: pipeline.describe(),
                passes: outcome
                    .timings
                    .iter()
                    .map(|t| (t.label(), t.seconds))
                    .collect(),
            },
            Err(e) => panic!("{} pipeline failed: {e}", mapper.name()),
        },
        None => TimedMapRun {
            result: mapper.map(circuit, device),
            pipeline: String::new(),
            passes: Vec::new(),
        },
    }
}

// --------------------------------------------------------------------------
// Built-in passes
// --------------------------------------------------------------------------

/// Analysis pass computing the transitive dependence ω-weights; produces
/// an [`affine::DependenceAnalysis`] artifact.
#[derive(Clone, Copy, Debug, Default)]
pub struct DependenceWeightsPass {
    mode: WeightMode,
}

impl DependenceWeightsPass {
    /// A weights pass with the given engine selection mode.
    pub fn new(mode: WeightMode) -> Self {
        DependenceWeightsPass { mode }
    }
}

impl AnalysisPass for DependenceWeightsPass {
    fn name(&self) -> &'static str {
        "weights"
    }

    fn run(&self, ctx: &PassContext<'_>, artifacts: &mut Artifacts) {
        artifacts.insert(DependenceAnalysis::new(ctx.circuit, self.mode));
    }
}

/// Layout pass producing the trivial mapping `φ₀(qᵢ) = pᵢ` (the paper's
/// §V-B.4 default).
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityLayoutPass;

impl LayoutPass for IdentityLayoutPass {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn run(&self, ctx: &PassContext<'_>, _artifacts: &Artifacts) -> Layout {
        Layout::identity(ctx.circuit.n_qubits(), ctx.device.n_qubits())
    }
}

/// Layout pass returning a pre-computed layout (used by
/// `QlosureMapper::map_from_layout` and experimentation harnesses).
#[derive(Clone, Debug)]
pub struct FixedLayoutPass {
    layout: Layout,
}

impl FixedLayoutPass {
    /// A pass that always yields `layout`.
    pub fn new(layout: Layout) -> Self {
        FixedLayoutPass { layout }
    }
}

impl LayoutPass for FixedLayoutPass {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn run(&self, _ctx: &PassContext<'_>, _artifacts: &Artifacts) -> Layout {
        self.layout.clone()
    }
}

/// Post pass running the independent routing verifier
/// ([`circuit::verify_routing`]) over the result.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyPass;

impl PostPass for VerifyPass {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(
        &self,
        ctx: &PassContext<'_>,
        result: &MappingResult,
    ) -> Result<Vec<(String, i64)>, String> {
        circuit::verify_routing(
            ctx.circuit,
            &result.routed,
            &|a, b| ctx.device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .map(|()| Vec::new())
        .map_err(|e| e.to_string())
    }
}

/// Post pass recording the standard result metrics (swaps, routed depth,
/// routed qop count, depth increase over the input).
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsPass;

impl PostPass for MetricsPass {
    fn name(&self) -> &'static str {
        "metrics"
    }

    fn run(
        &self,
        ctx: &PassContext<'_>,
        result: &MappingResult,
    ) -> Result<Vec<(String, i64)>, String> {
        Ok(vec![
            ("swaps".to_string(), result.swaps as i64),
            ("depth".to_string(), result.depth() as i64),
            ("qops".to_string(), result.routed.qop_count() as i64),
            (
                "depth_delta".to_string(),
                result.depth_delta(ctx.circuit) as i64,
            ),
        ])
    }
}

/// Post pass estimating the routed circuit's success probability under a
/// device [`topology::NoiseModel`].
///
/// Reports one metric, `success_ppm`: the estimated success probability in
/// parts per million (so it fits the integer metric channel; divide by
/// 10⁶ to recover the probability). The probability is the product of
/// per-gate fidelities — two-qubit gates and SWAPs use their coupling's
/// error rate (a SWAP three times), single-qubit gates their qubit's rate
/// — evaluated over the *routed* circuit, SWAPs included, so noise-aware
/// scenarios can compare routings end to end. Opt-in: compose it with
/// [`MappingPipeline::with_post`] (service requests opt in per job).
#[derive(Clone, Debug)]
pub struct FidelityPass {
    noise: NoiseModel,
}

impl FidelityPass {
    /// A pass evaluating fidelities under `noise`.
    pub fn new(noise: NoiseModel) -> Self {
        FidelityPass { noise }
    }

    /// Scale of the `success_ppm` metric: parts per million.
    pub const PPM: f64 = 1e6;

    /// Estimated success probability of `routed` under this pass's noise
    /// model.
    pub fn probability(&self, routed: &Circuit) -> f64 {
        self.noise.success_probability(
            routed
                .gates()
                .iter()
                .map(|g| (g.kind.name(), g.qubits.as_slice())),
        )
    }
}

impl PostPass for FidelityPass {
    fn name(&self) -> &'static str {
        "fidelity"
    }

    fn run(
        &self,
        _ctx: &PassContext<'_>,
        result: &MappingResult,
    ) -> Result<Vec<(String, i64)>, String> {
        let p = self.probability(&result.routed);
        Ok(vec![(
            "success_ppm".to_string(),
            (p * Self::PPM).round() as i64,
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QlosureConfig, QlosureRoutingPass};
    use topology::backends;

    fn demo_pipeline() -> MappingPipeline {
        MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .with_analysis(DependenceWeightsPass::new(WeightMode::Auto))
        .with_post(VerifyPass)
        .with_post(MetricsPass)
    }

    #[test]
    fn artifacts_store_is_typed() {
        let mut a = Artifacts::default();
        assert!(a.is_empty());
        a.insert(42u64);
        a.insert("hello");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get::<u64>(), Some(&42));
        assert_eq!(a.get::<&str>(), Some(&"hello"));
        assert_eq!(a.get::<u32>(), None);
        a.insert(7u64); // same type replaces
        assert_eq!(a.get::<u64>(), Some(&7));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn pipeline_times_every_stage_and_collects_metrics() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let outcome = demo_pipeline().run(&c, &device).unwrap();
        let labels: Vec<String> = outcome.timings.iter().map(PassTiming::label).collect();
        assert_eq!(
            labels,
            vec![
                "analysis:weights",
                "layout:identity",
                "routing:qlosure",
                "post:verify",
                "post:metrics",
            ]
        );
        assert!(outcome.timings.iter().all(|t| t.seconds >= 0.0));
        assert!(outcome
            .metrics
            .iter()
            .any(|(k, v)| k == "swaps" && *v == outcome.result.swaps as i64));
    }

    #[test]
    fn pipeline_spans_mirror_pass_timing_labels() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let tracer = trace::Tracer::new(1, 256);
        let outcome = {
            let ctx = trace::Ctx::new(tracer.clone(), trace::ROOT_SPAN);
            let _g = trace::set_ctx(&ctx);
            demo_pipeline().run(&c, &device).unwrap()
        };
        let names: Vec<String> = tracer.snapshot().into_iter().map(|s| s.name).collect();
        let labels: Vec<String> = outcome.timings.iter().map(PassTiming::label).collect();
        assert_eq!(names, labels, "one span per pass, labelled stage:name");
        // Tracing is observational: the untraced run routes identically.
        let untraced = demo_pipeline().run(&c, &device).unwrap();
        assert_eq!(untraced.result.routed, outcome.result.routed);
        assert_eq!(untraced.result.swaps, outcome.result.swaps);
    }

    #[test]
    fn describe_lists_the_composition() {
        assert_eq!(
            demo_pipeline().describe(),
            "weights → identity → qlosure → verify → metrics"
        );
    }

    #[test]
    fn oversized_circuit_is_an_error_not_a_panic() {
        let device = backends::line(2);
        let c = Circuit::new(5);
        let err = demo_pipeline().run(&c, &device).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::DeviceTooSmall {
                needed: 5,
                available: 2
            }
        ));
    }

    #[test]
    fn failing_post_pass_surfaces_as_pipeline_error() {
        struct Reject;
        impl PostPass for Reject {
            fn name(&self) -> &'static str {
                "reject"
            }
            fn run(
                &self,
                _ctx: &PassContext<'_>,
                _result: &MappingResult,
            ) -> Result<Vec<(String, i64)>, String> {
                Err("nope".to_string())
            }
        }
        let device = backends::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let pipeline = MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .with_post(Reject);
        let err = pipeline.run(&c, &device).unwrap_err();
        match err {
            PipelineError::Post { pass, message } => {
                assert_eq!(pass, "reject");
                assert_eq!(message, "nope");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn fidelity_pass_reports_success_ppm() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 3); // needs SWAPs: the routed circuit is noisier than the input
        let noise = NoiseModel::uniform(&device, 0.01, 0.001);
        let pipeline = MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .with_post(FidelityPass::new(noise.clone()));
        let outcome = pipeline.run(&c, &device).unwrap();
        let (_, ppm) = outcome
            .metrics
            .iter()
            .find(|(k, _)| k == "success_ppm")
            .expect("fidelity pass must report success_ppm");
        assert!((1..=1_000_000).contains(ppm), "got {ppm}");
        // The metric is the quantized pass probability of the routed circuit.
        let p = FidelityPass::new(noise).probability(&outcome.result.routed);
        assert_eq!(*ppm, (p * FidelityPass::PPM).round() as i64);
        // Routing inserted SWAPs, so success is strictly below the
        // no-error ceiling.
        assert!(*ppm < 1_000_000);
    }

    #[test]
    fn fidelity_pass_with_zero_noise_is_certain() {
        let device = backends::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        let noise = NoiseModel::uniform(&device, 0.0, 0.0);
        let pipeline = MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .with_post(FidelityPass::new(noise));
        let outcome = pipeline.run(&c, &device).unwrap();
        assert!(outcome
            .metrics
            .iter()
            .any(|(k, v)| k == "success_ppm" && *v == 1_000_000));
        // And the timing entry shows up like any other post pass.
        assert!(outcome
            .timings
            .iter()
            .any(|t| t.stage == PassStage::Post && t.pass == "fidelity"));
    }

    #[test]
    fn fixed_layout_pass_round_trips() {
        let device = backends::line(4);
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let layout = Layout::from_assignment(&[3, 1, 2], 4);
        let pipeline = MappingPipeline::new(
            FixedLayoutPass::new(layout),
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .with_post(VerifyPass);
        let outcome = pipeline.run(&c, &device).unwrap();
        assert_eq!(outcome.result.initial_layout, vec![3, 1, 2]);
    }
}
