//! The Qlosure routing loop (paper Algorithm 1).

use crate::cost::{CostVariant, OmegaScaling, ScoredGate, SwapCost};
use crate::layout::Layout;
use crate::{Mapper, MappingResult};
use affine::{DependenceAnalysis, WeightMode};
use circuit::{Circuit, DependenceGraph, Gate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use topology::{CouplingGraph, DistanceMatrix};

/// How the initial logical→physical assignment is chosen (§V-B.4, §VI-E).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitialMapping {
    /// The trivial mapping `φ₀(qᵢ) = pᵢ` (used by all headline results).
    #[default]
    Identity,
    /// Forward/backward routing passes refine the assignment before the
    /// final forward run (ablation (d), after SABRE's bidirectional trick).
    Bidirectional {
        /// Number of refinement passes (2 = one forward + one backward).
        passes: usize,
    },
}

/// Tuning knobs of the Qlosure mapper.
#[derive(Clone, Debug)]
pub struct QlosureConfig {
    /// Cost-function variant (ablation axis).
    pub cost: CostVariant,
    /// Additive smoothing on ω (see [`SwapCost`]).
    pub omega_smoothing: u64,
    /// Compression applied to ω before it enters the cost (see
    /// [`OmegaScaling`]).
    pub omega_scaling: OmegaScaling,
    /// Weight of look-ahead layers `ℓ >= 2` relative to the front layer
    /// (`1.0` = Eq. 2 verbatim; see [`SwapCost::with_scaling`]).
    pub future_weight: f64,
    /// How the ω weights are computed (affine closure vs. graph).
    pub weight_mode: WeightMode,
    /// Initial mapping strategy.
    pub initial: InitialMapping,
    /// Decay increment per swap on the touched qubits (paper: 0.001).
    pub decay_delta: f64,
    /// The look-ahead constant `c` is `max_degree + lookahead_margin`
    /// (paper: `c` must exceed the device's maximum degree).
    pub lookahead_margin: usize,
    /// Seed for random tie-breaking (paper §V-E "breaking ties randomly").
    pub seed: u64,
    /// Forced-progress threshold: after `3·diameter + stall_slack` swaps
    /// without executing a gate, the highest-priority front gate is routed
    /// directly along a shortest path (guarantees termination).
    pub stall_slack: usize,
    /// Depth-awareness of the decay term: the effective decay of a
    /// physical qubit is `δ + busy_weight · clock(p)/clock_max`, penalizing
    /// swaps that extend the critical path (swaps on idle qubits schedule
    /// almost for free). `0.0` evaluates the paper's Eq. (2) verbatim; the
    /// default keeps sequential kernels (QFT-style hub columns) from
    /// serializing every SWAP behind the active gate.
    pub busy_weight: f64,
    /// Relative near-tie window for candidate selection: candidates whose
    /// score is within `best · (1 + tie_epsilon)` are considered tied, and
    /// the tie resolves toward the SWAP that finishes earliest on the
    /// evolving schedule (then randomly). `0.0` restores pure random ties.
    pub tie_epsilon: f64,
}

impl Default for QlosureConfig {
    fn default() -> Self {
        QlosureConfig {
            cost: CostVariant::DependencyWeighted,
            omega_smoothing: 1,
            omega_scaling: OmegaScaling::Linear,
            future_weight: 0.25,
            weight_mode: WeightMode::Auto,
            initial: InitialMapping::Identity,
            decay_delta: 0.001,
            lookahead_margin: 1,
            seed: 0xC105,
            stall_slack: 16,
            busy_weight: 0.05,
            tie_epsilon: 0.005,
        }
    }
}

/// The Qlosure qubit mapper (the paper's contribution).
#[derive(Clone, Debug, Default)]
pub struct QlosureMapper {
    /// Configuration; [`Default`] reproduces the paper's headline setup.
    pub config: QlosureConfig,
}

impl QlosureMapper {
    /// A mapper with explicit configuration.
    pub fn with_config(config: QlosureConfig) -> Self {
        QlosureMapper { config }
    }

    /// Routes with an explicit starting layout (used by the bidirectional
    /// initial-mapping passes and exposed for experimentation).
    pub fn map_from_layout(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        layout: Layout,
    ) -> MappingResult {
        // Shared cache: the all-pairs BFS runs once per distinct device
        // process-wide, not once per mapping (see topology's cache docs).
        self.map_with_distances(circuit, device, &device.shared_distances(), layout)
    }

    /// Error-aware routing (the paper's stated future-work direction):
    /// the hop-count matrix `Dphys` is replaced by reliability-weighted
    /// distances derived from a device [`topology::NoiseModel`], so the
    /// Eq. (2) cost steers SWAP chains around lossy couplings.
    pub fn map_noise_aware(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        noise: &topology::NoiseModel,
    ) -> MappingResult {
        let dist = noise.weighted_distances(device);
        let layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
        self.map_with_distances(circuit, device, &dist, layout)
    }

    fn map_with_distances(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        dist: &DistanceMatrix,
        layout: Layout,
    ) -> MappingResult {
        let analysis = DependenceAnalysis::new(circuit, self.config.weight_mode);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        route(
            circuit,
            device,
            dist,
            analysis.weights(),
            layout,
            &self.config,
            &mut rng,
        )
    }
}

impl Mapper for QlosureMapper {
    fn name(&self) -> &str {
        "qlosure"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        let initial = match self.config.initial {
            InitialMapping::Identity => Layout::identity(circuit.n_qubits(), device.n_qubits()),
            InitialMapping::Bidirectional { passes } => {
                bidirectional_layout(self, circuit, device, passes)
            }
        };
        self.map_from_layout(circuit, device, initial)
    }
}

/// Forward/backward refinement: each pass routes the circuit (alternating
/// direction) and feeds its *final* layout into the next pass.
fn bidirectional_layout(
    mapper: &QlosureMapper,
    circuit: &Circuit,
    device: &CouplingGraph,
    passes: usize,
) -> Layout {
    let mut reversed = Circuit::new(circuit.n_qubits());
    for g in circuit.gates().iter().rev() {
        reversed.push(g.clone());
    }
    let mut layout = Layout::identity(circuit.n_qubits(), device.n_qubits());
    for pass in 0..passes {
        let dir = if pass % 2 == 0 { circuit } else { &reversed };
        let result = mapper.map_from_layout(dir, device, layout);
        layout = Layout::from_assignment(&result.final_layout, device.n_qubits());
    }
    layout
}

/// The dependence-driven mapping loop.
pub(crate) fn route(
    circuit: &Circuit,
    device: &CouplingGraph,
    dist: &DistanceMatrix,
    weights: &[u64],
    mut layout: Layout,
    config: &QlosureConfig,
    rng: &mut StdRng,
) -> MappingResult {
    let dag = DependenceGraph::new(circuit);
    let n_gates = circuit.gates().len();
    let mut indeg = dag.in_degrees();
    let mut front: Vec<u32> = dag.initial_front();
    let mut routed = Circuit::with_capacity(device.n_qubits(), n_gates + n_gates / 4);
    let initial_layout = layout.as_assignment().to_vec();
    let mut decay = vec![1.0f64; device.n_qubits()];
    // Per-physical-qubit schedule clocks, mirroring the depth computation;
    // feeds the busy-aware decay (see QlosureConfig::busy_weight).
    let mut clock = vec![0u32; device.n_qubits()];
    let mut clock_max = 0u32;
    let cost = SwapCost::with_scaling(
        config.cost,
        config.omega_smoothing,
        config.omega_scaling,
        config.future_weight,
    );
    let c_const = device.max_degree() + config.lookahead_margin.max(1);
    let stall_limit = 3 * dist.diameter() as usize + config.stall_slack;
    let mut stall = 0usize;
    let mut swaps = 0usize;

    let executable = |gate: &Gate, layout: &Layout| -> bool {
        match gate.qubit_pair() {
            Some((a, b)) => device.is_adjacent(layout.phys(a), layout.phys(b)),
            None => true, // 1q gates, barriers, measure, reset
        }
    };

    while !front.is_empty() {
        // EXTRACT_READY_GATES: everything in Lf executable under φ.
        let mut ready: Vec<u32> = front
            .iter()
            .copied()
            .filter(|&g| executable(&circuit.gates()[g as usize], &layout))
            .collect();
        if !ready.is_empty() {
            ready.sort_unstable();
            for &g in &ready {
                let gate = &circuit.gates()[g as usize];
                emit_mapped(&mut routed, gate, &layout);
                advance_clock(&mut clock, &mut clock_max, gate, &layout);
            }
            front.retain(|g| !ready.contains(g));
            for &g in &ready {
                for &s in dag.succs(g) {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        front.push(s);
                    }
                }
            }
            decay.fill(1.0);
            stall = 0;
            continue;
        }
        // All front gates are blocked two-qubit gates: pick a SWAP.
        let window = build_window(circuit, &dag, &front, &indeg, weights, c_const);
        let candidates = swap_candidates(&window, &layout, device);
        debug_assert!(!candidates.is_empty(), "blocked front with no candidates");
        let busy = |p: u32| -> f64 {
            if clock_max == 0 {
                0.0
            } else {
                config.busy_weight * f64::from(clock[p as usize]) / f64::from(clock_max)
            }
        };
        let mut scored: Vec<((u32, u32), f64)> = Vec::with_capacity(candidates.len());
        let mut best_score = f64::INFINITY;
        for &(p1, p2) in &candidates {
            layout.apply_swap(p1, p2);
            let d1 = decay[p1 as usize] + busy(p1);
            let d2 = decay[p2 as usize] + busy(p2);
            let score = cost.score(&window.gates, &layout, dist, d1.max(d2));
            layout.apply_swap(p1, p2); // undo
            best_score = best_score.min(score);
            scored.push(((p1, p2), score));
        }
        // Near-ties resolve toward swaps that (a) strictly shrink the
        // front layer's total distance (guaranteed progress) and (b)
        // finish earliest on the schedule (idle qubits are almost free,
        // depth-wise), then randomly.
        let front_sum = |layout: &Layout| -> u32 {
            window
                .gates
                .iter()
                .filter(|g| g.layer <= 1)
                .map(|g| u32::from(dist.get(layout.phys(g.q1), layout.phys(g.q2))))
                .sum()
        };
        let base_front = front_sum(&layout);
        let cutoff = best_score + best_score.abs() * config.tie_epsilon + 1e-9;
        let mut best: Vec<(u32, u32)> = Vec::new();
        let mut best_key = (false, u32::MAX);
        for &((p1, p2), score) in &scored {
            if score > cutoff {
                continue;
            }
            layout.apply_swap(p1, p2);
            let progress = front_sum(&layout) < base_front;
            layout.apply_swap(p1, p2);
            let done = clock[p1 as usize].max(clock[p2 as usize]) + 1;
            let key = (progress, done);
            let better = match (key.0, best_key.0) {
                (true, false) => true,
                (false, true) => false,
                _ => done < best_key.1,
            };
            if better {
                best_key = key;
                best.clear();
                best.push((p1, p2));
            } else if key == best_key {
                best.push((p1, p2));
            }
        }
        let (p1, p2) = best[rng.random_range(0..best.len())];
        routed.swap(p1, p2);
        layout.apply_swap(p1, p2);
        let done = clock[p1 as usize].max(clock[p2 as usize]) + 1;
        clock[p1 as usize] = done;
        clock[p2 as usize] = done;
        clock_max = clock_max.max(done);
        decay[p1 as usize] += config.decay_delta;
        decay[p2 as usize] += config.decay_delta;
        swaps += 1;
        stall += 1;
        if stall > stall_limit {
            // Forced progress: route the heaviest front gate directly.
            let &g = front
                .iter()
                .max_by_key(|&&g| weights.get(g as usize).copied().unwrap_or(0))
                .expect("front non-empty");
            let (a, b) = circuit.gates()[g as usize]
                .qubit_pair()
                .expect("blocked gates are two-qubit");
            let (pa, pb) = (layout.phys(a), layout.phys(b));
            let path = device
                .shortest_path(pa, pb)
                .expect("device must be connected");
            for win in path.windows(2).take(path.len().saturating_sub(2)) {
                routed.swap(win[0], win[1]);
                layout.apply_swap(win[0], win[1]);
                let done = clock[win[0] as usize].max(clock[win[1] as usize]) + 1;
                clock[win[0] as usize] = done;
                clock[win[1] as usize] = done;
                clock_max = clock_max.max(done);
                swaps += 1;
            }
            decay.fill(1.0);
            stall = 0;
        }
    }
    let final_layout = layout.as_assignment().to_vec();
    MappingResult {
        routed,
        initial_layout,
        final_layout,
        swaps,
    }
}

/// Emits `gate` with operands translated through `layout`.
fn emit_mapped(routed: &mut Circuit, gate: &Gate, layout: &Layout) {
    let mapped = Gate {
        kind: gate.kind.clone(),
        qubits: gate.qubits.iter().map(|&q| layout.phys(q)).collect(),
        params: gate.params.clone(),
    };
    routed.push(mapped);
}

/// Advances the per-qubit schedule clocks for an executed gate.
fn advance_clock(clock: &mut [u32], clock_max: &mut u32, gate: &Gate, layout: &Layout) {
    if gate.qubits.is_empty() {
        return;
    }
    let ready = gate
        .qubits
        .iter()
        .map(|&q| clock[layout.phys(q) as usize])
        .max()
        .expect("non-empty");
    let dur = u32::from(gate.is_scheduled());
    let done = ready + dur;
    for &q in &gate.qubits {
        clock[layout.phys(q) as usize] = done;
    }
    *clock_max = (*clock_max).max(done);
}

/// The layered look-ahead window: the blocked front gates (layer 1) plus
/// the topologically earliest `k = c·nf` upcoming two-qubit gates, layered
/// by dependence distance from the front (§V-C).
pub(crate) struct Window {
    /// Scored gates, front first.
    pub gates: Vec<ScoredGate>,
    /// Logical qubits of the front gates (used for candidate generation).
    pub front_logicals: Vec<u32>,
}

fn build_window(
    circuit: &Circuit,
    dag: &DependenceGraph,
    front: &[u32],
    indeg: &[u32],
    weights: &[u64],
    c_const: usize,
) -> Window {
    let mut gates: Vec<ScoredGate> = Vec::new();
    let mut front_logicals: Vec<u32> = Vec::new();
    // Gate -> dependence layer; front 2q gates are layer 1, single-qubit
    // gates are transparent (inherit the max predecessor layer).
    let mut layer: Vec<u32> = vec![0; dag.n_gates()];
    let mut visited: Vec<bool> = vec![false; dag.n_gates()];
    let mut heap: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    for &g in front {
        visited[g as usize] = true;
        heap.push(std::cmp::Reverse(g));
    }
    let nf = {
        let mut qs: Vec<u32> = front
            .iter()
            .filter_map(|&g| circuit.gates()[g as usize].qubit_pair())
            .flat_map(|(a, b)| [a, b])
            .collect();
        qs.sort_unstable();
        qs.dedup();
        qs.len()
    };
    let k = c_const * nf.max(1);
    let mut collected = 0usize;
    while let Some(std::cmp::Reverse(g)) = heap.pop() {
        let gate = &circuit.gates()[g as usize];
        let is_front = indeg[g as usize] == 0;
        let l = if is_front {
            u32::from(gate.is_two_qubit())
        } else {
            // All unexecuted predecessors were popped earlier (smaller
            // topological index); executed ones contribute layer 0.
            let base = dag
                .preds(g)
                .iter()
                .map(|&p| layer[p as usize])
                .max()
                .unwrap_or(0);
            base + u32::from(gate.is_two_qubit())
        };
        layer[g as usize] = l;
        if let Some((a, b)) = gate.qubit_pair() {
            gates.push(ScoredGate {
                q1: a,
                q2: b,
                omega: weights.get(g as usize).copied().unwrap_or(0),
                layer: l,
            });
            if is_front {
                front_logicals.push(a);
                front_logicals.push(b);
            } else {
                collected += 1;
                if collected >= k {
                    break;
                }
            }
        }
        for &s in dag.succs(g) {
            if !visited[s as usize] {
                visited[s as usize] = true;
                heap.push(std::cmp::Reverse(s));
            }
        }
    }
    front_logicals.sort_unstable();
    front_logicals.dedup();
    Window {
        gates,
        front_logicals,
    }
}

/// Candidate SWAPs: every coupling-graph edge incident to a physical qubit
/// hosting a front-layer logical qubit (§V-D).
fn swap_candidates(window: &Window, layout: &Layout, device: &CouplingGraph) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &l in &window.front_logicals {
        let p1 = layout.phys(l);
        for &p2 in device.neighbors(p1) {
            let pair = (p1.min(p2), p1.max(p2));
            if !out.contains(&pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn verify(circuit: &Circuit, device: &CouplingGraph, result: &MappingResult) {
        verify_routing(
            circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("routing must verify");
    }

    #[test]
    fn already_routable_circuit_gets_no_swaps() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let r = QlosureMapper::default().map(&c, &device);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.routed.qop_count(), 4);
        verify(&c, &device, &r);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let device = backends::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = QlosureMapper::default().map(&c, &device);
        assert!(
            r.swaps >= 3,
            "distance-4 pair needs >= 3 swaps, got {}",
            r.swaps
        );
        verify(&c, &device, &r);
    }

    #[test]
    fn ghz_on_ring() {
        let device = backends::ring(6);
        let mut c = Circuit::new(6);
        c.h(0);
        for i in 1..6 {
            c.cx(0, i);
        }
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn respects_dependences_across_swaps() {
        let device = backends::line(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(5, 0); // must still follow the first gate logically
        c.h(5);
        c.cx(0, 3);
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn barriers_and_measures_survive() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.barrier(&[0, 1]);
        c.cx(0, 3);
        c.measure_all();
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
        assert_eq!(
            r.routed
                .gates()
                .iter()
                .filter(|g| g.kind == circuit::GateKind::Measure)
                .count(),
            4
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let device = backends::king_grid(4, 4);
        let mut c = Circuit::new(16);
        let mut s = 7u64;
        for _ in 0..60 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 33) % 16) as u32;
            let b = ((s >> 13) % 16) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        let m = QlosureMapper::default();
        let r1 = m.map(&c, &device);
        let r2 = m.map(&c, &device);
        assert_eq!(r1.routed, r2.routed);
        assert_eq!(r1.swaps, r2.swaps);
    }

    #[test]
    fn bidirectional_initial_mapping_verifies_and_helps() {
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        // Long-range pairs under identity; a smarter layout reduces swaps.
        for _ in 0..3 {
            c.cx(0, 7);
            c.cx(1, 6);
            c.cx(2, 5);
        }
        let identity = QlosureMapper::default().map(&c, &device);
        let bidi = QlosureMapper::with_config(QlosureConfig {
            initial: InitialMapping::Bidirectional { passes: 2 },
            ..QlosureConfig::default()
        })
        .map(&c, &device);
        verify(&c, &device, &identity);
        verify(&c, &device, &bidi);
        assert!(
            bidi.swaps <= identity.swaps,
            "bidirectional {} should not exceed identity {}",
            bidi.swaps,
            identity.swaps
        );
    }

    #[test]
    fn all_cost_variants_produce_valid_routings() {
        let device = backends::square_grid(3, 3);
        let mut c = Circuit::new(9);
        let mut s = 99u64;
        for _ in 0..40 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let a = ((s >> 33) % 9) as u32;
            let b = ((s >> 13) % 9) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        for variant in [
            CostVariant::DistanceOnly,
            CostVariant::LayerAdjusted,
            CostVariant::DependencyWeighted,
        ] {
            let r = QlosureMapper::with_config(QlosureConfig {
                cost: variant,
                ..QlosureConfig::default()
            })
            .map(&c, &device);
            verify(&c, &device, &r);
        }
    }

    #[test]
    fn maps_onto_larger_device_than_circuit() {
        let device = backends::sherbrooke();
        let mut c = Circuit::new(10);
        for i in 0..9 {
            c.cx(i, i + 1);
        }
        c.cx(0, 9);
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn noise_aware_routing_avoids_bad_links() {
        // Ring with one terrible coupling: the noise-aware router must
        // place its SWAPs on the healthy side of the ring.
        let device = backends::ring(8);
        let mut noise = topology::NoiseModel::uniform(&device, 0.002, 0.0002);
        noise.set_edge_error(0, 1, 0.35);
        let mut c = Circuit::new(8);
        for _ in 0..4 {
            c.cx(0, 4); // diametrically opposite; either direction works
            c.cx(4, 0);
        }
        let mapper = QlosureMapper::default();
        let aware = mapper.map_noise_aware(&c, &device, &noise);
        verify(&c, &device, &aware);
        let gates: Vec<(&str, &[u32])> = aware
            .routed
            .gates()
            .iter()
            .map(|g| (g.kind.name(), g.qubits.as_slice()))
            .collect();
        let p_aware = noise.success_probability(gates);
        let unaware = mapper.map(&c, &device);
        verify(&c, &device, &unaware);
        let gates: Vec<(&str, &[u32])> = unaware
            .routed
            .gates()
            .iter()
            .map(|g| (g.kind.name(), g.qubits.as_slice()))
            .collect();
        let p_unaware = noise.success_probability(gates);
        // The noise-aware route never uses the bad link for swaps.
        let bad_swaps = aware
            .routed
            .gates()
            .iter()
            .filter(|g| {
                g.kind == circuit::GateKind::Swap && g.qubits.contains(&0) && g.qubits.contains(&1)
            })
            .count();
        assert_eq!(bad_swaps, 0, "noise-aware route crossed the bad link");
        assert!(
            p_aware >= p_unaware * 0.99,
            "noise-aware {p_aware} should not be meaningfully worse than {p_unaware}"
        );
    }

    #[test]
    fn window_layers_increase_with_depth() {
        // chain: cx(0,1); cx(1,2); cx(2,3) — blocked front at distance.
        let device = backends::line(6);
        let mut c = Circuit::new(4);
        c.cx(0, 2); // blocked under identity on a line
        c.cx(2, 3);
        c.cx(3, 1);
        let dag = DependenceGraph::new(&c);
        let indeg = dag.in_degrees();
        let front = dag.initial_front();
        let weights = [3, 1, 0];
        let w = build_window(&c, &dag, &front, &indeg, &weights, 4);
        assert_eq!(w.gates[0].layer, 1);
        assert!(w.gates.iter().any(|g| g.layer == 2));
        assert!(w.gates.iter().any(|g| g.layer == 3));
        let _ = device;
    }
}
