//! The Qlosure routing pass (paper Algorithm 1) and its pipeline
//! composition.
//!
//! Since the pass-pipeline refactor the mapper is no longer a monolithic
//! loop: [`QlosureMapper`] composes a [`MappingPipeline`] of
//! `DependenceWeightsPass → (identity | bidirectional) layout →
//! QlosureRoutingPass`, and the routing pass drives the shared incremental
//! [`RoutingState`]. The loop itself — ready-gate extraction, the layered
//! look-ahead window of §V-C, candidate scoring with Eq. (2) and the
//! decay/clock tie-breaking — reproduces the pre-refactor router
//! bit-for-bit (the golden-equivalence suite pins this).

use crate::cost::{CostVariant, OmegaScaling, ScoredGate, SwapCost};
use crate::layout::Layout;
use crate::pass::{
    Artifacts, DependenceWeightsPass, FixedLayoutPass, IdentityLayoutPass, LayoutPass,
    MappingPipeline, PassContext, RoutingPass,
};
use crate::state::RoutingState;
use crate::{Mapper, MappingResult};
use affine::{DependenceAnalysis, WeightMode};
use circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use topology::{CouplingGraph, DistanceMatrix};

/// How the initial logical→physical assignment is chosen (§V-B.4, §VI-E).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitialMapping {
    /// The trivial mapping `φ₀(qᵢ) = pᵢ` (used by all headline results).
    #[default]
    Identity,
    /// Forward/backward routing passes refine the assignment before the
    /// final forward run (ablation (d), after SABRE's bidirectional trick).
    Bidirectional {
        /// Number of refinement passes (2 = one forward + one backward).
        passes: usize,
    },
}

/// Tuning knobs of the Qlosure mapper.
#[derive(Clone, Debug)]
pub struct QlosureConfig {
    /// Cost-function variant (ablation axis).
    pub cost: CostVariant,
    /// Additive smoothing on ω (see [`SwapCost`]).
    pub omega_smoothing: u64,
    /// Compression applied to ω before it enters the cost (see
    /// [`OmegaScaling`]).
    pub omega_scaling: OmegaScaling,
    /// Weight of look-ahead layers `ℓ >= 2` relative to the front layer
    /// (`1.0` = Eq. 2 verbatim; see [`SwapCost::with_scaling`]).
    pub future_weight: f64,
    /// How the ω weights are computed (affine closure vs. graph).
    pub weight_mode: WeightMode,
    /// Initial mapping strategy.
    pub initial: InitialMapping,
    /// Decay increment per swap on the touched qubits (paper: 0.001).
    pub decay_delta: f64,
    /// The look-ahead constant `c` is `max_degree + lookahead_margin`
    /// (paper: `c` must exceed the device's maximum degree).
    pub lookahead_margin: usize,
    /// Seed for random tie-breaking (paper §V-E "breaking ties randomly").
    pub seed: u64,
    /// Forced-progress threshold: after `3·diameter + stall_slack` swaps
    /// without executing a gate, the highest-priority front gate is routed
    /// directly along a shortest path (guarantees termination).
    pub stall_slack: usize,
    /// Depth-awareness of the decay term: the effective decay of a
    /// physical qubit is `δ + busy_weight · clock(p)/clock_max`, penalizing
    /// swaps that extend the critical path (swaps on idle qubits schedule
    /// almost for free). `0.0` evaluates the paper's Eq. (2) verbatim; the
    /// default keeps sequential kernels (QFT-style hub columns) from
    /// serializing every SWAP behind the active gate.
    pub busy_weight: f64,
    /// Relative near-tie window for candidate selection: candidates whose
    /// score is within `best · (1 + tie_epsilon)` are considered tied, and
    /// the tie resolves toward the SWAP that finishes earliest on the
    /// evolving schedule (then randomly). `0.0` restores pure random ties.
    pub tie_epsilon: f64,
}

impl Default for QlosureConfig {
    fn default() -> Self {
        QlosureConfig {
            cost: CostVariant::DependencyWeighted,
            omega_smoothing: 1,
            omega_scaling: OmegaScaling::Linear,
            future_weight: 0.25,
            weight_mode: WeightMode::Auto,
            initial: InitialMapping::Identity,
            decay_delta: 0.001,
            lookahead_margin: 1,
            seed: 0xC105,
            stall_slack: 16,
            busy_weight: 0.05,
            tie_epsilon: 0.005,
        }
    }
}

/// The Qlosure qubit mapper (the paper's contribution), as a pipeline of
/// passes: ω-weights analysis, initial layout, dependence-driven routing.
#[derive(Clone, Debug, Default)]
pub struct QlosureMapper {
    /// Configuration; [`Default`] reproduces the paper's headline setup.
    pub config: QlosureConfig,
}

impl QlosureMapper {
    /// A mapper with explicit configuration.
    pub fn with_config(config: QlosureConfig) -> Self {
        QlosureMapper { config }
    }

    /// The pass composition this mapper runs: `weights → (identity |
    /// bidirectional) → qlosure`.
    pub fn to_pipeline(&self) -> MappingPipeline {
        let routing = QlosureRoutingPass::new(self.config.clone());
        let weights = DependenceWeightsPass::new(self.config.weight_mode);
        match self.config.initial {
            InitialMapping::Identity => {
                MappingPipeline::new(IdentityLayoutPass, routing).with_analysis(weights)
            }
            InitialMapping::Bidirectional { passes } => MappingPipeline::new(
                BidirectionalLayoutPass::new(self.config.clone(), passes),
                routing,
            )
            .with_analysis(weights),
        }
    }

    /// Routes with an explicit starting layout (used by the bidirectional
    /// initial-mapping passes and exposed for experimentation): the same
    /// pipeline with a [`FixedLayoutPass`] in the layout slot.
    pub fn map_from_layout(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        layout: Layout,
    ) -> MappingResult {
        MappingPipeline::new(
            FixedLayoutPass::new(layout),
            QlosureRoutingPass::new(self.config.clone()),
        )
        .with_analysis(DependenceWeightsPass::new(self.config.weight_mode))
        .map(circuit, device)
    }

    /// Error-aware routing (the paper's stated future-work direction):
    /// the hop-count matrix `Dphys` is replaced by reliability-weighted
    /// distances derived from a device [`topology::NoiseModel`], so the
    /// Eq. (2) cost steers SWAP chains around lossy couplings.
    pub fn map_noise_aware(
        &self,
        circuit: &Circuit,
        device: &CouplingGraph,
        noise: &topology::NoiseModel,
    ) -> MappingResult {
        let dist = noise.shared_weighted_distances(device);
        let pipeline = MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(self.config.clone()),
        )
        .with_analysis(DependenceWeightsPass::new(self.config.weight_mode));
        match pipeline.run_with_distances(circuit, device, &dist) {
            Ok(outcome) => outcome.result,
            Err(e) => panic!("noise-aware mapping pipeline failed: {e}"),
        }
    }
}

impl Mapper for QlosureMapper {
    fn name(&self) -> &str {
        "qlosure"
    }

    fn map(&self, circuit: &Circuit, device: &CouplingGraph) -> MappingResult {
        self.to_pipeline().map(circuit, device)
    }

    fn pipeline(&self) -> Option<MappingPipeline> {
        Some(self.to_pipeline())
    }
}

/// The SABRE-style bidirectional initial-layout pass: each refinement pass
/// routes the circuit (alternating direction) and feeds its *final*
/// layout into the next pass; the last layout seeds the real forward run.
#[derive(Clone, Debug)]
pub struct BidirectionalLayoutPass {
    config: QlosureConfig,
    passes: usize,
}

impl BidirectionalLayoutPass {
    /// A bidirectional pass running `passes` refinement rounds with the
    /// given routing configuration.
    pub fn new(config: QlosureConfig, passes: usize) -> Self {
        BidirectionalLayoutPass { config, passes }
    }
}

impl LayoutPass for BidirectionalLayoutPass {
    fn name(&self) -> &'static str {
        "bidirectional"
    }

    fn run(&self, ctx: &PassContext<'_>, _artifacts: &Artifacts) -> Layout {
        let mut reversed = Circuit::new(ctx.circuit.n_qubits());
        for g in ctx.circuit.gates().iter().rev() {
            reversed.push(g.clone());
        }
        let mut layout = Layout::identity(ctx.circuit.n_qubits(), ctx.device.n_qubits());
        for pass in 0..self.passes {
            let dir = if pass % 2 == 0 {
                ctx.circuit
            } else {
                &reversed
            };
            // Each refinement round is a fresh analysis + routing run over
            // its direction's circuit, exactly like the final forward run.
            let analysis = DependenceAnalysis::new(dir, self.config.weight_mode);
            let mut rng = StdRng::seed_from_u64(self.config.seed);
            let mut state = RoutingState::new(dir, ctx.device, ctx.dist, layout);
            route_with(&mut state, analysis.weights(), &self.config, &mut rng);
            let result = state.into_result();
            layout = Layout::from_assignment(&result.final_layout, ctx.device.n_qubits());
        }
        layout
    }
}

/// The dependence-driven routing pass (the paper's Algorithm 1 loop).
///
/// Consumes the [`affine::DependenceAnalysis`] artifact when a
/// [`DependenceWeightsPass`] ran earlier in the pipeline; composed without
/// one, it computes the weights itself (same result, but the analysis is
/// then charged to the routing pass's timing).
#[derive(Clone, Debug, Default)]
pub struct QlosureRoutingPass {
    config: QlosureConfig,
}

impl QlosureRoutingPass {
    /// A routing pass with explicit configuration.
    pub fn new(config: QlosureConfig) -> Self {
        QlosureRoutingPass { config }
    }
}

impl RoutingPass for QlosureRoutingPass {
    fn name(&self) -> &'static str {
        "qlosure"
    }

    fn run(&self, state: &mut RoutingState<'_>, artifacts: &Artifacts) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        match artifacts.get::<DependenceAnalysis>() {
            Some(analysis) => route_with(state, analysis.weights(), &self.config, &mut rng),
            None => {
                let analysis = DependenceAnalysis::new(state.circuit(), self.config.weight_mode);
                route_with(state, analysis.weights(), &self.config, &mut rng);
            }
        }
    }
}

/// The layered look-ahead window of §V-C, with its reusable scratch
/// buffers: the blocked front gates (layer 1) plus the topologically
/// earliest `k = c·nf` upcoming two-qubit gates, layered by dependence
/// distance from the front. `front_logicals` holds the sorted operands of
/// the front gates the walk *visited* — the look-ahead budget `k` can cut
/// the walk off before a high-index front gate pops, and those unvisited
/// gates contribute no SWAP candidates (faithful to the paper's §V-D
/// candidate rule, which draws candidates from the window).
///
/// The window is a pure function of the front layer (gate order, weights
/// and dependence structure are layout-independent), so it is cached on
/// [`RoutingState::front_version`]: consecutive SWAP steps with an
/// unchanged front reuse it outright, and a rebuild reuses the
/// epoch-stamped buffers instead of fresh `vec![false; n]` allocations.
///
/// On top of the window it carries the **batched scoring** scratch: the
/// ω-weight and layer-discount factors of each scored gate are frozen at
/// rebuild time ([`WindowScratch::prepare`]), the gates' physical
/// endpoints and base contributions are refreshed once per SWAP step
/// ([`WindowScratch::begin_step`]), and each candidate is then scored by
/// [`WindowScratch::score_candidate`] without touching the layout — the
/// accumulation order and every float expression mirror
/// [`SwapCost::score`] exactly, so selection is bit-for-bit identical to
/// speculating the swap and rescoring the window from scratch.
pub(crate) struct WindowScratch {
    /// Scored gates, front first (rebuilt per front change).
    pub gates: Vec<ScoredGate>,
    /// Sorted, deduplicated logical operands of the *visited* front gates
    /// (the candidate base of §V-D).
    pub front_logicals: Vec<u32>,
    layer: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<u32>>,
    /// `RoutingState::front_version` the window was built for (0 = never).
    built_for: u64,
    // --- batched-scoring scratch ---
    /// `front_version` the per-window factors were prepared for.
    prepared_for: u64,
    /// Whether the active arrays exclude non-front gates
    /// ([`CostVariant::DistanceOnly`]).
    front_only: bool,
    /// Per *active* gate (window order, minus the gates the cost variant
    /// ignores): ω weight factor, layer discount, layer index, and the
    /// current-layout physical endpoints + base contribution `(w·d)·disc`.
    factor_w: Vec<f64>,
    factor_disc: Vec<f64>,
    layer_ix: Vec<u32>,
    ep1: Vec<u32>,
    ep2: Vec<u32>,
    base_contrib: Vec<f64>,
    /// Per-layer gate counts `|G_ℓ|` (layout-independent).
    sizes: Vec<u32>,
    /// Indices into the active arrays of the `layer <= 1` gates (the
    /// front-sum tie-break set).
    front_ix: Vec<u32>,
    /// Current-layout front-layer distance sum (the tie-break baseline).
    base_front_sum: u32,
    /// Γ accumulation buffer reused across candidates.
    gamma: Vec<f64>,
    /// Per-directed-edge stamps for candidate dedup.
    edge_stamp: Vec<u64>,
    edge_epoch: u64,
    /// Per-layer Γ under the *current* layout (every contribution at its
    /// base value), refreshed once per step. A candidate's Γ differs only
    /// in the layers holding a gate incident to its endpoints.
    base_gamma: Vec<f64>,
    /// Active indices grouped by layer (CSR over `layer_start`), stable
    /// within each layer — so a per-layer re-fold visits that layer's
    /// gates in exactly the window order [`SwapCost::score`] uses.
    layer_list: Vec<u32>,
    layer_start: Vec<u32>,
    /// Per active gate: does it belong to the front tie-break set?
    front_flag: Vec<bool>,
    /// Layer-fill cursor reused across `prepare` calls.
    cursor: Vec<u32>,
    /// Per physical qubit: active indices with an endpoint there under
    /// the current layout (`touch_dirty` lists the non-empty slots).
    touch: Vec<Vec<u32>>,
    touch_dirty: Vec<u32>,
    /// Per-layer / per-gate stamps for candidate-local dirty marking.
    layer_mark: Vec<u32>,
    gate_mark: Vec<u32>,
    mark_epoch: u32,
    /// Dirty-layer worklist reused across candidates.
    dirty_layers: Vec<u32>,
    /// Layer-major mirrors of the per-gate arrays (permuted by
    /// `layer_list`), so dirty-layer re-folds read sequentially instead
    /// of gathering: factors mirrored per window, endpoints and base
    /// contributions per step.
    lm_w: Vec<f64>,
    lm_disc: Vec<f64>,
    lm_ep1: Vec<u32>,
    lm_ep2: Vec<u32>,
    lm_contrib: Vec<f64>,
    /// Per layer-major position: the base fold's accumulator value
    /// *before* adding that position's contribution. A dirty layer
    /// re-folds from its first affected position seeded with this prefix
    /// — the adds before it are unchanged, so the seed is bitwise the
    /// reference accumulator at that point.
    lm_prefix: Vec<f64>,
    /// Per active gate: its layer-major position (index into the `lm_*`
    /// mirrors).
    lm_pos: Vec<u32>,
    /// Per layer: minimum affected layer-major position for the current
    /// candidate (valid only while `layer_mark` holds the epoch).
    layer_min: Vec<u32>,
}

impl WindowScratch {
    pub fn new(n_gates: usize, device: &CouplingGraph) -> Self {
        WindowScratch {
            gates: Vec::new(),
            front_logicals: Vec::new(),
            layer: vec![0; n_gates],
            stamp: vec![0; n_gates],
            epoch: 0,
            heap: BinaryHeap::new(),
            built_for: 0,
            prepared_for: 0,
            front_only: false,
            factor_w: Vec::new(),
            factor_disc: Vec::new(),
            layer_ix: Vec::new(),
            ep1: Vec::new(),
            ep2: Vec::new(),
            base_contrib: Vec::new(),
            sizes: Vec::new(),
            front_ix: Vec::new(),
            base_front_sum: 0,
            gamma: Vec::new(),
            edge_stamp: vec![0; device.n_directed_edges()],
            edge_epoch: 0,
            base_gamma: Vec::new(),
            layer_list: Vec::new(),
            layer_start: Vec::new(),
            front_flag: Vec::new(),
            cursor: Vec::new(),
            touch: vec![Vec::new(); device.n_qubits()],
            touch_dirty: Vec::new(),
            layer_mark: Vec::new(),
            gate_mark: Vec::new(),
            mark_epoch: 0,
            dirty_layers: Vec::new(),
            lm_w: Vec::new(),
            lm_disc: Vec::new(),
            lm_ep1: Vec::new(),
            lm_ep2: Vec::new(),
            lm_contrib: Vec::new(),
            lm_prefix: Vec::new(),
            lm_pos: Vec::new(),
            layer_min: Vec::new(),
        }
    }

    /// Rebuilds the window for the current (blocked) front layer; a no-op
    /// while the front is unchanged since the last build.
    pub fn rebuild(&mut self, state: &mut RoutingState<'_>, weights: &[u64], c_const: usize) {
        if self.built_for == state.front_version() {
            return;
        }
        self.built_for = state.front_version();
        self.gates.clear();
        self.front_logicals.clear();
        self.heap.clear();
        self.epoch += 1;
        let epoch = self.epoch;
        // nf = number of distinct logical qubits in the blocked front; the
        // state caches the sorted operand list across swap steps.
        let nf = state.front_logicals().len();
        let k = c_const * nf.max(1);
        for &g in state.front() {
            self.stamp[g as usize] = epoch;
            self.layer[g as usize] = 0;
            self.heap.push(Reverse(g));
        }
        let circuit = state.circuit();
        let dag = state.dag();
        let mut collected = 0usize;
        while let Some(Reverse(g)) = self.heap.pop() {
            let gate = &circuit.gates()[g as usize];
            // Every walked gate is unexecuted (front gates and their
            // transitive successors), so front membership is exactly
            // "no unexecuted predecessors" — one bit test.
            let is_front = state.in_front(g);
            let l = if is_front {
                u32::from(gate.is_two_qubit())
            } else {
                // All unexecuted predecessors were popped earlier (smaller
                // topological index); executed or unvisited ones contribute
                // layer 0, which the epoch stamp encodes.
                let base = dag
                    .preds(g)
                    .iter()
                    .map(|&p| {
                        if self.stamp[p as usize] == epoch {
                            self.layer[p as usize]
                        } else {
                            0
                        }
                    })
                    .max()
                    .unwrap_or(0);
                base + u32::from(gate.is_two_qubit())
            };
            self.layer[g as usize] = l;
            if let Some((a, b)) = gate.qubit_pair() {
                self.gates.push(ScoredGate {
                    q1: a,
                    q2: b,
                    omega: weights.get(g as usize).copied().unwrap_or(0),
                    layer: l,
                });
                if is_front {
                    self.front_logicals.push(a);
                    self.front_logicals.push(b);
                } else {
                    collected += 1;
                    if collected >= k {
                        break;
                    }
                }
            }
            for &s in dag.succs(g) {
                if self.stamp[s as usize] != epoch {
                    self.stamp[s as usize] = epoch;
                    self.layer[s as usize] = 0;
                    self.heap.push(Reverse(s));
                }
            }
        }
        self.front_logicals.sort_unstable();
        self.front_logicals.dedup();
    }

    /// Candidate SWAPs of §V-D: every coupling-graph edge incident to a
    /// physical qubit hosting one of the window's front-layer logicals
    /// (deduplicated, first occurrence wins). Layout-dependent, so derived
    /// per step from the cached window — into the reusable `out` buffer,
    /// with O(1) per-edge epoch-stamped dedup instead of an O(k²) scan.
    pub fn swap_candidates(&mut self, state: &RoutingState<'_>, out: &mut Vec<(u32, u32)>) {
        out.clear();
        self.edge_epoch += 1;
        for &l in &self.front_logicals {
            let p1 = state.layout().phys(l);
            crate::state::push_incident_edges(
                state.device(),
                p1,
                self.edge_epoch,
                &mut self.edge_stamp,
                out,
            );
        }
    }

    /// Freezes the layout-independent scoring factors of the current
    /// window: per active gate the ω weight `w` and layer discount (both
    /// functions of the cost variant only), the layer index, and the
    /// per-layer gate counts `|G_ℓ|`. A no-op while the window is
    /// unchanged. "Active" drops exactly the gates [`SwapCost::score`]
    /// skips (non-front layers under [`CostVariant::DistanceOnly`]), so
    /// the accumulation order over active gates equals its gate loop.
    pub fn prepare(&mut self, cost: &SwapCost) {
        if self.prepared_for == self.built_for {
            return;
        }
        self.prepared_for = self.built_for;
        self.front_only = cost.variant() == CostVariant::DistanceOnly;
        self.factor_w.clear();
        self.factor_disc.clear();
        self.layer_ix.clear();
        self.sizes.clear();
        self.front_ix.clear();
        self.front_flag.clear();
        for g in &self.gates {
            let layer = g.layer.max(1) as usize;
            if self.front_only && layer > 1 {
                continue;
            }
            if self.sizes.len() < layer {
                self.sizes.resize(layer, 0);
            }
            if g.layer <= 1 {
                self.front_ix.push(self.factor_w.len() as u32);
            }
            self.front_flag.push(g.layer <= 1);
            self.factor_w.push(cost.omega_factor(g.omega));
            self.factor_disc.push(cost.layer_discount(layer));
            self.layer_ix.push((layer - 1) as u32);
            self.sizes[layer - 1] += 1;
        }
        // Layer-major index lists (stable within a layer), so a dirty
        // layer can be re-folded in window order without scanning the
        // whole window.
        self.layer_start.clear();
        self.layer_start.push(0);
        let mut acc = 0u32;
        for &s in &self.sizes {
            acc += s;
            self.layer_start.push(acc);
        }
        self.cursor.clear();
        self.cursor
            .extend_from_slice(&self.layer_start[..self.sizes.len()]);
        self.layer_list.clear();
        self.layer_list.resize(self.layer_ix.len(), 0);
        self.lm_pos.clear();
        self.lm_pos.resize(self.layer_ix.len(), 0);
        for (i, &l) in self.layer_ix.iter().enumerate() {
            let c = &mut self.cursor[l as usize];
            self.layer_list[*c as usize] = i as u32;
            self.lm_pos[i] = *c;
            *c += 1;
        }
        self.lm_w.clear();
        self.lm_disc.clear();
        for &gi in &self.layer_list {
            self.lm_w.push(self.factor_w[gi as usize]);
            self.lm_disc.push(self.factor_disc[gi as usize]);
        }
    }

    /// Refreshes the layout-dependent scoring state for one SWAP step:
    /// each active gate's physical endpoints and base contribution
    /// `(w · d) · discount` under the *current* layout, plus the
    /// front-layer distance sum the progress tie-break compares against.
    /// Costs one window scan — the same as a single candidate scored the
    /// naive way — and makes every subsequent candidate score O(window)
    /// adds with no layout mutation.
    pub fn begin_step(&mut self, state: &RoutingState<'_>) {
        let layout = state.layout();
        let dist = state.dist();
        self.ep1.clear();
        self.ep2.clear();
        self.base_contrib.clear();
        for &p in &self.touch_dirty {
            self.touch[p as usize].clear();
        }
        self.touch_dirty.clear();
        let mut active = 0usize;
        for g in &self.gates {
            let layer = g.layer.max(1) as usize;
            if self.front_only && layer > 1 {
                continue;
            }
            let e1 = layout.phys(g.q1);
            let e2 = layout.phys(g.q2);
            let d = dist.get(e1, e2) as f64;
            self.ep1.push(e1);
            self.ep2.push(e2);
            self.base_contrib
                .push(self.factor_w[active] * d * self.factor_disc[active]);
            for e in [e1, e2] {
                let slot = &mut self.touch[e as usize];
                if slot.is_empty() {
                    self.touch_dirty.push(e);
                }
                slot.push(active as u32);
            }
            active += 1;
        }
        debug_assert_eq!(active, self.factor_w.len());
        self.base_front_sum = self
            .front_ix
            .iter()
            .map(|&i| u32::from(dist.get(self.ep1[i as usize], self.ep2[i as usize])))
            .sum();
        self.lm_ep1.clear();
        self.lm_ep2.clear();
        self.lm_contrib.clear();
        for &gi in &self.layer_list {
            self.lm_ep1.push(self.ep1[gi as usize]);
            self.lm_ep2.push(self.ep2[gi as usize]);
            self.lm_contrib.push(self.base_contrib[gi as usize]);
        }
        // Base Γ + prefix accumulators: each layer's base fold in window
        // order — bitwise the reference accumulation for any layer a
        // candidate leaves untouched, and a bitwise-exact restart seed
        // (`lm_prefix`) for every position of a layer it touches.
        self.base_gamma.clear();
        self.lm_prefix.clear();
        self.lm_prefix.resize(self.lm_contrib.len(), 0.0);
        for l in 0..self.sizes.len() {
            let lo = self.layer_start[l] as usize;
            let hi = self.layer_start[l + 1] as usize;
            let mut acc = 0.0f64;
            for k in lo..hi {
                self.lm_prefix[k] = acc;
                acc += self.lm_contrib[k];
            }
            self.base_gamma.push(acc);
        }
        self.layer_mark.clear();
        self.layer_mark.resize(self.sizes.len(), 0);
        self.layer_min.clear();
        self.layer_min.resize(self.sizes.len(), 0);
        self.gate_mark.clear();
        self.gate_mark.resize(self.base_contrib.len(), 0);
        self.mark_epoch = 0;
    }

    /// The current-layout front-layer distance sum (tie-break baseline).
    pub fn base_front_sum(&self) -> u32 {
        self.base_front_sum
    }

    /// Scores candidate SWAP `(p1, p2)` against the prepared window:
    /// bit-for-bit the value of [`SwapCost::score`] on the speculative
    /// layout, but computed by re-accumulating the cached per-gate
    /// contributions (recomputing only gates with an endpoint on `p1` or
    /// `p2`) instead of re-deriving `w`, `φ` and `D` for every gate.
    pub fn score_candidate(
        &mut self,
        cost: &SwapCost,
        dist: &DistanceMatrix,
        p1: u32,
        p2: u32,
        decay: f64,
    ) -> f64 {
        // Γ[ℓ] is an independent fold over layer ℓ's gates in window
        // order, so only layers holding a gate incident to p1/p2 can
        // differ from the per-step base — re-fold exactly those (in the
        // same within-layer order) and reuse `base_gamma` for the rest.
        self.gamma.clear();
        self.gamma.extend_from_slice(&self.base_gamma);
        self.mark_epoch += 1;
        let epoch = self.mark_epoch;
        self.dirty_layers.clear();
        for e in [p1, p2] {
            for i in 0..self.touch[e as usize].len() {
                let g = self.touch[e as usize][i] as usize;
                let l = self.layer_ix[g] as usize;
                let pos = self.lm_pos[g];
                if self.layer_mark[l] != epoch {
                    self.layer_mark[l] = epoch;
                    self.dirty_layers.push(l as u32);
                    self.layer_min[l] = pos;
                } else if pos < self.layer_min[l] {
                    self.layer_min[l] = pos;
                }
            }
        }
        for &l in &self.dirty_layers {
            let lo = self.layer_min[l as usize] as usize;
            let hi = self.layer_start[l as usize + 1] as usize;
            let mut acc = self.lm_prefix[lo];
            for k in lo..hi {
                let e1 = self.lm_ep1[k];
                let e2 = self.lm_ep2[k];
                let contrib = if e1 == p1 || e1 == p2 || e2 == p1 || e2 == p2 {
                    let f1 = if e1 == p1 {
                        p2
                    } else if e1 == p2 {
                        p1
                    } else {
                        e1
                    };
                    let f2 = if e2 == p1 {
                        p2
                    } else if e2 == p2 {
                        p1
                    } else {
                        e2
                    };
                    self.lm_w[k] * dist.get(f1, f2) as f64 * self.lm_disc[k]
                } else {
                    self.lm_contrib[k]
                };
                acc += contrib;
            }
            self.gamma[l as usize] = acc;
        }
        cost.combine(&self.gamma, &self.sizes, decay)
    }

    /// The front-layer distance sum under the speculative layout after
    /// SWAP `(p1, p2)` — the integer progress term of the tie-break.
    /// Integer addition is associative, so the sum is updated as an exact
    /// delta over the front gates incident to `p1`/`p2` instead of
    /// re-summing the whole front.
    pub fn front_sum_after(&mut self, dist: &DistanceMatrix, p1: u32, p2: u32) -> u32 {
        self.mark_epoch += 1;
        let epoch = self.mark_epoch;
        let mut sum = i64::from(self.base_front_sum);
        for e in [p1, p2] {
            for k in 0..self.touch[e as usize].len() {
                let i = self.touch[e as usize][k] as usize;
                if !self.front_flag[i] || self.gate_mark[i] == epoch {
                    continue;
                }
                self.gate_mark[i] = epoch;
                let e1 = self.ep1[i];
                let e2 = self.ep2[i];
                let f1 = if e1 == p1 {
                    p2
                } else if e1 == p2 {
                    p1
                } else {
                    e1
                };
                let f2 = if e2 == p1 {
                    p2
                } else if e2 == p2 {
                    p1
                } else {
                    e2
                };
                sum += i64::from(dist.get(f1, f2));
                sum -= i64::from(dist.get(e1, e2));
            }
        }
        sum as u32
    }
}

/// The dependence-driven mapping loop over the incremental state.
pub(crate) fn route_with(
    state: &mut RoutingState<'_>,
    weights: &[u64],
    config: &QlosureConfig,
    rng: &mut StdRng,
) {
    let cost = SwapCost::with_scaling(
        config.cost,
        config.omega_smoothing,
        config.omega_scaling,
        config.future_weight,
    );
    let c_const = state.device().max_degree() + config.lookahead_margin.max(1);
    let stall_limit = 3 * state.dist().diameter() as usize + config.stall_slack;
    let mut stall = 0usize;
    let mut window = WindowScratch::new(state.dag().n_gates(), state.device());
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    let mut scored: Vec<f64> = Vec::new();
    let mut best: Vec<(u32, u32)> = Vec::new();
    loop {
        // EXTRACT_READY_GATES: everything in Lf executable under φ.
        if state.execute_ready().ran > 0 {
            state.reset_decay();
            stall = 0;
        }
        if state.is_done() {
            break;
        }
        // All front gates are blocked two-qubit gates: pick a SWAP.
        window.rebuild(state, weights, c_const);
        window.prepare(&cost);
        window.begin_step(state);
        window.swap_candidates(state, &mut candidates);
        debug_assert!(!candidates.is_empty(), "blocked front with no candidates");
        let clock_max = state.clock_max();
        let busy = |s: &RoutingState<'_>, p: u32| -> f64 {
            if clock_max == 0 {
                0.0
            } else {
                config.busy_weight * f64::from(s.clock(p)) / f64::from(clock_max)
            }
        };
        let dist = state.dist();
        scored.clear();
        let mut best_score = f64::INFINITY;
        for &(p1, p2) in &candidates {
            let d1 = state.decay(p1) + busy(state, p1);
            let d2 = state.decay(p2) + busy(state, p2);
            let decay = d1.max(d2);
            let score = window.score_candidate(&cost, dist, p1, p2, decay);
            best_score = best_score.min(score);
            scored.push(score);
        }
        // Near-ties resolve toward swaps that (a) strictly shrink the
        // front layer's total distance (guaranteed progress) and (b)
        // finish earliest on the schedule (idle qubits are almost free,
        // depth-wise), then randomly.
        let base_front = window.base_front_sum();
        let cutoff = best_score + best_score.abs() * config.tie_epsilon + 1e-9;
        best.clear();
        let mut best_key = (false, u32::MAX);
        for (i, &(p1, p2)) in candidates.iter().enumerate() {
            if scored[i] > cutoff {
                continue;
            }
            let progress = window.front_sum_after(dist, p1, p2) < base_front;
            let done = state.swap_completion(p1, p2);
            let key = (progress, done);
            let better = match (key.0, best_key.0) {
                (true, false) => true,
                (false, true) => false,
                _ => done < best_key.1,
            };
            if better {
                best_key = key;
                best.clear();
                best.push((p1, p2));
            } else if key == best_key {
                best.push((p1, p2));
            }
        }
        let (p1, p2) = best[rng.random_range(0..best.len())];
        state.apply_swap(p1, p2);
        state.bump_decay(p1, config.decay_delta);
        state.bump_decay(p2, config.decay_delta);
        stall += 1;
        if stall > stall_limit {
            // Forced progress: route the heaviest front gate directly.
            let &g = state
                .front()
                .iter()
                .max_by_key(|&&g| weights.get(g as usize).copied().unwrap_or(0))
                .expect("front non-empty");
            state.force_route(g);
            state.reset_decay();
            stall = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify_routing;
    use topology::backends;

    fn verify(circuit: &Circuit, device: &CouplingGraph, result: &MappingResult) {
        verify_routing(
            circuit,
            &result.routed,
            &|a, b| device.is_adjacent(a, b),
            &result.initial_layout,
        )
        .expect("routing must verify");
    }

    #[test]
    fn already_routable_circuit_gets_no_swaps() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let r = QlosureMapper::default().map(&c, &device);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.routed.qop_count(), 4);
        verify(&c, &device, &r);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let device = backends::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = QlosureMapper::default().map(&c, &device);
        assert!(
            r.swaps >= 3,
            "distance-4 pair needs >= 3 swaps, got {}",
            r.swaps
        );
        verify(&c, &device, &r);
    }

    #[test]
    fn ghz_on_ring() {
        let device = backends::ring(6);
        let mut c = Circuit::new(6);
        c.h(0);
        for i in 1..6 {
            c.cx(0, i);
        }
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn respects_dependences_across_swaps() {
        let device = backends::line(6);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(5, 0); // must still follow the first gate logically
        c.h(5);
        c.cx(0, 3);
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn barriers_and_measures_survive() {
        let device = backends::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.barrier(&[0, 1]);
        c.cx(0, 3);
        c.measure_all();
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
        assert_eq!(
            r.routed
                .gates()
                .iter()
                .filter(|g| g.kind == circuit::GateKind::Measure)
                .count(),
            4
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let device = backends::king_grid(4, 4);
        let mut c = Circuit::new(16);
        let mut s = 7u64;
        for _ in 0..60 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((s >> 33) % 16) as u32;
            let b = ((s >> 13) % 16) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        let m = QlosureMapper::default();
        let r1 = m.map(&c, &device);
        let r2 = m.map(&c, &device);
        assert_eq!(r1.routed, r2.routed);
        assert_eq!(r1.swaps, r2.swaps);
    }

    #[test]
    fn bidirectional_initial_mapping_verifies_and_helps() {
        let device = backends::line(8);
        let mut c = Circuit::new(8);
        // Long-range pairs under identity; a smarter layout reduces swaps.
        for _ in 0..3 {
            c.cx(0, 7);
            c.cx(1, 6);
            c.cx(2, 5);
        }
        let identity = QlosureMapper::default().map(&c, &device);
        let bidi = QlosureMapper::with_config(QlosureConfig {
            initial: InitialMapping::Bidirectional { passes: 2 },
            ..QlosureConfig::default()
        })
        .map(&c, &device);
        verify(&c, &device, &identity);
        verify(&c, &device, &bidi);
        assert!(
            bidi.swaps <= identity.swaps,
            "bidirectional {} should not exceed identity {}",
            bidi.swaps,
            identity.swaps
        );
    }

    #[test]
    fn all_cost_variants_produce_valid_routings() {
        let device = backends::square_grid(3, 3);
        let mut c = Circuit::new(9);
        let mut s = 99u64;
        for _ in 0..40 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let a = ((s >> 33) % 9) as u32;
            let b = ((s >> 13) % 9) as u32;
            if a != b {
                c.cx(a, b);
            }
        }
        for variant in [
            CostVariant::DistanceOnly,
            CostVariant::LayerAdjusted,
            CostVariant::DependencyWeighted,
        ] {
            let r = QlosureMapper::with_config(QlosureConfig {
                cost: variant,
                ..QlosureConfig::default()
            })
            .map(&c, &device);
            verify(&c, &device, &r);
        }
    }

    #[test]
    fn maps_onto_larger_device_than_circuit() {
        let device = backends::sherbrooke();
        let mut c = Circuit::new(10);
        for i in 0..9 {
            c.cx(i, i + 1);
        }
        c.cx(0, 9);
        let r = QlosureMapper::default().map(&c, &device);
        verify(&c, &device, &r);
    }

    #[test]
    fn noise_aware_routing_avoids_bad_links() {
        // Ring with one terrible coupling: the noise-aware router must
        // place its SWAPs on the healthy side of the ring.
        let device = backends::ring(8);
        let mut noise = topology::NoiseModel::uniform(&device, 0.002, 0.0002);
        noise.set_edge_error(0, 1, 0.35);
        let mut c = Circuit::new(8);
        for _ in 0..4 {
            c.cx(0, 4); // diametrically opposite; either direction works
            c.cx(4, 0);
        }
        let mapper = QlosureMapper::default();
        let aware = mapper.map_noise_aware(&c, &device, &noise);
        verify(&c, &device, &aware);
        let gates: Vec<(&str, &[u32])> = aware
            .routed
            .gates()
            .iter()
            .map(|g| (g.kind.name(), g.qubits.as_slice()))
            .collect();
        let p_aware = noise.success_probability(gates);
        let unaware = mapper.map(&c, &device);
        verify(&c, &device, &unaware);
        let gates: Vec<(&str, &[u32])> = unaware
            .routed
            .gates()
            .iter()
            .map(|g| (g.kind.name(), g.qubits.as_slice()))
            .collect();
        let p_unaware = noise.success_probability(gates);
        // The noise-aware route never uses the bad link for swaps.
        let bad_swaps = aware
            .routed
            .gates()
            .iter()
            .filter(|g| {
                g.kind == circuit::GateKind::Swap && g.qubits.contains(&0) && g.qubits.contains(&1)
            })
            .count();
        assert_eq!(bad_swaps, 0, "noise-aware route crossed the bad link");
        assert!(
            p_aware >= p_unaware * 0.99,
            "noise-aware {p_aware} should not be meaningfully worse than {p_unaware}"
        );
    }

    #[test]
    fn window_layers_increase_with_depth() {
        // chain: cx(0,2); cx(2,3); cx(3,1) — blocked front at distance.
        let device = backends::line(6);
        let mut c = Circuit::new(4);
        c.cx(0, 2); // blocked under identity on a line
        c.cx(2, 3);
        c.cx(3, 1);
        let dist = device.distances();
        let mut state = RoutingState::new(&c, &device, &dist, Layout::identity(4, 6));
        state.execute_ready();
        let weights = [3, 1, 0];
        let mut w = WindowScratch::new(state.dag().n_gates(), &device);
        w.rebuild(&mut state, &weights, 4);
        assert_eq!(w.gates[0].layer, 1);
        assert!(w.gates.iter().any(|g| g.layer == 2));
        assert!(w.gates.iter().any(|g| g.layer == 3));
    }

    #[test]
    fn routing_pass_without_weights_analysis_still_routes() {
        // Composed without a DependenceWeightsPass the routing pass
        // computes the weights itself — same result.
        let device = backends::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(1, 3);
        let with_analysis = QlosureMapper::default().map(&c, &device);
        let without = MappingPipeline::new(
            IdentityLayoutPass,
            QlosureRoutingPass::new(QlosureConfig::default()),
        )
        .map(&c, &device);
        assert_eq!(with_analysis, without);
    }
}
