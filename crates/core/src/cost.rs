//! The Qlosure SWAP-cost heuristic `M(s)` (paper Eq. 2).

use crate::layout::Layout;
use topology::DistanceMatrix;

/// Which cost components are active — the axes of the paper's §VI-E
/// ablation study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostVariant {
    /// Distance of front-layer gates only (ablation baseline (a)).
    DistanceOnly,
    /// Layer discount `1/ℓ` and per-layer normalization, unit gate weights
    /// (ablation (b)).
    LayerAdjusted,
    /// Full Eq. (2): transitive dependence weights `ω` on top of the layer
    /// machinery (ablation (c); the Qlosure default).
    #[default]
    DependencyWeighted,
}

/// One look-ahead gate with everything `M` needs to score it.
#[derive(Clone, Copy, Debug)]
pub struct ScoredGate {
    /// Logical operands.
    pub q1: u32,
    /// Logical operands.
    pub q2: u32,
    /// Transitive dependence weight `ω` of the gate.
    pub omega: u64,
    /// Dependence-distance layer `ℓ >= 1` (1 = front layer).
    pub layer: u32,
}

/// How the raw transitive-successor count enters the cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OmegaScaling {
    /// Use `ω` as-is (the paper's Eq. 2 verbatim).
    #[default]
    Linear,
    /// Use `√ω` — compresses the dominance of early high-criticality
    /// gates.
    Sqrt,
    /// Use `ln(1 + ω)`.
    Log,
}

/// Evaluator for the composite cost
/// `M(s) = max(δ_{p1}, δ_{p2}) · Σ_ℓ Γ_ℓ / |G_ℓ|` with
/// `Γ_ℓ = Σ_{g ∈ G_ℓ} ω_g · D[φ_s(g_{q1}), φ_s(g_{q2})] / ℓ`.
///
/// Gate weights are smoothed to `ω + smoothing` so that gates with no
/// transitive dependents (the tail of the circuit) still exert distance
/// pressure; `smoothing = 1` by default, set it to 0 (with
/// [`OmegaScaling::Linear`]) to evaluate the paper's formula verbatim.
#[derive(Clone, Debug)]
pub struct SwapCost {
    variant: CostVariant,
    smoothing: u64,
    scaling: OmegaScaling,
    future_weight: f64,
}

impl SwapCost {
    /// Creates an evaluator with the default ω scaling and future weight.
    pub fn new(variant: CostVariant, smoothing: u64) -> Self {
        SwapCost {
            variant,
            smoothing,
            scaling: OmegaScaling::default(),
            future_weight: 1.0,
        }
    }

    /// Creates an evaluator with an explicit ω scaling and a weight on the
    /// non-front layers (`ℓ >= 2`); `future_weight = 1.0` evaluates
    /// Eq. (2) verbatim, smaller values re-balance toward the front layer
    /// (needed when look-ahead layers are singletons, e.g. sequential
    /// kernels, where the harmonic sum of `1/ℓ` would otherwise outweigh
    /// the blocked gate itself).
    pub fn with_scaling(
        variant: CostVariant,
        smoothing: u64,
        scaling: OmegaScaling,
        future_weight: f64,
    ) -> Self {
        SwapCost {
            variant,
            smoothing,
            scaling,
            future_weight,
        }
    }

    /// The active variant.
    pub fn variant(&self) -> CostVariant {
        self.variant
    }

    /// The ω weight factor `w` of a gate — a pure function of the variant
    /// and scaling, shared between [`SwapCost::score`] and the router's
    /// batched per-candidate scorer so both produce bit-identical terms.
    pub(crate) fn omega_factor(&self, omega: u64) -> f64 {
        match self.variant {
            CostVariant::DistanceOnly | CostVariant::LayerAdjusted => 1.0,
            CostVariant::DependencyWeighted => {
                let raw = (omega + self.smoothing) as f64;
                match self.scaling {
                    OmegaScaling::Linear => raw,
                    OmegaScaling::Sqrt => raw.sqrt(),
                    OmegaScaling::Log => raw.ln_1p(),
                }
            }
        }
    }

    /// The layer discount `1/ℓ` (or 1 under
    /// [`CostVariant::DistanceOnly`]).
    pub(crate) fn layer_discount(&self, layer: usize) -> f64 {
        match self.variant {
            CostVariant::DistanceOnly => 1.0,
            _ => 1.0 / layer as f64,
        }
    }

    /// Folds accumulated per-layer `Γ_ℓ` and `|G_ℓ|` into the final cost —
    /// the exact tail of [`SwapCost::score`], factored out so the batched
    /// scorer combines its Γ buffer with the identical float fold.
    pub(crate) fn combine(&self, gamma: &[f64], sizes: &[u32], decay: f64) -> f64 {
        let sum: f64 = gamma
            .iter()
            .zip(sizes)
            .enumerate()
            .filter(|&(_, (_, &n))| n > 0)
            .map(|(i, (g, &n))| {
                let w = if i == 0 { 1.0 } else { self.future_weight };
                w * g / n as f64
            })
            .sum();
        decay * sum
    }

    /// Scores the tentative layout `φs` (the layout *after* the candidate
    /// swap) against the layered look-ahead window.
    ///
    /// `gates` must be sorted or at least grouped by `layer`; only layer 1
    /// is consulted by [`CostVariant::DistanceOnly`].
    pub fn score(
        &self,
        gates: &[ScoredGate],
        layout: &Layout,
        dist: &DistanceMatrix,
        decay: f64,
    ) -> f64 {
        // Accumulate Γ_ℓ and |G_ℓ| per layer.
        let mut gamma: Vec<f64> = Vec::new();
        let mut sizes: Vec<u32> = Vec::new();
        for g in gates {
            let layer = g.layer.max(1) as usize;
            if self.variant == CostVariant::DistanceOnly && layer > 1 {
                continue;
            }
            if gamma.len() < layer {
                gamma.resize(layer, 0.0);
                sizes.resize(layer, 0);
            }
            let d = dist.get(layout.phys(g.q1), layout.phys(g.q2)) as f64;
            let w = self.omega_factor(g.omega);
            let discount = self.layer_discount(layer);
            gamma[layer - 1] += w * d * discount;
            sizes[layer - 1] += 1;
        }
        self.combine(&gamma, &sizes, decay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::backends;

    fn line_ctx(n: usize) -> (topology::CouplingGraph, DistanceMatrix) {
        let g = backends::line(n);
        let d = g.distances();
        (g, d)
    }

    fn sg(q1: u32, q2: u32, omega: u64, layer: u32) -> ScoredGate {
        ScoredGate {
            q1,
            q2,
            omega,
            layer,
        }
    }

    #[test]
    fn distance_only_scores_front_distance() {
        let (_, d) = line_ctx(6);
        let layout = Layout::identity(6, 6);
        let cost = SwapCost::new(CostVariant::DistanceOnly, 1);
        // Front gate (0, 4): distance 4. Deeper layers ignored.
        let gates = [sg(0, 4, 10, 1), sg(1, 5, 99, 2)];
        let score = cost.score(&gates, &layout, &d, 1.0);
        assert!((score - 4.0).abs() < 1e-9);
    }

    #[test]
    fn layer_adjusted_discounts_deeper_layers() {
        let (_, d) = line_ctx(8);
        let layout = Layout::identity(8, 8);
        let cost = SwapCost::new(CostVariant::LayerAdjusted, 1);
        // Same distance in layer 1 vs layer 2: layer 2 contributes half.
        let l1 = cost.score(&[sg(0, 3, 0, 1)], &layout, &d, 1.0);
        let l2 = cost.score(&[sg(0, 3, 0, 2)], &layout, &d, 1.0);
        assert!((l1 - 3.0).abs() < 1e-9);
        assert!((l2 - 1.5).abs() < 1e-9);
    }

    #[test]
    fn dependency_weighting_prefers_freeing_low_omega_gates() {
        let (_, d) = line_ctx(8);
        let cost = SwapCost::new(CostVariant::DependencyWeighted, 1);
        // Two candidate layouts; the gate with high omega dominates the
        // score, so the layout shortening *its* distance wins.
        let heavy = sg(0, 4, 50, 1);
        let light = sg(5, 7, 0, 1);
        // Layout A: identity — heavy at distance 4, light at 2.
        let a = Layout::identity(8, 8);
        // Layout B: swap(1, 2)-like permutation bringing heavy closer:
        let b = Layout::from_assignment(&[1, 0, 2, 3, 4, 5, 6, 7], 8);
        let score_a = cost.score(&[heavy, light], &a, &d, 1.0);
        let score_b = cost.score(&[heavy, light], &b, &d, 1.0);
        assert!(score_b < score_a);
    }

    #[test]
    fn normalization_divides_by_layer_size() {
        let (_, d) = line_ctx(10);
        let layout = Layout::identity(10, 10);
        let cost = SwapCost::new(CostVariant::LayerAdjusted, 1);
        // One gate at distance 2 vs two gates at distance 2 each: same
        // normalized contribution.
        let one = cost.score(&[sg(0, 2, 0, 1)], &layout, &d, 1.0);
        let two = cost.score(&[sg(0, 2, 0, 1), sg(4, 6, 0, 1)], &layout, &d, 1.0);
        assert!((one - two).abs() < 1e-9);
    }

    #[test]
    fn decay_scales_multiplicatively() {
        let (_, d) = line_ctx(4);
        let layout = Layout::identity(4, 4);
        let cost = SwapCost::new(CostVariant::DependencyWeighted, 1);
        let gates = [sg(0, 3, 2, 1)];
        let base = cost.score(&gates, &layout, &d, 1.0);
        let decayed = cost.score(&gates, &layout, &d, 1.002);
        assert!((decayed / base - 1.002).abs() < 1e-9);
    }

    #[test]
    fn smoothing_keeps_terminal_gates_visible() {
        let (_, d) = line_ctx(6);
        let layout = Layout::identity(6, 6);
        let smoothed = SwapCost::new(CostVariant::DependencyWeighted, 1);
        let verbatim = SwapCost::new(CostVariant::DependencyWeighted, 0);
        let gates = [sg(0, 4, 0, 1)]; // terminal gate, ω = 0
        assert!(smoothed.score(&gates, &layout, &d, 1.0) > 0.0);
        assert_eq!(verbatim.score(&gates, &layout, &d, 1.0), 0.0);
    }
}
