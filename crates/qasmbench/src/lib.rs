//! QASMBench-style benchmark circuits (Li et al., ACM TQC 2023).
//!
//! The Qlosure paper evaluates on "all QASMBench circuits with 20–81
//! qubits" (41 circuits). The distributed suite is a collection of QASM
//! files; offline, this crate regenerates the same circuit *families* from
//! their defining algorithms at the same qubit counts — QFT, Cuccaro
//! ripple-carry adders, shift-and-add multipliers, quantum-GAN ansätze,
//! bucket-brigade QRAM, GHZ/cat/W states, Bernstein–Vazirani, Ising/QAOA
//! evolution, phase estimation, swap tests, variational ansätze, …
//!
//! Controlled-phase and Toffoli gates are decomposed to the 1-/2-qubit
//! basis the mappers route (matching how the paper's QOP counts reflect
//! transpiled circuits). Gate counts are therefore close to, but not
//! byte-identical with, the distributed files; the mapping-relevant
//! structure (interaction pattern, parallelism, depth profile) is the
//! same. See `DESIGN.md` §3.
//!
//! # Example
//!
//! ```
//! use qasmbench::{suite, generate, Family};
//!
//! let qft = generate(Family::Qft, 63);
//! assert_eq!(qft.n_qubits(), 63);
//! assert!(qft.two_qubit_count() > 3000);
//! assert_eq!(suite().len(), 41); // the paper's 41-circuit evaluation set
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arithmetic;
mod circuits;

pub use arithmetic::{cuccaro_adder, multiplier};
pub use circuits::{
    bernstein_vazirani, cat_state, deep_entangling_ansatz, ghz, ising, knn, qaoa_maxcut, qft, qpe,
    qram, qugan, swap_test, variational_ansatz, w_state,
};

use circuit::Circuit;

/// The circuit families of the evaluation suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Family {
    Ghz,
    Cat,
    WState,
    BernsteinVazirani,
    Ising,
    Qft,
    Adder,
    Multiplier,
    Qugan,
    Qram,
    Dnn,
    Qaoa,
    Qpe,
    SwapTest,
    Knn,
    Vqe,
}

impl Family {
    /// QASMBench-style short name.
    pub fn short_name(&self) -> &'static str {
        match self {
            Family::Ghz => "ghz",
            Family::Cat => "cat",
            Family::WState => "wstate",
            Family::BernsteinVazirani => "bv",
            Family::Ising => "ising",
            Family::Qft => "qft",
            Family::Adder => "adder",
            Family::Multiplier => "multiplier",
            Family::Qugan => "qugan",
            Family::Qram => "qram",
            Family::Dnn => "dnn",
            Family::Qaoa => "qaoa",
            Family::Qpe => "qpe",
            Family::SwapTest => "swap_test",
            Family::Knn => "knn",
            Family::Vqe => "vqe",
        }
    }
}

/// Generates one circuit of `family` over `n` qubits.
///
/// # Panics
///
/// Panics when `n` is below the family's minimum size (documented on each
/// generator).
pub fn generate(family: Family, n: usize) -> Circuit {
    match family {
        Family::Ghz => ghz(n),
        Family::Cat => cat_state(n),
        Family::WState => w_state(n),
        Family::BernsteinVazirani => bernstein_vazirani(n),
        Family::Ising => ising(n, 10),
        Family::Qft => qft(n),
        Family::Adder => cuccaro_adder(n),
        Family::Multiplier => multiplier(n),
        Family::Qugan => qugan(n, 13),
        Family::Qram => qram(n),
        Family::Dnn => deep_entangling_ansatz(n, 8),
        Family::Qaoa => qaoa_maxcut(n, 4, n as u64),
        Family::Qpe => qpe(n),
        Family::SwapTest => swap_test(n),
        Family::Knn => knn(n),
        Family::Vqe => variational_ansatz(n, 6),
    }
}

/// One suite entry: family, qubit count and display name.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The circuit family.
    pub family: Family,
    /// Number of qubits.
    pub n_qubits: usize,
    /// QASMBench-style display name, e.g. `"qft_n63"`.
    pub name: String,
}

impl SuiteEntry {
    /// Generates the circuit.
    pub fn build(&self) -> Circuit {
        generate(self.family, self.n_qubits)
    }
}

/// The 41-circuit 20–81-qubit evaluation suite (§VI-D).
pub fn suite() -> Vec<SuiteEntry> {
    let table: &[(Family, usize)] = &[
        (Family::Qram, 20),
        (Family::Cat, 22),
        (Family::Ghz, 23),
        (Family::Vqe, 24),
        (Family::Qaoa, 24),
        (Family::Qpe, 25),
        (Family::SwapTest, 25),
        (Family::Ising, 26),
        (Family::WState, 27),
        (Family::Adder, 28),
        (Family::Qft, 29),
        (Family::BernsteinVazirani, 30),
        (Family::Knn, 31),
        (Family::Dnn, 33),
        (Family::Ising, 34),
        (Family::Cat, 35),
        (Family::WState, 36),
        (Family::Qugan, 39),
        (Family::Ghz, 40),
        (Family::Multiplier, 45),
        (Family::Qpe, 45),
        (Family::Qaoa, 48),
        (Family::Dnn, 51),
        (Family::Vqe, 52),
        (Family::Ising, 54),
        (Family::SwapTest, 57),
        (Family::Ghz, 60),
        (Family::Qft, 63),
        (Family::Adder, 64),
        (Family::Cat, 65),
        (Family::Ising, 66),
        (Family::Knn, 67),
        (Family::Qugan, 71),
        (Family::BernsteinVazirani, 70),
        (Family::WState, 76),
        (Family::Multiplier, 75),
        (Family::Ghz, 78),
        (Family::Qaoa, 80),
        (Family::Dnn, 72),
        (Family::Qpe, 74),
        (Family::Vqe, 81),
    ];
    let entries: Vec<SuiteEntry> = table
        .iter()
        .map(|&(family, n)| SuiteEntry {
            family,
            n_qubits: n,
            name: format!("{}_n{}", family.short_name(), n),
        })
        .collect();
    assert_eq!(entries.len(), 41, "the paper evaluates 41 circuits");
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_41_unique_entries_in_range() {
        let s = suite();
        assert_eq!(s.len(), 41);
        let mut names: Vec<&str> = s.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 41, "names must be unique");
        for e in &s {
            assert!(
                (20..=81).contains(&e.n_qubits),
                "{} out of the 20-81 range",
                e.name
            );
        }
    }

    #[test]
    fn every_suite_entry_builds_and_is_well_formed() {
        for e in suite() {
            let c = e.build();
            assert_eq!(c.n_qubits(), e.n_qubits, "{}", e.name);
            assert!(c.qop_count() > 0, "{} is empty", e.name);
            assert!(
                c.gates()
                    .iter()
                    .all(|g| g.qubits.len() <= 2 || g.kind == circuit::GateKind::Barrier),
                "{} contains 3+ qubit gates",
                e.name
            );
        }
    }

    #[test]
    fn headline_circuits_have_paper_scale_gate_counts() {
        // Table V anchors (QOPs): qram_n20 ~346, adder_n64 ~1156,
        // qft_n63 ~8689, multiplier_n75 ~15767. Same order of magnitude is
        // the reproduction target.
        let qram = generate(Family::Qram, 20);
        assert!(
            (150..=800).contains(&qram.qop_count()),
            "{}",
            qram.qop_count()
        );
        let adder = generate(Family::Adder, 64);
        assert!(
            (700..=2000).contains(&adder.qop_count()),
            "{}",
            adder.qop_count()
        );
        let qft = generate(Family::Qft, 63);
        assert!(
            (6000..=12000).contains(&qft.qop_count()),
            "{}",
            qft.qop_count()
        );
        let mult = generate(Family::Multiplier, 75);
        assert!(
            (8000..=30000).contains(&mult.qop_count()),
            "{}",
            mult.qop_count()
        );
    }
}
