//! Reversible arithmetic circuits: ripple-carry adder and multiplier.

use circuit::Circuit;

/// Cuccaro ripple-carry adder (quant-ph/0410184) over `n` qubits.
///
/// Register layout: `cin`, `a[b]`, `b[b]`, `cout` with `b = (n - 2) / 2`
/// — `adder_n28` has 13-bit operands, `adder_n64` 31-bit operands, like
/// the QASMBench instances.
///
/// # Panics
///
/// Panics if `n < 4` or `n` is odd.
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n >= 4 && n % 2 == 0, "adder needs an even qubit count >= 4");
    let b = (n - 2) / 2;
    let mut c = Circuit::new(n);
    let cin = 0u32;
    let a = |i: usize| (1 + i) as u32;
    let bq = |i: usize| (1 + b + i) as u32;
    let cout = (1 + 2 * b) as u32;
    // MAJ(x, y, z): z becomes majority carry.
    let maj = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    // UMA(x, y, z): un-majority and add.
    let uma = |c: &mut Circuit, x: u32, y: u32, z: u32| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(&mut c, cin, bq(0), a(0));
    for i in 1..b {
        maj(&mut c, a(i - 1), bq(i), a(i));
    }
    c.cx(a(b - 1), cout);
    for i in (1..b).rev() {
        uma(&mut c, a(i - 1), bq(i), a(i));
    }
    uma(&mut c, cin, bq(0), a(0));
    c
}

/// Width-truncated reversible schoolbook multiplier over `n = 5·b` qubits.
///
/// Register layout: `a[b]`, `y[b]`, `prod[2b]`, `t[b-1]`, `cin` — matching
/// the qubit counts of QASMBench's `multiplier_n45` (`b = 9`) and
/// `multiplier_n75` (`b = 15`). Each step materializes the partial
/// products `a[i]·y[j]` with Toffolis, ripple-adds them into the product
/// window with a Cuccaro chain, and uncomputes — the `O(b²)` Toffoli
/// profile that makes the multiplier the heaviest circuit of the suite.
/// The top partial product's carry wraps (fixed-width semantics).
///
/// # Panics
///
/// Panics if `n` is not a positive multiple of 5 or `b < 3`.
pub fn multiplier(n: usize) -> Circuit {
    assert!(n % 5 == 0 && n >= 15, "multiplier needs n = 5b, b >= 3");
    let b = n / 5;
    let mut c = Circuit::new(n);
    let a = |i: usize| i as u32;
    let y = |i: usize| (b + i) as u32;
    let prod = |i: usize| (2 * b + i) as u32;
    let t = |i: usize| (4 * b + i) as u32;
    let cin = (5 * b - 1) as u32;
    let maj = |c: &mut Circuit, x: u32, yy: u32, z: u32| {
        c.cx(z, yy);
        c.cx(z, x);
        c.ccx(x, yy, z);
    };
    let uma = |c: &mut Circuit, x: u32, yy: u32, z: u32| {
        c.ccx(x, yy, z);
        c.cx(z, x);
        c.cx(x, yy);
    };
    for i in 0..b {
        // Partial products t[j] = a[i] AND y[j] for the low b-1 terms.
        for j in 0..b - 1 {
            c.ccx(a(i), y(j), t(j));
        }
        // Cuccaro-add t[0..b-1] into prod[i..i+b-1], carry to prod[i+b-1].
        maj(&mut c, cin, prod(i), t(0));
        for j in 1..b - 1 {
            maj(&mut c, t(j - 1), prod(i + j), t(j));
        }
        c.cx(t(b - 2), prod(i + b - 1));
        for j in (1..b - 1).rev() {
            uma(&mut c, t(j - 1), prod(i + j), t(j));
        }
        uma(&mut c, cin, prod(i), t(0));
        // Top partial product a[i]·y[b-1] lands on prod[i+b-1] (carry
        // wraps at the 2b-bit product width).
        c.ccx(a(i), y(b - 1), prod(i + b - 1));
        // Uncompute the partial products.
        for j in 0..b - 1 {
            c.ccx(a(i), y(j), t(j));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_sizes_match_qasmbench() {
        for (n, bits) in [(28, 13), (64, 31)] {
            let c = cuccaro_adder(n);
            assert_eq!(c.n_qubits(), n);
            // 2 MAJ + 2 UMA per bit, each 2 CX + decomposed CCX (6 CX).
            let expected_2q = bits * 2 * (2 + 6) + 1;
            assert_eq!(c.two_qubit_count(), expected_2q);
        }
    }

    #[test]
    fn adder_qop_count_in_paper_range() {
        // Paper Table V: adder_n64 has ~1156 QOPs.
        let c = cuccaro_adder(64);
        assert!(
            (900..=1300).contains(&c.qop_count()),
            "QOPs = {}",
            c.qop_count()
        );
    }

    /// Classical simulation over the computational basis: apply X/CX/CCX
    /// semantics (the adder is a permutation of basis states; H/T phases
    /// don't occur in it).
    fn simulate_bits(c: &Circuit, init: &[bool]) -> Vec<bool> {
        let mut s = init.to_vec();
        for g in c.gates() {
            match g.kind {
                circuit::GateKind::X => s[g.qubits[0] as usize] ^= true,
                circuit::GateKind::Cx => {
                    if s[g.qubits[0] as usize] {
                        s[g.qubits[1] as usize] ^= true;
                    }
                }
                // The decomposed Toffoli uses H/T/Tdg; for basis-state
                // correctness testing use an undecomposed model instead.
                _ => panic!("unexpected gate {:?} in bit-level simulation", g.kind),
            }
        }
        s
    }

    /// A Toffoli-preserving variant of the adder for semantic testing.
    fn adder_with_plain_toffoli(n: usize) -> Vec<(char, Vec<u32>)> {
        let b = (n - 2) / 2;
        let mut ops: Vec<(char, Vec<u32>)> = Vec::new();
        let a = |i: usize| (1 + i) as u32;
        let bq = |i: usize| (1 + b + i) as u32;
        let cout = (1 + 2 * b) as u32;
        let cin = 0u32;
        let maj = |ops: &mut Vec<(char, Vec<u32>)>, x: u32, y: u32, z: u32| {
            ops.push(('c', vec![z, y]));
            ops.push(('c', vec![z, x]));
            ops.push(('t', vec![x, y, z]));
        };
        let uma = |ops: &mut Vec<(char, Vec<u32>)>, x: u32, y: u32, z: u32| {
            ops.push(('t', vec![x, y, z]));
            ops.push(('c', vec![z, x]));
            ops.push(('c', vec![x, y]));
        };
        maj(&mut ops, cin, bq(0), a(0));
        for i in 1..b {
            maj(&mut ops, a(i - 1), bq(i), a(i));
        }
        ops.push(('c', vec![a(b - 1), cout]));
        for i in (1..b).rev() {
            uma(&mut ops, a(i - 1), bq(i), a(i));
        }
        uma(&mut ops, cin, bq(0), a(0));
        ops
    }

    #[test]
    fn adder_computes_sums() {
        // 3-bit operands (n = 8): check a + b lands in the b register.
        let n = 8;
        let b = 3;
        for (x, yv) in [(3u32, 5u32), (0, 7), (6, 6), (1, 0)] {
            let mut state = vec![false; n];
            for i in 0..b {
                state[1 + i] = (x >> i) & 1 == 1; // a register
                state[1 + b + i] = (yv >> i) & 1 == 1; // b register
            }
            for (kind, qs) in adder_with_plain_toffoli(n) {
                match kind {
                    'c' => {
                        if state[qs[0] as usize] {
                            state[qs[1] as usize] ^= true;
                        }
                    }
                    't' => {
                        if state[qs[0] as usize] && state[qs[1] as usize] {
                            state[qs[2] as usize] ^= true;
                        }
                    }
                    _ => unreachable!(),
                }
            }
            let mut sum = 0u32;
            for i in 0..b {
                if state[1 + b + i] {
                    sum |= 1 << i;
                }
            }
            if state[1 + 2 * b] {
                sum |= 1 << b;
            }
            assert_eq!(sum, x + yv, "{x} + {yv}");
            // a register must be restored.
            for i in 0..b {
                assert_eq!(state[1 + i], (x >> i) & 1 == 1, "a[{i}] clobbered");
            }
            let _ = simulate_bits; // silence unused in cfgs without it
        }
    }

    #[test]
    fn multiplier_sizes_match_qasmbench() {
        for (n, b) in [(45, 9), (75, 15)] {
            let c = multiplier(n);
            assert_eq!(c.n_qubits(), n);
            assert!(c.qop_count() > 100 * b, "too small: {}", c.qop_count());
        }
    }

    #[test]
    fn multiplier_is_toffoli_heavy() {
        // The O(b²) Toffoli profile dominates; with each CCX decomposed
        // into 6 CX + 9 single-qubit gates, the two-qubit share sits just
        // above 40 %, and QOPs land near the paper's Table V counts
        // (multiplier_n45 ≈ 5571, multiplier_n75 ≈ 15767).
        let c = multiplier(45);
        let ratio = c.two_qubit_count() as f64 / c.qop_count() as f64;
        assert!(ratio > 0.4, "two-qubit ratio = {ratio}");
        assert!((4000..=7000).contains(&c.qop_count()), "{}", c.qop_count());
    }

    #[test]
    #[should_panic(expected = "multiplier needs")]
    fn multiplier_rejects_bad_sizes() {
        let _ = multiplier(44);
    }
}
