//! Algorithmic benchmark circuit generators (non-arithmetic families).

use circuit::Circuit;
use std::f64::consts::PI;

/// GHZ state: Hadamard fan-out `h(0); cx(0, i)` — long-range star
/// interactions that stress routing on sparse devices.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 1..n as u32 {
        c.cx(0, i);
    }
    c.measure_all();
    c
}

/// Cat state via a nearest-neighbour CX chain (`h(0); cx(i, i+1)`).
pub fn cat_state(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 0..(n - 1) as u32 {
        c.cx(i, i + 1);
    }
    c.measure_all();
    c
}

/// W state by the standard cascade of controlled rotations plus a CX
/// chain.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    c.x((n - 1) as u32);
    for i in (0..n - 1).rev() {
        let i = i as u32;
        let theta = 2.0 * (1.0 / ((n - i as usize) as f64)).sqrt().acos();
        // Controlled-G(θ) decomposed into RY ± CX conjugation.
        c.ry(-theta / 2.0, i);
        c.cx(i + 1, i);
        c.ry(theta / 2.0, i);
        c.cx(i, i + 1);
    }
    c.measure_all();
    c
}

/// Bernstein–Vazirani with the alternating secret `1010…`: one CX per set
/// secret bit into the oracle qubit (the last).
pub fn bernstein_vazirani(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    let target = (n - 1) as u32;
    for q in 0..target {
        c.h(q);
    }
    c.x(target);
    c.h(target);
    for q in (0..target).step_by(2) {
        c.cx(q, target);
    }
    for q in 0..target {
        c.h(q);
    }
    for q in 0..target {
        c.measure(q);
    }
    c
}

/// Transverse-field Ising model Trotter evolution: `steps` rounds of
/// nearest-neighbour `RZZ` plus transverse `RX`.
pub fn ising(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    for q in 0..n as u32 {
        c.h(q);
    }
    for s in 0..steps {
        let theta = 0.1 + 0.05 * s as f64;
        for i in 0..(n - 1) as u32 {
            c.rzz(theta, i, i + 1);
        }
        for q in 0..n as u32 {
            c.rx(0.3, q);
        }
    }
    c.measure_all();
    c
}

/// Quantum Fourier transform with controlled-phase gates decomposed into
/// the `u1/cx` pattern (matching transpiled QASMBench instances — each
/// `cp(λ)` becomes `u1 cx u1 cx u1`, 2 CX).
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i as u32);
        for j in i + 1..n {
            let lambda = PI / f64::from(1u32 << (j - i).min(30));
            cp_decomposed(&mut c, lambda, j as u32, i as u32);
        }
    }
    c.measure_all();
    c
}

/// `cp(λ)` decomposed: `u1(λ/2) a; cx a,b; u1(-λ/2) b; cx a,b; u1(λ/2) b`.
fn cp_decomposed(c: &mut Circuit, lambda: f64, a: u32, b: u32) {
    c.u1(lambda / 2.0, a);
    c.cx(a, b);
    c.u1(-lambda / 2.0, b);
    c.cx(a, b);
    c.u1(lambda / 2.0, b);
}

/// Quantum phase estimation: `n - 1` counting qubits against one
/// eigenstate qubit, followed by the inverse QFT on the counting register.
pub fn qpe(n: usize) -> Circuit {
    assert!(n >= 3);
    let m = n - 1; // counting qubits
    let eigen = (n - 1) as u32;
    let mut c = Circuit::new(n);
    c.x(eigen);
    for q in 0..m as u32 {
        c.h(q);
    }
    // Controlled powers of U = u1(2π·0.refphase).
    for (k, q) in (0..m as u32).enumerate() {
        let lambda = 2.0 * PI * 0.3125 * f64::from(1u32 << k.min(30));
        cp_decomposed(&mut c, lambda, q, eigen);
    }
    // Inverse QFT on the counting register.
    for i in (0..m).rev() {
        for j in (i + 1..m).rev() {
            let lambda = -PI / f64::from(1u32 << (j - i).min(30));
            cp_decomposed(&mut c, lambda, j as u32, i as u32);
        }
        c.h(i as u32);
    }
    for q in 0..m as u32 {
        c.measure(q);
    }
    c
}

/// Quantum GAN generator ansatz: `layers` rounds of RY rotations and a
/// CX entangling chain (the structure of QASMBench's `qugan` circuits).
pub fn qugan(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n as u32 {
            c.ry(0.1 + 0.01 * (l * n + q as usize) as f64, q);
        }
        for i in 0..(n - 1) as u32 {
            c.cx(i, i + 1);
        }
    }
    c.measure_all();
    c
}

/// Bucket-brigade QRAM: a binary router tree addressed by `k` qubits with
/// `2^k − 1` router nodes and one bus (`k + 2^k` qubits total; `qram(20)`
/// uses a 4-bit address like QASMBench's `qram_n20`).
///
/// # Panics
///
/// Panics unless `n = k + 2^k` for some `k >= 2`.
pub fn qram(n: usize) -> Circuit {
    let k = (2..=16)
        .find(|&k| k + (1usize << k) == n)
        .unwrap_or_else(|| panic!("qram needs n = k + 2^k qubits, got {n}"));
    let mut c = Circuit::new(n);
    let addr = |i: usize| i as u32;
    // Router tree nodes live after the address register; node 0 is the
    // root, node v has children 2v+1 and 2v+2; the last level's nodes are
    // the memory leaves, the bus is tree node 2^k - 2's sibling... we use
    // node indices 0..2^k-1 where the final index doubles as the bus.
    let node = |v: usize| (k + v) as u32;
    let n_nodes = (1 << k) - 1;
    // Superpose the address.
    for i in 0..k {
        c.h(addr(i));
    }
    // Route down the tree: at level l, each node conditionally swaps its
    // payload toward one of its children based on address bit l.
    for l in 0..k - 1 {
        let level_start = (1 << l) - 1;
        let level_len = 1 << l;
        for v in level_start..level_start + level_len {
            let (left, right) = (2 * v + 1, 2 * v + 2);
            if right < n_nodes {
                c.cswap(addr(l), node(v), node(left));
                c.cswap(addr(l), node(v), node(right));
            }
        }
    }
    // Leaves interact with the bus (the last node index).
    let bus = node(n_nodes);
    let leaf_start = (1 << (k - 1)) - 1;
    for v in leaf_start..n_nodes {
        c.cx(node(v), bus);
    }
    // Un-route (restore the tree).
    for l in (0..k - 1).rev() {
        let level_start = (1 << l) - 1;
        let level_len = 1 << l;
        for v in (level_start..level_start + level_len).rev() {
            let (left, right) = (2 * v + 1, 2 * v + 2);
            if right < n_nodes {
                c.cswap(addr(l), node(v), node(right));
                c.cswap(addr(l), node(v), node(left));
            }
        }
    }
    for i in 0..k {
        c.measure(addr(i));
    }
    c
}

/// Dense "quantum DNN" ansatz: `depth` layers of `u3` rotations with a
/// two-range CX entangler (`i→i+1` and `i→i+2`).
pub fn deep_entangling_ansatz(n: usize, depth: usize) -> Circuit {
    assert!(n >= 3);
    let mut c = Circuit::new(n);
    for l in 0..depth {
        for q in 0..n as u32 {
            let base = 0.01 * (l + 1) as f64;
            c.u3(base, base * 2.0, base * 3.0, q);
        }
        for i in 0..(n - 1) as u32 {
            c.cx(i, i + 1);
        }
        for i in 0..(n - 2) as u32 {
            if i % 2 == 0 {
                c.cx(i, i + 2);
            }
        }
    }
    c.measure_all();
    c
}

/// QAOA for MaxCut on a pseudo-random 3-regular-ish graph: `p` rounds of
/// cost (`RZZ` per edge) and mixer (`RX` per qubit) unitaries.
pub fn qaoa_maxcut(n: usize, p: usize, seed: u64) -> Circuit {
    assert!(n >= 4);
    let mut c = Circuit::new(n);
    // Deterministic pseudo-random edge set, ~1.5 n edges.
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    while edges.len() < n * 3 / 2 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((s >> 33) % n as u64) as u32;
        let b = ((s >> 13) % n as u64) as u32;
        if a != b && !edges.contains(&(a.min(b), a.max(b))) {
            edges.push((a.min(b), a.max(b)));
        }
    }
    for q in 0..n as u32 {
        c.h(q);
    }
    for round in 0..p {
        let gamma = 0.4 + 0.1 * round as f64;
        let beta = 0.7 - 0.1 * round as f64;
        for &(a, b) in &edges {
            c.rzz(gamma, a, b);
        }
        for q in 0..n as u32 {
            c.rx(beta, q);
        }
    }
    c.measure_all();
    c
}

/// Swap test between two `(n-1)/2`-qubit registers with one control
/// qubit (odd `n` uses every qubit; even `n` leaves one idle).
pub fn swap_test(n: usize) -> Circuit {
    assert!(n >= 3);
    let m = (n - 1) / 2;
    let mut c = Circuit::new(n);
    let ctrl = 0u32;
    let a = |i: usize| (1 + i) as u32;
    let b = |i: usize| (1 + m + i) as u32;
    // Simple state prep on both registers.
    for i in 0..m {
        c.ry(0.2 + 0.03 * i as f64, a(i));
        c.ry(0.25 + 0.03 * i as f64, b(i));
    }
    c.h(ctrl);
    for i in 0..m {
        c.cswap(ctrl, a(i), b(i));
    }
    c.h(ctrl);
    c.measure(ctrl);
    c
}

/// Quantum k-nearest-neighbour kernel: amplitude encoding (RY layers)
/// followed by a swap test between the query and data registers.
pub fn knn(n: usize) -> Circuit {
    assert!(n >= 5);
    let m = (n - 1) / 2;
    let mut c = Circuit::new(n);
    let ctrl = 0u32;
    let a = |i: usize| (1 + i) as u32;
    let b = |i: usize| (1 + m + i) as u32;
    // Feature encoding with entanglement inside each register.
    for i in 0..m {
        c.ry(0.15 * (i + 1) as f64, a(i));
        c.ry(0.11 * (i + 1) as f64, b(i));
    }
    for i in 0..m.saturating_sub(1) {
        c.cx(a(i), a(i + 1));
        c.cx(b(i), b(i + 1));
    }
    c.h(ctrl);
    for i in 0..m {
        c.cswap(ctrl, a(i), b(i));
    }
    c.h(ctrl);
    c.measure(ctrl);
    c
}

/// Hardware-efficient variational (VQE-style) ansatz: `depth` layers of
/// RY/RZ rotations plus a circular CX entangler.
pub fn variational_ansatz(n: usize, depth: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new(n);
    for l in 0..depth {
        for q in 0..n as u32 {
            c.ry(0.1 * (l + 1) as f64 + 0.01 * q as f64, q);
            c.rz(0.2 * (l + 1) as f64, q);
        }
        for i in 0..n as u32 {
            c.cx(i, (i + 1) % n as u32);
        }
    }
    c.measure_all();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_and_cat_shapes() {
        let g = ghz(23);
        assert_eq!(g.two_qubit_count(), 22);
        // Star interactions: every CX touches qubit 0.
        assert!(g.interactions().all(|(_, a, _)| a == 0));
        let cat = cat_state(23);
        assert_eq!(cat.two_qubit_count(), 22);
        assert!(cat.interactions().all(|(_, a, b)| b == a + 1));
    }

    #[test]
    fn w_state_gate_count() {
        let w = w_state(27);
        assert_eq!(w.two_qubit_count(), 2 * 26);
        assert_eq!(w.n_qubits(), 27);
    }

    #[test]
    fn bv_secret_density() {
        let bv = bernstein_vazirani(30);
        assert_eq!(bv.two_qubit_count(), 15); // ceil(29 / 2) secret bits
    }

    #[test]
    fn qft_quadratic_cx_count() {
        let n = 29;
        let c = qft(n);
        // Each of the n(n-1)/2 controlled phases contributes 2 CX.
        assert_eq!(c.two_qubit_count(), n * (n - 1));
    }

    #[test]
    fn qram_sizes() {
        let c = qram(20); // k = 4
        assert_eq!(c.n_qubits(), 20);
        assert!((150..=800).contains(&c.qop_count()), "{}", c.qop_count());
    }

    #[test]
    #[should_panic(expected = "qram needs")]
    fn qram_rejects_non_tree_sizes() {
        let _ = qram(21);
    }

    #[test]
    fn ising_and_qaoa_entangle_every_round() {
        let i = ising(26, 10);
        assert_eq!(i.two_qubit_count(), 10 * 25);
        let q = qaoa_maxcut(24, 4, 24);
        assert_eq!(q.two_qubit_count(), 4 * (24 * 3 / 2));
    }

    #[test]
    fn swap_test_uses_control_everywhere() {
        let c = swap_test(25);
        // Every cswap decomposes to gates on the control or registers;
        // the circuit must involve the control qubit in 2q gates.
        assert!(c.interactions().any(|(_, a, b)| a == 0 || b == 0));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(qaoa_maxcut(24, 4, 7), qaoa_maxcut(24, 4, 7));
        assert_eq!(qft(20), qft(20));
    }

    #[test]
    fn qpe_has_inverse_qft_tail() {
        let c = qpe(25);
        assert!(c.two_qubit_count() > 24 * 10);
        assert_eq!(c.n_qubits(), 25);
    }
}
