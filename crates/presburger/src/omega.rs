//! Exact integer variable elimination (the Omega test).
//!
//! This module implements Pugh's Omega test as the exact projection /
//! emptiness engine behind [`BasicSet`]: equality substitution (with modulo
//! side conditions for non-unit coefficients), congruence elimination via
//! bijective re-parameterization, and Fourier–Motzkin elimination upgraded to
//! exactness with the *dark shadow* and *splinters*.

use crate::expr::{Constraint, ConstraintKind, LinearExpr};
use crate::{div_ceil, div_floor, egcd, gcd, lcm, BasicSet, Error, Result};

/// Exactly eliminates variable `v` from `bs`.
///
/// The result is a union of basic sets over `dim - 1` variables whose
/// integer points are precisely `{ x \ xᵥ | x ∈ bs }`.
pub fn eliminate_var(bs: &BasicSet, v: usize) -> Result<Vec<BasicSet>> {
    assert!(v < bs.dim(), "variable {v} out of range {}", bs.dim());
    if bs.is_obviously_empty() {
        return Ok(Vec::new());
    }
    // 1. Equality with v present: substitution, exact in one step.
    if let Some(c) = bs
        .constraints()
        .iter()
        .find(|c| c.kind == ConstraintKind::Eq && c.expr.coeff(v) != 0)
    {
        return Ok(eliminate_via_equality(bs, v, &c.expr)
            .into_iter()
            .filter(|b| !b.is_obviously_empty())
            .collect());
    }
    // 2. Congruences involving v: re-parameterize v to remove them. Each
    // substitution round removes one congruence; symbolic remainders can
    // cascade, so allow a few rounds before giving up.
    if bs
        .constraints()
        .iter()
        .any(|c| matches!(c.kind, ConstraintKind::Mod(_)) && c.expr.coeff(v) != 0)
    {
        let mut current = bs.clone();
        for _round in 0..8 {
            let without = remove_congruences_on(&current, v)?;
            let mut out = Vec::new();
            let mut pending: Option<BasicSet> = None;
            for part in without {
                let still_has_mod = part
                    .constraints()
                    .iter()
                    .any(|c| matches!(c.kind, ConstraintKind::Mod(_)) && c.expr.coeff(v) != 0);
                if still_has_mod {
                    assert!(
                        pending.is_none(),
                        "congruence removal must keep a single pending part"
                    );
                    pending = Some(part);
                } else {
                    out.extend(eliminate_var(&part, v)?);
                }
            }
            match pending {
                None => return Ok(out),
                Some(p) => {
                    assert!(out.is_empty(), "mixed pending/finished congruence parts");
                    current = p;
                }
            }
        }
        return Err(crate::Error::UnsupportedCongruence);
    }
    // 3. Pure-inequality elimination.
    Ok(eliminate_inequalities(bs, v)?
        .into_iter()
        .filter(|b| !b.is_obviously_empty())
        .collect())
}

/// Eliminates `v` using the equality `eq_expr = 0` (which mentions `v`).
fn eliminate_via_equality(bs: &BasicSet, v: usize, eq_expr: &LinearExpr) -> Vec<BasicSet> {
    let a = eq_expr.coeff(v);
    // Arrange a > 0:  a·v + g = 0.
    let (a, eq_expr) = if a < 0 {
        (-a, eq_expr.neg())
    } else {
        (a, eq_expr.clone())
    };
    let g = eq_expr.clone().with_coeff(v, 0); // a·v = -g
    if a == 1 {
        // v = -g: plain substitution.
        let rep = g.neg();
        let cs = bs
            .constraints()
            .iter()
            .filter(|c| c.expr != eq_expr && c.expr != eq_expr.neg())
            .map(|c| Constraint {
                kind: c.kind,
                expr: c.expr.substitute(v, &rep).drop_var(v),
            })
            .collect();
        return vec![BasicSet::new(bs.dim() - 1, cs)];
    }
    // a > 1: a·v = -g requires g ≡ 0 (mod a); then scale each remaining
    // constraint by a (exact: a > 0) and replace a·v by -g.
    let mut cs: Vec<Constraint> = Vec::with_capacity(bs.constraints().len() + 1);
    cs.push(Constraint::modulo(g.drop_var(v), a));
    for c in bs.constraints() {
        if c.kind == ConstraintKind::Eq && (c.expr == eq_expr || c.expr == eq_expr.neg()) {
            continue;
        }
        let cv = c.expr.coeff(v);
        let rest = c.expr.clone().with_coeff(v, 0);
        let scaled = rest.scale(a).add(&g.scale(-cv)).drop_var(v);
        let kind = match c.kind {
            ConstraintKind::Mod(m) => ConstraintKind::Mod(m.checked_mul(a).expect("mod overflow")),
            k => k,
        };
        cs.push(Constraint { kind, expr: scaled });
    }
    vec![BasicSet::new(bs.dim() - 1, cs)]
}

/// Rewrites `bs` so that no congruence constraint mentions `v`, without
/// changing the projection of the set onto the other variables. Eliminating
/// `v` afterwards is therefore equivalent.
///
/// Strategy: if every congruence on `v` has a constant remainder part, solve
/// each for `v` and CRT-merge into `v ≡ r (mod M)`, then substitute
/// `v := M·w + r` (a bijection between solutions `v` and fresh `w`). If a
/// single congruence with symbolic remainder has a coefficient coprime to
/// its modulus, use the modular inverse for the same trick. Everything else
/// is outside the supported fragment.
fn remove_congruences_on(bs: &BasicSet, v: usize) -> Result<Vec<BasicSet>> {
    let mut residue: Option<(i64, i64)> = None; // v ≡ r (mod m)
    let mut symbolic: Vec<(i64, LinearExpr, i64)> = Vec::new(); // (c, g, m): c·v + g ≡ 0 (mod m)
    let mut rest: Vec<Constraint> = Vec::new();
    for c in bs.constraints() {
        match c.kind {
            ConstraintKind::Mod(m) if c.expr.coeff(v) != 0 => {
                let coeff = c.expr.coeff(v);
                let g = c.expr.clone().with_coeff(v, 0);
                if g.is_constant() {
                    // c·v ≡ -k (mod m)
                    let k = g.constant_term();
                    match solve_congruence(coeff, -k, m) {
                        Some((r, md)) => match residue {
                            None => residue = Some((r, md)),
                            Some(prev) => match crt_merge(prev, (r, md)) {
                                Some(merged) => residue = Some(merged),
                                None => return Ok(Vec::new()), // incompatible -> empty
                            },
                        },
                        None => return Ok(Vec::new()),
                    }
                } else {
                    symbolic.push((coeff, g, m));
                }
            }
            _ => rest.push(c.clone()),
        }
    }
    if let Some((c, g, m)) = symbolic.first().cloned() {
        // c·v + g ≡ 0 (mod m) with symbolic g: need gcd(c, m) = 1. Process
        // this one congruence via the bijective substitution
        // v := m·w − inv·g; remaining congruences on v (symbolic or
        // constant) are rewritten alongside and handled by the caller's
        // retry loop.
        let (gamma, inv, _) = egcd(c.rem_euclid(m), m);
        if gamma != 1 {
            return Err(Error::UnsupportedCongruence);
        }
        let inv = inv.rem_euclid(m);
        let others = symbolic
            .iter()
            .skip(1)
            .map(|(c2, g2, m2)| {
                Constraint::modulo(LinearExpr::var(bs.dim(), v).scale(*c2).add(g2), *m2)
            })
            .chain(residue.map(|(r, md)| {
                Constraint::modulo(LinearExpr::var(bs.dim(), v).plus_const(-r), md)
            }));
        let cs = rest
            .into_iter()
            .chain(others)
            .map(|cst| substitute_scaled(&cst, v, m, &g.scale(-inv)))
            .collect();
        return Ok(vec![BasicSet::new(bs.dim(), cs)]);
    }
    if let Some((r, m)) = residue {
        // Substitute v := m·w + r.
        let offset = LinearExpr::constant(bs.dim(), r);
        let cs = rest
            .into_iter()
            .map(|cst| substitute_scaled(&cst, v, m, &offset))
            .collect();
        return Ok(vec![BasicSet::new(bs.dim(), cs)]);
    }
    Ok(vec![BasicSet::new(bs.dim(), rest)])
}

/// Replaces `v := scale·v + offset` inside one constraint (`offset` must not
/// mention `v`). For `Mod(m)` constraints the rewrite is exact because the
/// substitution is a bijection on the solution space, not a scaling of the
/// constraint itself.
fn substitute_scaled(c: &Constraint, v: usize, scale: i64, offset: &LinearExpr) -> Constraint {
    debug_assert_eq!(offset.coeff(v), 0);
    let cv = c.expr.coeff(v);
    let expr = c
        .expr
        .clone()
        .with_coeff(v, cv.checked_mul(scale).expect("substitute overflow"))
        .add(&offset.scale(cv));
    Constraint { kind: c.kind, expr }
}

/// Solves `c·x ≡ k (mod m)` for `x`; returns `(r, m')` with solutions
/// `x ≡ r (mod m')`, or `None` when unsolvable.
fn solve_congruence(c: i64, k: i64, m: i64) -> Option<(i64, i64)> {
    let c = c.rem_euclid(m);
    let k = k.rem_euclid(m);
    let (g, inv, _) = egcd(c, m);
    if k % g != 0 {
        return None;
    }
    let m2 = m / g;
    let r = ((k / g) as i128 * (inv.rem_euclid(m2)) as i128).rem_euclid(m2 as i128) as i64;
    Some((r, m2))
}

/// Merges `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)` via CRT.
fn crt_merge((r1, m1): (i64, i64), (r2, m2): (i64, i64)) -> Option<(i64, i64)> {
    let g = gcd(m1, m2);
    if (r2 - r1) % g != 0 {
        return None;
    }
    let l = lcm(m1, m2);
    let m1g = m1 / g;
    let m2g = m2 / g;
    let (_, inv, _) = egcd(m1g.rem_euclid(m2g), m2g);
    let diff = ((r2 - r1) / g) as i128;
    let t = (diff * inv.rem_euclid(m2g.max(1)) as i128).rem_euclid(m2g.max(1) as i128);
    let r = (r1 as i128 + m1 as i128 * t).rem_euclid(l as i128) as i64;
    Some((r, l))
}

/// Pure Fourier–Motzkin elimination of `v`, upgraded to integer exactness
/// with the dark shadow and splinters. `bs` must not contain equalities or
/// congruences mentioning `v`.
fn eliminate_inequalities(bs: &BasicSet, v: usize) -> Result<Vec<BasicSet>> {
    let mut lowers: Vec<(i64, LinearExpr)> = Vec::new(); // b·v + e >= 0, b > 0
    let mut uppers: Vec<(i64, LinearExpr)> = Vec::new(); // a·v <= f  (stored as (a, f))
    let mut rest: Vec<Constraint> = Vec::new();
    for c in bs.constraints() {
        let cv = c.expr.coeff(v);
        if cv == 0 {
            rest.push(c.clone());
            continue;
        }
        debug_assert_eq!(c.kind, ConstraintKind::Ge, "unexpected {:?} on v", c.kind);
        let e = c.expr.clone().with_coeff(v, 0);
        if cv > 0 {
            lowers.push((cv, e)); // cv·v >= -e
        } else {
            uppers.push((-cv, e)); // (-cv)·v <= e
        }
    }
    // Unbounded on one side: the projection is just the pass-through
    // constraints (Fourier), exact for integers too.
    if lowers.is_empty() || uppers.is_empty() {
        let cs = rest
            .into_iter()
            .map(|c| drop_var_constraint(c, v))
            .collect();
        return Ok(vec![BasicSet::new(bs.dim() - 1, cs)]);
    }
    let pairwise_exact = lowers.iter().all(|(b, _)| *b == 1)
        || uppers.iter().all(|(a, _)| *a == 1)
        || lowers
            .iter()
            .all(|(b, _)| uppers.iter().all(|(a, _)| *a == 1 || *b == 1));
    // Real shadow: b·v >= -e_l and a·v <= e_u  =>  a·e_l + b·e_u >= 0.
    let shadow = |tighten: bool| -> Vec<Constraint> {
        let mut cs: Vec<Constraint> = rest
            .iter()
            .cloned()
            .map(|c| drop_var_constraint(c, v))
            .collect();
        for (b, e_l) in &lowers {
            for (a, e_u) in &uppers {
                let mut expr = e_l.scale(*a).add(&e_u.scale(*b));
                if tighten {
                    expr = expr.plus_const(-(a - 1) * (b - 1));
                }
                cs.push(Constraint::ge(expr.drop_var(v)));
            }
        }
        cs
    };
    if pairwise_exact {
        return Ok(vec![BasicSet::new(bs.dim() - 1, shadow(false))]);
    }
    // Dark shadow ∪ splinters (Pugh).
    let mut out = vec![BasicSet::new(bs.dim() - 1, shadow(true))];
    let a_max = uppers.iter().map(|(a, _)| *a).max().expect("non-empty");
    for (b, e_l) in &lowers {
        if *b == 1 {
            continue;
        }
        // If missed by the dark shadow, some lower bound is nearly tight:
        // b·v = -e_l + i for 0 <= i <= (a_max·b - a_max - b) / a_max.
        let max_i = (a_max * b - a_max - b) / a_max;
        for i in 0..=max_i {
            let eq_expr = LinearExpr::var(bs.dim(), v)
                .scale(*b)
                .add(e_l)
                .plus_const(-i);
            let splinter = bs.add_constraint(Constraint::eq(eq_expr));
            if !splinter.is_obviously_empty() {
                out.extend(eliminate_var(&splinter, v)?);
            }
        }
    }
    Ok(out)
}

fn drop_var_constraint(c: Constraint, v: usize) -> Constraint {
    Constraint {
        kind: c.kind,
        expr: c.expr.drop_var(v),
    }
}

/// Exact integer emptiness test by full elimination.
pub fn is_empty(bs: &BasicSet) -> bool {
    fn go(bs: &BasicSet, budget: &mut u64) -> bool {
        if bs.is_obviously_empty() {
            return true;
        }
        if bs.dim() == 0 {
            // Normalization leaves no satisfiable-constant constraints.
            return bs.is_obviously_empty();
        }
        *budget = budget.saturating_sub(1);
        assert!(*budget > 0, "emptiness budget exhausted on {bs:?}");
        let v = choose_elimination_var(bs);
        match eliminate_var(bs, v) {
            Ok(parts) => parts.iter().all(|p| go(p, budget)),
            Err(_) => {
                // Unsupported congruence fragment: fall back to a bounded
                // search guided by rational bounds (sets in this crate's
                // workload are bounded).
                sample(bs).is_none()
            }
        }
    }
    let mut budget = 200_000;
    go(bs, &mut budget)
}

/// Picks the cheapest variable to eliminate next.
fn choose_elimination_var(bs: &BasicSet) -> usize {
    let dim = bs.dim();
    // Unit-coefficient equality first.
    for c in bs.constraints() {
        if c.kind == ConstraintKind::Eq {
            for v in 0..dim {
                if c.expr.coeff(v).abs() == 1 {
                    return v;
                }
            }
        }
    }
    // Any equality.
    for c in bs.constraints() {
        if c.kind == ConstraintKind::Eq {
            if let Some(v) = c.expr.first_var() {
                return v;
            }
        }
    }
    // Otherwise minimize (number of lower bounds) x (number of upper bounds)
    // to slow constraint growth, preferring unit coefficients.
    let mut best = 0;
    let mut best_score = u64::MAX;
    for v in 0..dim {
        let mut lo = 0u64;
        let mut hi = 0u64;
        let mut worst_coeff = 1u64;
        for c in bs.constraints() {
            let cv = c.expr.coeff(v);
            if cv > 0 {
                lo += 1;
            } else if cv < 0 {
                hi += 1;
            }
            worst_coeff = worst_coeff.max(cv.unsigned_abs());
        }
        let score = lo * hi + worst_coeff * 100;
        if score < best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

/// Rational bounds of variable `v` (see [`BasicSet::var_bounds`]).
pub fn rational_var_bounds(bs: &BasicSet, v: usize) -> (Option<i64>, Option<i64>) {
    // Work on inequality closure: equalities become two inequalities,
    // congruences are dropped (sound: they only remove points).
    let mut ineqs: Vec<LinearExpr> = Vec::new();
    for c in bs.constraints() {
        match c.kind {
            ConstraintKind::Ge => ineqs.push(c.expr.clone()),
            ConstraintKind::Eq => {
                ineqs.push(c.expr.clone());
                ineqs.push(c.expr.neg());
            }
            ConstraintKind::Mod(_) => {}
        }
    }
    // Fourier eliminate every variable except v (rational, over-approx).
    for u in (0..bs.dim()).rev() {
        if u == v {
            continue;
        }
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for e in ineqs.drain(..) {
            let cu = e.coeff(u);
            if cu == 0 {
                rest.push(e);
            } else if cu > 0 {
                lowers.push(e);
            } else {
                uppers.push(e);
            }
        }
        for l in &lowers {
            for up in &uppers {
                let b = l.coeff(u);
                let a = -up.coeff(u);
                // b·u + e_l >= 0 and -a·u + e_u >= 0 => a·e_l + b·e_u >= 0
                let combo = l
                    .clone()
                    .with_coeff(u, 0)
                    .scale(a)
                    .add(&up.clone().with_coeff(u, 0).scale(b));
                rest.push(combo);
            }
        }
        ineqs = rest;
        // Guard against FM blowup on adversarial inputs.
        if ineqs.len() > 4096 {
            ineqs.sort();
            ineqs.dedup();
        }
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for e in &ineqs {
        let a = e.coeff(v);
        let k = e.constant_term();
        if a > 0 {
            // a·v + k >= 0  =>  v >= ceil(-k / a)
            let b = div_ceil(-k, a);
            lo = Some(lo.map_or(b, |x: i64| x.max(b)));
        } else if a < 0 {
            // a·v + k >= 0  =>  v <= floor(k / -a)
            let b = div_floor(k, -a);
            hi = Some(hi.map_or(b, |x: i64| x.min(b)));
        } else if k < 0 {
            // Infeasible (rationally): empty set; report degenerate bounds.
            return (Some(0), Some(-1));
        }
    }
    (lo, hi)
}

/// Solves a one-dimensional basic set: returns the congruence-merged
/// residue, modulus and integer interval, or `None` when empty.
///
/// Result `(lo, hi, r, m)` means solutions are `{ x ∈ [lo, hi] : x ≡ r mod m }`
/// with `lo = None` / `hi = None` for unbounded sides.
pub fn solve_1d(bs: &BasicSet) -> Option<(Option<i64>, Option<i64>, i64, i64)> {
    assert_eq!(bs.dim(), 1);
    if bs.is_obviously_empty() {
        return None;
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    let mut residue: (i64, i64) = (0, 1);
    for c in bs.constraints() {
        let a = c.expr.coeff(0);
        let k = c.expr.constant_term();
        match c.kind {
            ConstraintKind::Ge => {
                if a > 0 {
                    let b = div_ceil(-k, a);
                    lo = Some(lo.map_or(b, |x: i64| x.max(b)));
                } else if a < 0 {
                    let b = div_floor(k, -a);
                    hi = Some(hi.map_or(b, |x: i64| x.min(b)));
                } else if k < 0 {
                    return None;
                }
            }
            ConstraintKind::Eq => {
                if a == 0 {
                    if k != 0 {
                        return None;
                    }
                    continue;
                }
                if k % a != 0 {
                    return None;
                }
                let x = -k / a;
                lo = Some(lo.map_or(x, |l: i64| l.max(x)));
                hi = Some(hi.map_or(x, |h: i64| h.min(x)));
            }
            ConstraintKind::Mod(m) => {
                // a·x + k ≡ 0 (mod m)
                match solve_congruence(a, -k, m) {
                    Some(rm) => match crt_merge(residue, rm) {
                        Some(merged) => residue = merged,
                        None => return None,
                    },
                    None => return None,
                }
            }
        }
    }
    if let (Some(l), Some(h)) = (lo, hi) {
        if l > h {
            return None;
        }
        // Check a representative exists in the interval.
        let (r, m) = residue;
        let first = l + (r - l).rem_euclid(m);
        if first > h {
            return None;
        }
    }
    Some((lo, hi, residue.0, residue.1))
}

/// Number of integer points of a one-dimensional basic set (`None` when the
/// set is infinite).
pub fn count_1d(bs: &BasicSet) -> Option<u64> {
    match solve_1d(bs) {
        None => Some(0),
        Some((Some(l), Some(h), r, m)) => {
            let first = l + (r - l).rem_euclid(m);
            if first > h {
                Some(0)
            } else {
                Some(((h - first) / m + 1) as u64)
            }
        }
        Some(_) => None, // unbounded
    }
}

/// Finds an integer point, preferring lexicographically small values.
pub fn sample(bs: &BasicSet) -> Option<Vec<i64>> {
    if bs.is_obviously_empty() {
        return None;
    }
    if bs.dim() == 0 {
        return Some(Vec::new());
    }
    if bs.dim() == 1 {
        let (lo, hi, r, m) = solve_1d(bs)?;
        let x = match (lo, hi) {
            (Some(l), _) => {
                let first = l + (r - l).rem_euclid(m);
                if hi.is_some_and(|h| first > h) {
                    return None;
                }
                first
            }
            (None, Some(h)) => h - (h - r).rem_euclid(m),
            (None, None) => r,
        };
        return Some(vec![x]);
    }
    // Eliminate the last variable, sample the projection, then extend.
    let v = bs.dim() - 1;
    let parts = match eliminate_var(bs, v) {
        Ok(parts) => parts,
        Err(_) => return sample_by_search(bs),
    };
    for part in parts {
        if let Some(prefix) = sample(&part) {
            // Reduce the original to 1-D by fixing vars 0..v with the
            // prefix values (back to front to keep indices stable).
            let mut fixed = bs.clone();
            for i in (0..v).rev() {
                fixed = fixed.fix_var(i, prefix[i]);
            }
            if let Some(tail) = sample(&fixed) {
                let mut point = prefix;
                point.push(tail[0]);
                return Some(point);
            }
        }
    }
    None
}

/// Fallback sampling by bounded search (used only when the exact projector
/// rejects a congruence pattern).
fn sample_by_search(bs: &BasicSet) -> Option<Vec<i64>> {
    fn go(bs: &BasicSet, acc: &mut Vec<i64>) -> Option<Vec<i64>> {
        if bs.dim() == 0 {
            return (!bs.is_obviously_empty()).then(|| acc.clone());
        }
        let (lo, hi) = rational_var_bounds(bs, 0);
        let (lo, hi) = (lo?, hi?); // require bounded sets for the fallback
        for x in lo..=hi {
            acc.push(x);
            let fixed = bs.fix_var(0, x);
            if let Some(p) = go(&fixed, acc) {
                return Some(p);
            }
            acc.pop();
        }
        None
    }
    go(bs, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(coeffs: &[i64], k: i64) -> Constraint {
        Constraint::ge(LinearExpr::new(coeffs.to_vec(), k))
    }
    fn eq(coeffs: &[i64], k: i64) -> Constraint {
        Constraint::eq(LinearExpr::new(coeffs.to_vec(), k))
    }
    fn md(coeffs: &[i64], k: i64, m: i64) -> Constraint {
        Constraint::modulo(LinearExpr::new(coeffs.to_vec(), k), m)
    }

    /// Brute-force projection over a grid for cross-checking.
    fn brute_project(
        bs: &BasicSet,
        v: usize,
        range: std::ops::RangeInclusive<i64>,
    ) -> Vec<Vec<i64>> {
        let dim = bs.dim();
        let mut out = Vec::new();
        let vals: Vec<i64> = range.collect();
        let mut point = vec![0i64; dim];
        fn rec(
            bs: &BasicSet,
            vals: &[i64],
            point: &mut Vec<i64>,
            d: usize,
            v: usize,
            out: &mut Vec<Vec<i64>>,
        ) {
            if d == point.len() {
                if bs.contains(point) {
                    let mut p = point.clone();
                    p.remove(v);
                    out.push(p);
                }
                return;
            }
            for &x in vals {
                point[d] = x;
                rec(bs, vals, point, d + 1, v, out);
            }
        }
        rec(bs, &vals, &mut point, 0, v, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn check_projection(bs: &BasicSet, v: usize) {
        let expected = brute_project(bs, v, -8..=8);
        let parts = eliminate_var(bs, v).expect("supported fragment");
        // Every expected point is in some part; every in-range part point is expected.
        let dim = bs.dim() - 1;
        let mut grid = Vec::new();
        let mut point = vec![0i64; dim];
        fn rec(point: &mut Vec<i64>, d: usize, grid: &mut Vec<Vec<i64>>) {
            if d == point.len() {
                grid.push(point.clone());
                return;
            }
            for x in -8..=8 {
                point[d] = x;
                rec(point, d + 1, grid);
            }
        }
        rec(&mut point, 0, &mut grid);
        for p in grid {
            let in_parts = parts.iter().any(|bs| bs.contains(&p));
            let in_expected = expected.contains(&p);
            // The projection may contain points whose witnesses lie outside
            // the search grid; only check the forward direction strictly and
            // the reverse direction when the witness must be in range. We
            // constrain all test sets to keep witnesses within the grid, so
            // equality is expected.
            assert_eq!(in_parts, in_expected, "point {p:?} of {bs:?}");
        }
    }

    #[test]
    fn unit_equality_substitution() {
        // { (x, y) : y = x + 2, 0 <= x <= 5 }, eliminate y -> 0 <= x <= 5
        let bs = BasicSet::new(2, vec![eq(&[-1, 1], -2), ge(&[1, 0], 0), ge(&[-1, 0], 5)]);
        check_projection(&bs, 1);
        // eliminate x instead -> 2 <= y <= 7
        check_projection(&bs, 0);
    }

    #[test]
    fn non_unit_equality_introduces_congruence() {
        // { (x, y) : 2x = y, 0 <= y <= 6 } eliminate x -> y even in [0, 6]
        let bs = BasicSet::new(2, vec![eq(&[2, -1], 0), ge(&[0, 1], 0), ge(&[0, -1], 6)]);
        let parts = eliminate_var(&bs, 0).unwrap();
        let members: Vec<i64> = (-8..=8)
            .filter(|&y| parts.iter().any(|p| p.contains(&[y])))
            .collect();
        assert_eq!(members, vec![0, 2, 4, 6]);
    }

    #[test]
    fn fm_exact_with_unit_coefficients() {
        // { (x, y) : x <= y <= x + 3, 0 <= x <= 4 } eliminate y.
        let bs = BasicSet::new(
            2,
            vec![
                ge(&[-1, 1], 0),
                ge(&[1, -1], 3),
                ge(&[1, 0], 0),
                ge(&[-1, 0], 4),
            ],
        );
        check_projection(&bs, 1);
    }

    #[test]
    fn dark_shadow_and_splinters_exact() {
        // { (x, y) : 3 <= 2y <= 2x <= 3y - 4, x <= 6 } -- non-unit coefficients
        // on both sides force the splinter path; verify against brute force.
        let bs = BasicSet::new(
            2,
            vec![
                ge(&[0, 2], -3),  // 2y >= 3
                ge(&[2, -2], 0),  // 2x >= 2y
                ge(&[-2, 3], -4), // 3y - 4 >= 2x
                ge(&[-1, 0], 6),  // x <= 6
            ],
        );
        check_projection(&bs, 1);
        check_projection(&bs, 0);
    }

    #[test]
    fn classic_omega_gap() {
        // { x : 3 <= 5x <= 7 } has no integer point although the rational
        // shadow [3/5, 7/5] is non-empty... x = 1 works actually (5 in [3,7]).
        let bs = BasicSet::new(1, vec![ge(&[5], -3), ge(&[-5], 7)]);
        assert!(!bs.is_empty());
        // { x : 4 <= 6x <= 5 } really is integer-empty.
        let bs2 = BasicSet::new(1, vec![ge(&[6], -4), ge(&[-6], 5)]);
        assert!(bs2.is_empty());
    }

    #[test]
    fn two_dim_integer_gap() {
        // 2x = 2y + 1 is rationally feasible, integrally empty.
        let bs = BasicSet::new(2, vec![eq(&[2, -2], -1)]);
        assert!(bs.is_empty());
    }

    #[test]
    fn congruence_elimination_single_var() {
        // { (x, y) : x ≡ 1 mod 3, 0 <= x <= 8, y = x } eliminate x.
        let bs = BasicSet::new(
            2,
            vec![
                md(&[1, 0], -1, 3),
                ge(&[1, 0], 0),
                ge(&[-1, 0], 8),
                eq(&[1, -1], 0),
            ],
        );
        let parts = eliminate_var(&bs, 0).unwrap();
        let members: Vec<i64> = (-8..=8)
            .filter(|&y| parts.iter().any(|p| p.contains(&[y])))
            .collect();
        assert_eq!(members, vec![1, 4, 7]);
    }

    #[test]
    fn congruence_with_symbolic_remainder() {
        // { (x, y) : x + y ≡ 0 mod 2, 0 <= x,y <= 5 } eliminate x: every y
        // in range keeps a witness (x of matching parity exists in [0,5]).
        let bs = BasicSet::new(
            2,
            vec![
                md(&[1, 1], 0, 2),
                ge(&[1, 0], 0),
                ge(&[-1, 0], 5),
                ge(&[0, 1], 0),
                ge(&[0, -1], 5),
            ],
        );
        let parts = eliminate_var(&bs, 0).unwrap();
        for y in 0..=5 {
            assert!(parts.iter().any(|p| p.contains(&[y])), "y = {y}");
        }
        assert!(!parts.iter().any(|p| p.contains(&[6])));
    }

    #[test]
    fn emptiness_with_congruences() {
        // x ≡ 0 mod 2 and x ≡ 1 mod 2 -> empty.
        let bs = BasicSet::new(1, vec![md(&[1], 0, 2), md(&[1], -1, 2)]);
        assert!(bs.is_empty());
        // x ≡ 1 mod 2 and x ≡ 2 mod 3 -> x ≡ 5 mod 6 (non-empty).
        let bs2 = BasicSet::new(1, vec![md(&[1], -1, 2), md(&[1], -2, 3)]);
        assert!(!bs2.is_empty());
        let s = bs2.sample().unwrap();
        assert_eq!(s[0].rem_euclid(6), 5, "sample {s:?} must be ≡ 5 mod 6");
    }

    #[test]
    fn count_1d_closed_form() {
        // { x : 0 <= x <= 100, x ≡ 2 mod 5 } -> 2, 7, ..., 97 -> 20 points
        let bs = BasicSet::new(1, vec![ge(&[1], 0), ge(&[-1], 100), md(&[1], -2, 5)]);
        assert_eq!(count_1d(&bs), Some(20));
        let empt = BasicSet::new(1, vec![ge(&[1], 0), ge(&[-1], -1)]);
        assert_eq!(count_1d(&empt), Some(0));
        let unb = BasicSet::new(1, vec![ge(&[1], 0)]);
        assert_eq!(count_1d(&unb), None);
    }

    #[test]
    fn solve_congruence_cases() {
        assert_eq!(solve_congruence(1, 3, 5), Some((3, 5)));
        assert_eq!(solve_congruence(2, 1, 4), None); // 2x ≡ 1 mod 4 unsolvable
        assert_eq!(solve_congruence(2, 2, 4), Some((1, 2))); // x ≡ 1 mod 2
        assert_eq!(solve_congruence(3, 1, 7), Some((5, 7))); // 3*5=15≡1 mod 7
    }

    #[test]
    fn crt_merge_cases() {
        assert_eq!(crt_merge((1, 2), (2, 3)), Some((5, 6)));
        assert_eq!(crt_merge((0, 2), (1, 2)), None);
        assert_eq!(crt_merge((1, 2), (1, 2)), Some((1, 2)));
        assert_eq!(crt_merge((2, 4), (0, 6)), Some((6, 12)));
    }

    #[test]
    fn sample_prefers_small_lex() {
        let bs = BasicSet::new(
            2,
            vec![
                ge(&[1, 0], -3),
                ge(&[-1, 0], 10),
                ge(&[0, 1], 0),
                ge(&[0, -1], 4),
            ],
        );
        assert_eq!(bs.sample(), Some(vec![3, 0]));
    }
}
