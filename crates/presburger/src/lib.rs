//! A Presburger-arithmetic kernel for the Qlosure qubit mapper.
//!
//! This crate is a from-scratch substitute for the subset of the Integer Set
//! Library (ISL) and the Barvinok counting library that the Qlosure paper
//! relies on:
//!
//! * [`Set`] / [`BasicSet`] — unions / conjunctions of affine constraints
//!   (equalities, inequalities and congruences) over integer tuples;
//! * [`Map`] / [`BasicMap`] — integer relations with the usual algebra
//!   (composition, inverse, domain/range, deltas, fixed powers);
//! * [`Map::transitive_closure`] — the `R⁺` operator of
//!   Verdoolaege–Cohen–Beletska, exact for translation-like relations and a
//!   flagged over-approximation otherwise;
//! * [`Set::count_points`] — exact integer-point counting (the `card`
//!   operation Barvinok provides), implemented by disjointification plus
//!   bound-driven enumeration with closed-form innermost intervals.
//!
//! The representation follows the Omega library rather than ISL: instead of
//! existentially quantified *div* variables, congruence constraints
//! ([`Constraint::modulo`]) are first-class. This keeps every operation —
//! including set difference — closed over the representation, which is what
//! makes the exact emptiness/subset tests used by the transitive-closure
//! fixpoint cheap and trustworthy.
//!
//! Dimensions in the qubit-mapping workload are tiny (schedules are 1-D,
//! dependence relations at most 3-D), so the exact integer procedures here
//! (Omega-test elimination with dark shadow and splinters, CRT congruence
//! merging) are fast in practice.
//!
//! # Example
//!
//! ```
//! use presburger::{BasicSet, Constraint, LinearExpr, Set};
//!
//! // S = { [i] : 0 <= i < 10 and i ≡ 1 (mod 3) }  ->  {1, 4, 7}
//! let s = BasicSet::new(1, vec![
//!     Constraint::ge(LinearExpr::var(1, 0)),                      // i >= 0
//!     Constraint::ge(LinearExpr::var(1, 0).neg().plus_const(9)),  // i <= 9
//!     Constraint::modulo(LinearExpr::var(1, 0).plus_const(-1), 3),
//! ]);
//! assert_eq!(Set::from(s).count_points(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic;
mod closure;
mod count;
mod expr;
mod map;
mod memo;
mod omega;
mod set;

pub use basic::BasicSet;
pub use closure::ClosureResult;
pub use expr::{Constraint, ConstraintKind, LinearExpr};
pub use map::{BasicMap, Map};
pub use set::Set;

/// `(hits, misses)` counters of the process-wide transitive-closure memo
/// behind [`Map::transitive_closure`].
///
/// A *miss* is an actual closure computation; a *hit* is any call that
/// reused a memoized result. The counters are cumulative over the process
/// lifetime — long-lived consumers (the mapping service) report deltas
/// across requests to make cross-request amortization observable.
pub fn closure_memo_stats() -> (u64, u64) {
    memo::global_stats()
}

/// Errors reported by operations that are only defined on a fragment of
/// Presburger arithmetic (see crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A variable elimination required solving a congruence whose
    /// coefficient shares a non-trivial factor with the modulus while the
    /// remainder is symbolic; this fragment is not implemented.
    UnsupportedCongruence,
    /// A coefficient overflowed the `i64` range during normalization.
    Overflow,
    /// Two objects with incompatible dimensions were combined.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnsupportedCongruence => {
                write!(f, "congruence elimination outside the supported fragment")
            }
            Error::Overflow => write!(f, "coefficient overflow during normalization"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        0
    } else {
        (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
    }
}

/// Extended gcd: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub(crate) fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        let sign = if a < 0 { -1 } else { 1 };
        (a.abs(), sign, 0)
    } else {
        let (g, x, y) = egcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

/// Ceiling division for `i64` (`num / den` rounded toward +inf), `den > 0`.
pub(crate) fn div_ceil(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    num.div_euclid(den) + i64::from(num.rem_euclid(den) != 0)
}

/// Floor division for `i64` (`num / den` rounded toward -inf), `den > 0`.
pub(crate) fn div_floor(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    num.div_euclid(den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 3), 0);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn egcd_identity() {
        for (a, b) in [(12, 18), (-5, 3), (7, 0), (0, 9), (240, 46)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(a * x + b * y, g, "egcd({a},{b})");
            assert_eq!(g, gcd(a, b));
        }
    }

    #[test]
    fn division_rounding() {
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(6, 3), 2);
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
    }
}
