//! Linear (affine) expressions and the three constraint kinds.

use crate::gcd;

/// An affine expression `c₀ + Σ cᵢ·xᵢ` over a fixed number of variables.
///
/// The variable order is positional; [`crate::BasicSet`] and
/// [`crate::BasicMap`] document which position means what.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearExpr {
    /// Coefficient of each variable.
    coeffs: Vec<i64>,
    /// Constant term.
    constant: i64,
}

impl LinearExpr {
    /// The zero expression over `n_vars` variables.
    pub fn zero(n_vars: usize) -> Self {
        LinearExpr {
            coeffs: vec![0; n_vars],
            constant: 0,
        }
    }

    /// A constant expression over `n_vars` variables.
    pub fn constant(n_vars: usize, value: i64) -> Self {
        LinearExpr {
            coeffs: vec![0; n_vars],
            constant: value,
        }
    }

    /// The expression `xᵥ` over `n_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n_vars`.
    pub fn var(n_vars: usize, v: usize) -> Self {
        assert!(v < n_vars, "variable index {v} out of range {n_vars}");
        let mut coeffs = vec![0; n_vars];
        coeffs[v] = 1;
        LinearExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from explicit coefficients and a constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        LinearExpr { coeffs, constant }
    }

    /// Number of variables this expression ranges over.
    pub fn n_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `v`.
    pub fn coeff(&self, v: usize) -> i64 {
        self.coeffs[v]
    }

    /// All coefficients, in variable order.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Sets the coefficient of variable `v` and returns `self` for chaining.
    pub fn with_coeff(mut self, v: usize, c: i64) -> Self {
        self.coeffs[v] = c;
        self
    }

    /// Adds `value` to the constant term.
    pub fn plus_const(mut self, value: i64) -> Self {
        self.constant = self.constant.checked_add(value).expect("constant overflow");
        self
    }

    /// Pointwise sum. Both expressions must range over the same variables.
    pub fn add(&self, other: &LinearExpr) -> LinearExpr {
        assert_eq!(self.n_vars(), other.n_vars());
        LinearExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.checked_add(*b).expect("coefficient overflow"))
                .collect(),
            constant: self
                .constant
                .checked_add(other.constant)
                .expect("constant overflow"),
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &LinearExpr) -> LinearExpr {
        self.add(&other.neg())
    }

    /// Negation of every coefficient and the constant.
    pub fn neg(&self) -> LinearExpr {
        LinearExpr {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
            constant: -self.constant,
        }
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(&self, k: i64) -> LinearExpr {
        LinearExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|c| c.checked_mul(k).expect("coefficient overflow"))
                .collect(),
            constant: self.constant.checked_mul(k).expect("constant overflow"),
        }
    }

    /// `true` when every coefficient is zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Evaluates at an integer point (`point.len() == n_vars`).
    pub fn eval(&self, point: &[i64]) -> i64 {
        debug_assert_eq!(point.len(), self.n_vars());
        let mut acc: i128 = self.constant as i128;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += (*c as i128) * (*x as i128);
        }
        i64::try_from(acc).expect("evaluation overflow")
    }

    /// Gcd of all variable coefficients (0 when the expression is constant).
    pub fn content(&self) -> i64 {
        self.coeffs.iter().fold(0, |g, &c| gcd(g, c))
    }

    /// Index of some variable with a non-zero coefficient, if any.
    pub fn first_var(&self) -> Option<usize> {
        self.coeffs.iter().position(|&c| c != 0)
    }

    /// Replaces variable `v` by the expression `rep` (which must not use `v`
    /// itself) scaled appropriately: the result is `self[xᵥ := rep]`.
    pub fn substitute(&self, v: usize, rep: &LinearExpr) -> LinearExpr {
        debug_assert_eq!(self.n_vars(), rep.n_vars());
        debug_assert_eq!(rep.coeff(v), 0, "substitution must not reuse the variable");
        let c = self.coeffs[v];
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs[v] = 0;
        out.add(&rep.scale(c))
    }

    /// Removes variable `v` from the coefficient vector (its coefficient
    /// must already be zero), shrinking the variable space by one.
    pub fn drop_var(&self, v: usize) -> LinearExpr {
        debug_assert_eq!(self.coeffs[v], 0, "cannot drop a live variable");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(v);
        LinearExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Inserts `count` fresh zero-coefficient variables starting at `at`.
    pub fn insert_vars(&self, at: usize, count: usize) -> LinearExpr {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + count);
        coeffs.extend_from_slice(&self.coeffs[..at]);
        coeffs.extend(std::iter::repeat_n(0, count));
        coeffs.extend_from_slice(&self.coeffs[at..]);
        LinearExpr {
            coeffs,
            constant: self.constant,
        }
    }

    /// Applies a permutation of variables: new variable `i` is old
    /// `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> LinearExpr {
        debug_assert_eq!(perm.len(), self.n_vars());
        LinearExpr {
            coeffs: perm.iter().map(|&old| self.coeffs[old]).collect(),
            constant: self.constant,
        }
    }
}

impl std::fmt::Debug for LinearExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
            } else if c < 0 {
                write!(f, "-")?;
            }
            if c.abs() != 1 {
                write!(f, "{}*", c.abs())?;
            }
            write!(f, "x{i}")?;
            first = false;
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0 {
            write!(
                f,
                " {} {}",
                if self.constant < 0 { "-" } else { "+" },
                self.constant.abs()
            )?;
        }
        Ok(())
    }
}

/// The kind of a [`Constraint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintKind {
    /// `expr = 0`.
    Eq,
    /// `expr >= 0`.
    Ge,
    /// `expr ≡ 0 (mod modulus)`, `modulus >= 2`.
    Mod(i64),
}

/// A single affine constraint: equality, inequality or congruence.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constraint {
    /// Which relation the expression satisfies.
    pub kind: ConstraintKind,
    /// The constrained affine expression.
    pub expr: LinearExpr,
}

impl Constraint {
    /// The constraint `expr = 0`.
    pub fn eq(expr: LinearExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Eq,
            expr,
        }
    }

    /// The constraint `expr >= 0`.
    pub fn ge(expr: LinearExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Ge,
            expr,
        }
    }

    /// The constraint `lhs = rhs` (sugar for `lhs - rhs = 0`).
    pub fn eq2(lhs: LinearExpr, rhs: &LinearExpr) -> Self {
        Constraint::eq(lhs.sub(rhs))
    }

    /// The constraint `lhs >= rhs` (sugar for `lhs - rhs >= 0`).
    pub fn ge2(lhs: LinearExpr, rhs: &LinearExpr) -> Self {
        Constraint::ge(lhs.sub(rhs))
    }

    /// The congruence `expr ≡ 0 (mod modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2` (a modulus of 1 is trivially true and 0 is an
    /// equality; use [`Constraint::eq`]).
    pub fn modulo(expr: LinearExpr, modulus: i64) -> Self {
        assert!(modulus >= 2, "modulus must be >= 2, got {modulus}");
        Constraint {
            kind: ConstraintKind::Mod(modulus),
            expr,
        }
    }

    /// Whether an integer point satisfies the constraint.
    pub fn holds_at(&self, point: &[i64]) -> bool {
        let v = self.expr.eval(point);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Ge => v >= 0,
            ConstraintKind::Mod(m) => v.rem_euclid(m) == 0,
        }
    }

    /// The negation of this constraint, as a disjunction of constraints.
    ///
    /// * `¬(e = 0)` is `e ≥ 1 ∨ -e ≥ 1`;
    /// * `¬(e ≥ 0)` is `-e - 1 ≥ 0`;
    /// * `¬(e ≡ 0 mod m)` is `∨ᵣ (e - r ≡ 0 mod m)` for `r ∈ 1..m`.
    pub fn negate(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::Eq => vec![
                Constraint::ge(self.expr.clone().plus_const(-1)),
                Constraint::ge(self.expr.neg().plus_const(-1)),
            ],
            ConstraintKind::Ge => vec![Constraint::ge(self.expr.neg().plus_const(-1))],
            ConstraintKind::Mod(m) => (1..m)
                .map(|r| Constraint::modulo(self.expr.clone().plus_const(-r), m))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ConstraintKind::Eq => write!(f, "{:?} = 0", self.expr),
            ConstraintKind::Ge => write!(f, "{:?} >= 0", self.expr),
            ConstraintKind::Mod(m) => write!(f, "{:?} ≡ 0 (mod {m})", self.expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(coeffs: &[i64], k: i64) -> LinearExpr {
        LinearExpr::new(coeffs.to_vec(), k)
    }

    #[test]
    fn eval_and_arith() {
        let a = e(&[2, -1], 3); // 2x - y + 3
        assert_eq!(a.eval(&[1, 4]), 1);
        assert_eq!(a.neg().eval(&[1, 4]), -1);
        assert_eq!(a.scale(3).eval(&[1, 4]), 3);
        let b = e(&[1, 1], 0);
        assert_eq!(a.add(&b).eval(&[1, 4]), 6);
        assert_eq!(a.sub(&b).eval(&[1, 4]), -4);
    }

    #[test]
    fn substitution_replaces_variable() {
        // (2x + y + 1)[x := y - 2]  =  3y - 3
        let target = e(&[2, 1], 1);
        let rep = e(&[0, 1], -2);
        let out = target.substitute(0, &rep);
        assert_eq!(out, e(&[0, 3], -3));
    }

    #[test]
    fn drop_and_insert_vars() {
        let a = e(&[0, 5], 2);
        assert_eq!(a.drop_var(0), e(&[5], 2));
        assert_eq!(a.insert_vars(1, 2), e(&[0, 0, 0, 5], 2));
        assert_eq!(a.insert_vars(0, 1), e(&[0, 0, 5], 2));
    }

    #[test]
    fn permutation_reorders() {
        let a = e(&[1, 2, 3], 0);
        assert_eq!(a.permute(&[2, 0, 1]), e(&[3, 1, 2], 0));
    }

    #[test]
    fn constraint_membership() {
        let c = Constraint::ge(e(&[1], -3)); // x >= 3
        assert!(c.holds_at(&[3]));
        assert!(!c.holds_at(&[2]));
        let m = Constraint::modulo(e(&[1], 0), 4); // x ≡ 0 mod 4
        assert!(m.holds_at(&[8]));
        assert!(m.holds_at(&[-4]));
        assert!(!m.holds_at(&[2]));
    }

    #[test]
    fn negation_covers_complement_exactly() {
        // For a sample of points, exactly one of c / ¬c holds.
        let cases = vec![
            Constraint::eq(e(&[1, -1], 0)),
            Constraint::ge(e(&[2, 1], -3)),
            Constraint::modulo(e(&[1, 2], 1), 3),
        ];
        for c in cases {
            for x in -5..5 {
                for y in -5..5 {
                    let p = [x, y];
                    let neg_holds = c.negate().iter().any(|n| n.holds_at(&p));
                    assert_ne!(c.holds_at(&p), neg_holds, "{c:?} at {p:?}");
                }
            }
        }
    }
}
