//! Bounded memoization of transitive-closure results.
//!
//! Transitive closure is by far the most expensive Presburger operation in
//! the mapping pipeline (candidate construction + verification, or an
//! iterative fixpoint), and batch runs re-derive it for structurally
//! identical dependence relations — every QUEKO instance of the same shape,
//! every repeat of a circuit across devices. The [`ClosureMemo`] here keys
//! results by a *canonical encoding* of the input [`Map`] (arities, parts
//! and constraints in sorted order), so semantically identical relations
//! built in different orders share one computation.
//!
//! **Invalidation rule:** [`Map`]s are immutable values, so entries are
//! never invalidated — the memo is a pure function table, bounded at
//! [`CAPACITY`] entries with FIFO eviction. Under concurrency the memo has
//! single-computation semantics: racing threads on the same key block on
//! one cell and share its result.

use crate::closure::{self, ClosureResult};
use crate::expr::{Constraint, ConstraintKind};
use crate::map::{BasicMap, Map};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry bound: dependence relations are small (tens of disjuncts), so 128
/// memoized closures cover a full batch roster while bounding memory.
const CAPACITY: usize = 128;

fn encode_constraint(c: &Constraint) -> Vec<i64> {
    let (tag, modulus) = match c.kind {
        ConstraintKind::Eq => (0, 0),
        ConstraintKind::Ge => (1, 0),
        ConstraintKind::Mod(m) => (2, m),
    };
    let mut enc = vec![tag, modulus, c.expr.constant_term()];
    enc.extend_from_slice(c.expr.coeffs());
    enc
}

/// Canonical form of a [`Map`]: the encoding key plus a rebuilt map whose
/// parts and constraints are in sorted order.
///
/// The key is a flat integer vector identical for structurally equal
/// relations regardless of construction order. Layout: `[n_in, n_out,
/// n_parts]`, then per part (parts sorted by their own encoding)
/// `[n_constraints]` followed per constraint (sorted) by `[kind_tag,
/// modulus, constant, coeff₀, …]`. Constraint arity is fixed by the map,
/// so the encoding is self-delimiting.
///
/// The memo computes the closure from the *rebuilt* map, never the
/// caller's: the cached [`ClosureResult`] is a pure function of the key,
/// so which thread populates a cell (or which of several equal-key
/// callers arrives first) cannot influence the structural shape of the
/// result anyone observes — the engine's determinism contract extends
/// through this cache.
pub(crate) fn canonicalize(map: &Map) -> (Vec<i64>, Map) {
    let mut parts: Vec<(Vec<i64>, BasicMap)> = map
        .parts()
        .iter()
        .map(|bm| {
            let mut constraints: Vec<(Vec<i64>, Constraint)> = bm
                .wrapped()
                .constraints()
                .iter()
                .map(|c| (encode_constraint(c), c.clone()))
                .collect();
            constraints.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut enc = vec![constraints.len() as i64];
            let mut sorted = Vec::with_capacity(constraints.len());
            for (e, c) in constraints {
                enc.extend(e);
                sorted.push(c);
            }
            (enc, BasicMap::new(bm.n_in(), bm.n_out(), sorted))
        })
        .collect();
    parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut key = vec![
        map.n_in() as i64,
        map.n_out() as i64,
        map.parts().len() as i64,
    ];
    let mut rebuilt = Vec::with_capacity(parts.len());
    for (enc, part) in parts {
        key.extend(enc);
        rebuilt.push(part);
    }
    (key, Map::from_parts(map.n_in(), map.n_out(), rebuilt))
}

type Cell = Arc<OnceLock<ClosureResult>>;

/// A bounded, keyed, single-computation memo for `R⁺`.
///
/// The global instance backs [`Map::transitive_closure`]; tests construct
/// private instances so hit/miss assertions cannot race with other tests.
pub(crate) struct ClosureMemo {
    inner: Mutex<MemoInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct MemoInner {
    cells: HashMap<Vec<i64>, Cell>,
    order: VecDeque<Vec<i64>>,
}

impl ClosureMemo {
    pub(crate) fn new() -> Self {
        ClosureMemo {
            inner: Mutex::new(MemoInner {
                cells: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// `R⁺` of `map`, computed at most once per canonical key no matter how
    /// many threads ask concurrently. The closure runs on the canonical
    /// rebuild of `map`, so the cached result does not depend on which
    /// caller's construction order reached the cell first.
    pub(crate) fn get(&self, map: &Map) -> ClosureResult {
        let (key, canonical) = canonicalize(map);
        let cell: Cell = {
            let mut inner = self.inner.lock().expect("closure memo poisoned");
            match inner.cells.get(&key) {
                Some(cell) => cell.clone(),
                None => {
                    if inner.order.len() >= CAPACITY {
                        if let Some(evicted) = inner.order.pop_front() {
                            inner.cells.remove(&evicted);
                        }
                    }
                    let cell: Cell = Arc::new(OnceLock::new());
                    inner.cells.insert(key.clone(), cell.clone());
                    inner.order.push_back(key);
                    cell
                }
            }
        };
        // Compute outside the map lock; racers on the same key serialize on
        // the cell, so a slow closure never blocks unrelated lookups.
        let mut computed = false;
        let result = cell
            .get_or_init(|| {
                computed = true;
                self.misses.fetch_add(1, Ordering::Relaxed);
                closure::transitive_closure(&canonical)
            })
            .clone();
        if !computed {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// (hits, misses) so far; a "miss" is an actual closure computation.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

static GLOBAL: OnceLock<ClosureMemo> = OnceLock::new();

/// The global memo consulted by [`Map::transitive_closure`].
pub(crate) fn global() -> &'static ClosureMemo {
    GLOBAL.get_or_init(ClosureMemo::new)
}

/// (hits, misses) of the global memo — the backing of
/// [`crate::closure_memo_stats`].
pub(crate) fn global_stats() -> (u64, u64) {
    global().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicSet;
    use crate::map::BasicMap;

    fn bounded_shift(k: i64, lo: i64, hi: i64) -> Map {
        Map::from(
            BasicMap::translation(&[k]).restrict_domain(&BasicSet::bounding_box(&[lo], &[hi])),
        )
    }

    #[test]
    fn memo_matches_direct_computation() {
        let memo = ClosureMemo::new();
        let r = bounded_shift(1, 0, 9);
        let cached = memo.get(&r);
        let direct = closure::transitive_closure(&r);
        assert_eq!(cached.exact, direct.exact);
        assert!(cached.map.is_equal(&direct.map));
        assert_eq!(memo.stats(), (0, 1));
    }

    #[test]
    fn structurally_equal_maps_share_one_entry() {
        let memo = ClosureMemo::new();
        // Same relation, built twice through different unions orders.
        let a = bounded_shift(1, 0, 9).union(&bounded_shift(3, 0, 7));
        let b = bounded_shift(3, 0, 7).union(&bounded_shift(1, 0, 9));
        assert_eq!(canonicalize(&a).0, canonicalize(&b).0);
        memo.get(&a);
        memo.get(&b);
        assert_eq!(memo.stats(), (1, 1));
    }

    #[test]
    fn canonicalize_erases_construction_order() {
        // Determinism: equal-key maps produce byte-equal canonical
        // rebuilds, so the cached closure cannot depend on which caller's
        // part ordering populated the cell first.
        let a = bounded_shift(1, 0, 9).union(&bounded_shift(3, 0, 7));
        let b = bounded_shift(3, 0, 7).union(&bounded_shift(1, 0, 9));
        let (ka, ma) = canonicalize(&a);
        let (kb, mb) = canonicalize(&b);
        assert_eq!(ka, kb);
        assert_eq!(ma, mb, "canonical rebuilds must be structurally equal");
    }

    #[test]
    fn different_relations_get_different_keys() {
        assert_ne!(
            canonicalize(&bounded_shift(1, 0, 9)).0,
            canonicalize(&bounded_shift(2, 0, 9)).0
        );
        assert_ne!(
            canonicalize(&Map::empty(1, 1)).0,
            canonicalize(&Map::empty(2, 2)).0
        );
    }

    #[test]
    fn eviction_keeps_the_memo_bounded() {
        let memo = ClosureMemo::new();
        for k in 0..(CAPACITY + 3) as i64 {
            memo.get(&bounded_shift(1, 0, 10 + k));
        }
        // The first entry was evicted and recomputes on re-request.
        memo.get(&bounded_shift(1, 0, 10));
        let (_, misses) = memo.stats();
        assert_eq!(misses as usize, CAPACITY + 3 + 1);
    }

    #[test]
    fn eight_threads_hammering_one_relation_compute_once() {
        let memo = ClosureMemo::new();
        let r = bounded_shift(1, 0, 30).union(&bounded_shift(4, 0, 26));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let c = memo.get(&r);
                        assert!(c.map.contains(&[0], &[1]));
                    }
                });
            }
        });
        let (hits, misses) = memo.stats();
        assert_eq!(misses, 1, "single-computation semantics");
        assert_eq!(hits, 8 * 25 - 1);
    }

    #[test]
    fn eight_threads_over_disjoint_relations_do_not_poison_locks() {
        let memo = ClosureMemo::new();
        std::thread::scope(|scope| {
            for t in 0..8i64 {
                let memo = &memo;
                scope.spawn(move || {
                    for round in 0..10i64 {
                        let r = bounded_shift(1, 0, 5 + (t + round) % 5);
                        let c = memo.get(&r);
                        assert!(c.exact);
                    }
                });
            }
        });
        let (hits, misses) = memo.stats();
        assert_eq!(misses, 5, "one computation per distinct relation");
        assert_eq!(hits, 8 * 10 - 5);
    }

    #[test]
    fn global_memo_backs_map_transitive_closure() {
        let r = bounded_shift(2, 0, 8);
        let first = r.transitive_closure();
        let second = r.transitive_closure();
        assert_eq!(first.exact, second.exact);
        assert!(first.map.is_equal(&second.map));
    }

    #[test]
    fn public_stats_observe_global_traffic() {
        // Global counters are shared with concurrently running tests, so
        // only monotonicity and attributable growth are asserted.
        let r = bounded_shift(1, 0, 13);
        let (h0, m0) = crate::closure_memo_stats();
        r.transitive_closure();
        r.transitive_closure();
        let (h1, m1) = crate::closure_memo_stats();
        assert!(h1 + m1 >= h0 + m0 + 2, "two lookups must be counted");
        assert!(h1 >= h0 && m1 >= m0, "counters never decrease");
    }
}
