//! Integer relations ([`BasicMap`], [`Map`]) — the ISL `isl_map` analogue.

use crate::basic::BasicSet;
use crate::expr::{Constraint, LinearExpr};
use crate::set::Set;
use crate::Result;

/// A conjunction of affine constraints relating an input tuple to an output
/// tuple: `{ x → y | constraints(x, y) }`.
///
/// Internally the relation is stored as a [`BasicSet`] over the wrapped
/// space `[x₀ … xₙ₋₁, y₀ … yₘ₋₁]`.
#[derive(Clone, PartialEq, Eq)]
pub struct BasicMap {
    n_in: usize,
    n_out: usize,
    wrapped: BasicSet,
}

impl BasicMap {
    /// Builds a relation from constraints over the wrapped space
    /// (inputs first, then outputs).
    pub fn new(n_in: usize, n_out: usize, constraints: Vec<Constraint>) -> Self {
        BasicMap {
            n_in,
            n_out,
            wrapped: BasicSet::new(n_in + n_out, constraints),
        }
    }

    /// Wraps an existing basic set whose first `n_in` variables are inputs.
    pub fn from_wrapped(n_in: usize, n_out: usize, wrapped: BasicSet) -> Self {
        assert_eq!(wrapped.dim(), n_in + n_out, "wrapped dimension mismatch");
        BasicMap {
            n_in,
            n_out,
            wrapped,
        }
    }

    /// The identity relation on `dim` variables.
    pub fn identity(dim: usize) -> Self {
        let n = 2 * dim;
        let cs = (0..dim)
            .map(|i| Constraint::eq2(LinearExpr::var(n, dim + i), &LinearExpr::var(n, i)))
            .collect();
        BasicMap::new(dim, dim, cs)
    }

    /// The translation `{ x → x + delta }`.
    pub fn translation(delta: &[i64]) -> Self {
        let dim = delta.len();
        let n = 2 * dim;
        let cs = (0..dim)
            .map(|i| {
                Constraint::eq2(
                    LinearExpr::var(n, dim + i),
                    &LinearExpr::var(n, i).plus_const(delta[i]),
                )
            })
            .collect();
        BasicMap::new(dim, dim, cs)
    }

    /// The affine relation `{ x → A·x + b }` given one output expression per
    /// output dimension (each over the `n_in` input variables only).
    pub fn from_affine(n_in: usize, outputs: &[LinearExpr]) -> Self {
        let n_out = outputs.len();
        let n = n_in + n_out;
        let cs = outputs
            .iter()
            .enumerate()
            .map(|(i, e)| {
                assert_eq!(e.n_vars(), n_in, "output expression arity");
                let mut lifted = LinearExpr::zero(n);
                for v in 0..n_in {
                    lifted = lifted.with_coeff(v, e.coeff(v));
                }
                let lifted = lifted.plus_const(e.constant_term());
                Constraint::eq2(LinearExpr::var(n, n_in + i), &lifted)
            })
            .collect();
        BasicMap::new(n_in, n_out, cs)
    }

    /// Input arity.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output arity.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The relation as a set over the wrapped space.
    pub fn wrapped(&self) -> &BasicSet {
        &self.wrapped
    }

    /// Whether the pair `(x, y)` belongs to the relation.
    pub fn contains(&self, x: &[i64], y: &[i64]) -> bool {
        assert_eq!(x.len(), self.n_in);
        assert_eq!(y.len(), self.n_out);
        let mut p = Vec::with_capacity(self.n_in + self.n_out);
        p.extend_from_slice(x);
        p.extend_from_slice(y);
        self.wrapped.contains(&p)
    }

    /// Exact emptiness test.
    pub fn is_empty(&self) -> bool {
        self.wrapped.is_empty()
    }

    /// Intersection of two relations with identical arity.
    pub fn intersect(&self, other: &BasicMap) -> BasicMap {
        assert_eq!((self.n_in, self.n_out), (other.n_in, other.n_out));
        BasicMap {
            n_in: self.n_in,
            n_out: self.n_out,
            wrapped: self.wrapped.intersect(&other.wrapped),
        }
    }

    /// The inverse relation `{ y → x | x → y }`.
    pub fn inverse(&self) -> BasicMap {
        let n = self.n_in + self.n_out;
        // New order: outputs first.
        let perm: Vec<usize> = (self.n_in..n).chain(0..self.n_in).collect();
        BasicMap {
            n_in: self.n_out,
            n_out: self.n_in,
            wrapped: self.wrapped.permute(&perm),
        }
    }

    /// Restricts the inputs to `domain`.
    pub fn restrict_domain(&self, domain: &BasicSet) -> BasicMap {
        assert_eq!(domain.dim(), self.n_in);
        let lifted = domain.insert_vars(self.n_in, self.n_out);
        BasicMap {
            n_in: self.n_in,
            n_out: self.n_out,
            wrapped: self.wrapped.intersect(&lifted),
        }
    }

    /// Restricts the outputs to `range`.
    pub fn restrict_range(&self, range: &BasicSet) -> BasicMap {
        assert_eq!(range.dim(), self.n_out);
        let lifted = range.insert_vars(0, self.n_in);
        BasicMap {
            n_in: self.n_in,
            n_out: self.n_out,
            wrapped: self.wrapped.intersect(&lifted),
        }
    }
}

impl std::fmt::Debug for BasicMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{ [{}] -> [{}] : {:?} }}",
            self.n_in, self.n_out, self.wrapped
        )
    }
}

/// A finite union of [`BasicMap`]s with a common arity.
#[derive(Clone, PartialEq, Eq)]
pub struct Map {
    n_in: usize,
    n_out: usize,
    parts: Vec<BasicMap>,
}

impl From<BasicMap> for Map {
    fn from(bm: BasicMap) -> Self {
        let (n_in, n_out) = (bm.n_in, bm.n_out);
        let parts = if bm.wrapped.is_obviously_empty() {
            Vec::new()
        } else {
            vec![bm]
        };
        Map { n_in, n_out, parts }
    }
}

impl Map {
    /// The empty relation of the given arity.
    pub fn empty(n_in: usize, n_out: usize) -> Self {
        Map {
            n_in,
            n_out,
            parts: Vec::new(),
        }
    }

    /// The identity relation on `dim` variables.
    pub fn identity(dim: usize) -> Self {
        BasicMap::identity(dim).into()
    }

    /// Builds a union of basic maps (all arities must agree).
    pub fn from_parts(n_in: usize, n_out: usize, parts: Vec<BasicMap>) -> Self {
        for p in &parts {
            assert_eq!((p.n_in, p.n_out), (n_in, n_out), "part arity mismatch");
        }
        let parts = parts
            .into_iter()
            .filter(|p| !p.wrapped.is_obviously_empty())
            .collect();
        Map { n_in, n_out, parts }
    }

    /// A relation containing exactly the given pairs.
    pub fn from_pairs<'a, I>(n_in: usize, n_out: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'a [i64], &'a [i64])>,
    {
        let parts = pairs
            .into_iter()
            .map(|(x, y)| {
                let mut p = Vec::with_capacity(n_in + n_out);
                p.extend_from_slice(x);
                p.extend_from_slice(y);
                BasicMap::from_wrapped(n_in, n_out, BasicSet::point(&p))
            })
            .collect();
        Map::from_parts(n_in, n_out, parts)
    }

    /// Input arity.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output arity.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The disjuncts.
    pub fn parts(&self) -> &[BasicMap] {
        &self.parts
    }

    /// Membership test for a pair.
    pub fn contains(&self, x: &[i64], y: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(x, y))
    }

    /// Exact emptiness test.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Union of two relations.
    pub fn union(&self, other: &Map) -> Map {
        assert_eq!((self.n_in, self.n_out), (other.n_in, other.n_out));
        let mut parts = self.parts.clone();
        for p in &other.parts {
            if !parts.contains(p) {
                parts.push(p.clone());
            }
        }
        Map {
            n_in: self.n_in,
            n_out: self.n_out,
            parts,
        }
    }

    /// The relation as a set over the wrapped space `[in, out]`.
    pub fn wrap(&self) -> Set {
        Set::from_parts(
            self.n_in + self.n_out,
            self.parts.iter().map(|p| p.wrapped.clone()).collect(),
        )
    }

    /// Rebuilds a map from a wrapped-space set.
    pub fn unwrap_set(set: &Set, n_in: usize, n_out: usize) -> Map {
        Map::from_parts(
            n_in,
            n_out,
            set.parts()
                .iter()
                .map(|p| BasicMap::from_wrapped(n_in, n_out, p.clone()))
                .collect(),
        )
    }

    /// Exact difference.
    pub fn subtract(&self, other: &Map) -> Map {
        Map::unwrap_set(&self.wrap().subtract(&other.wrap()), self.n_in, self.n_out)
    }

    /// Exact subset test.
    pub fn is_subset(&self, other: &Map) -> bool {
        self.subtract(other).is_empty()
    }

    /// Exact equality test.
    pub fn is_equal(&self, other: &Map) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Intersection.
    pub fn intersect(&self, other: &Map) -> Map {
        Map::unwrap_set(&self.wrap().intersect(&other.wrap()), self.n_in, self.n_out)
    }

    /// The inverse relation.
    pub fn inverse(&self) -> Map {
        Map::from_parts(
            self.n_out,
            self.n_in,
            self.parts.iter().map(BasicMap::inverse).collect(),
        )
    }

    /// Relational composition `{ x → z | ∃y. x→y ∈ self ∧ y→z ∈ other }`
    /// ("self then other", ISL's `apply_range`).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::UnsupportedCongruence`] from the exact
    /// projection of the mid variables.
    pub fn compose(&self, other: &Map) -> Result<Map> {
        assert_eq!(
            self.n_out, other.n_in,
            "arity mismatch in composition: {} vs {}",
            self.n_out, other.n_in
        );
        let mid = self.n_out;
        let n_in = self.n_in;
        let n_out = other.n_out;
        let total = n_in + mid + n_out;
        let mut parts: Vec<BasicMap> = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                // Embed a over [x, y, _] and b over [_, y, z].
                let ea = a.wrapped.insert_vars(n_in + mid, n_out);
                let eb = b.wrapped.insert_vars(0, n_in);
                let joined = ea.intersect(&eb);
                if joined.is_obviously_empty() {
                    continue;
                }
                // Eliminate the mid variables (back to front).
                let mut pieces = vec![joined];
                for v in (n_in..n_in + mid).rev() {
                    let mut next = Vec::new();
                    for piece in &pieces {
                        next.extend(piece.eliminate_var(v)?);
                    }
                    pieces = next;
                }
                let _ = total;
                for piece in pieces {
                    parts.push(BasicMap::from_wrapped(n_in, n_out, piece));
                }
            }
        }
        Ok(Map::from_parts(n_in, n_out, parts))
    }

    /// The image of `set` under the relation.
    ///
    /// # Errors
    ///
    /// Propagates projection errors (see [`Map::compose`]).
    pub fn apply(&self, set: &Set) -> Result<Set> {
        assert_eq!(set.dim(), self.n_in);
        let mut parts: Vec<BasicSet> = Vec::new();
        for s in set.parts() {
            for p in &self.parts {
                let restricted = p.restrict_domain(s);
                if restricted.wrapped.is_obviously_empty() {
                    continue;
                }
                let mut pieces = vec![restricted.wrapped];
                for v in (0..self.n_in).rev() {
                    let mut next = Vec::new();
                    for piece in &pieces {
                        next.extend(piece.eliminate_var(v)?);
                    }
                    pieces = next;
                }
                parts.extend(pieces);
            }
        }
        Ok(Set::from_parts(self.n_out, parts))
    }

    /// The domain of the relation.
    ///
    /// # Errors
    ///
    /// Propagates projection errors (see [`Map::compose`]).
    pub fn domain(&self) -> Result<Set> {
        self.inverse().range_impl()
    }

    /// The range of the relation.
    ///
    /// # Errors
    ///
    /// Propagates projection errors (see [`Map::compose`]).
    pub fn range(&self) -> Result<Set> {
        self.range_impl()
    }

    fn range_impl(&self) -> Result<Set> {
        let mut parts: Vec<BasicSet> = Vec::new();
        for p in &self.parts {
            let mut pieces = vec![p.wrapped.clone()];
            for v in (0..self.n_in).rev() {
                let mut next = Vec::new();
                for piece in &pieces {
                    next.extend(piece.eliminate_var(v)?);
                }
                pieces = next;
            }
            parts.extend(pieces);
        }
        Ok(Set::from_parts(self.n_out, parts))
    }

    /// The difference set `{ y − x | x → y }` (arities must match).
    ///
    /// # Errors
    ///
    /// Propagates projection errors (see [`Map::compose`]).
    pub fn deltas(&self) -> Result<Set> {
        assert_eq!(self.n_in, self.n_out, "deltas needs equal arities");
        let d = self.n_in;
        let mut parts: Vec<BasicSet> = Vec::new();
        for p in &self.parts {
            // Space [x, y] -> extend to [x, y, d] with d = y - x, then
            // eliminate x and y.
            let mut bs = p.wrapped.insert_vars(2 * d, d);
            for i in 0..d {
                let n = 3 * d;
                bs = bs.add_constraint(Constraint::eq2(
                    LinearExpr::var(n, 2 * d + i),
                    &LinearExpr::var(n, d + i).sub(&LinearExpr::var(n, i)),
                ));
            }
            let mut pieces = vec![bs];
            for v in (0..2 * d).rev() {
                let mut next = Vec::new();
                for piece in &pieces {
                    next.extend(piece.eliminate_var(v)?);
                }
                pieces = next;
            }
            parts.extend(pieces);
        }
        Ok(Set::from_parts(d, parts))
    }

    /// The `k`-th relational power (`k >= 1`).
    ///
    /// # Errors
    ///
    /// Propagates projection errors (see [`Map::compose`]).
    pub fn fixed_power(&self, k: u32) -> Result<Map> {
        assert!(k >= 1, "power must be >= 1");
        assert_eq!(self.n_in, self.n_out, "power needs equal arities");
        let mut acc = self.clone();
        for _ in 1..k {
            acc = acc.compose(self)?;
        }
        Ok(acc)
    }

    /// Restricts inputs to `domain`.
    pub fn restrict_domain(&self, domain: &Set) -> Map {
        let mut parts = Vec::new();
        for p in &self.parts {
            for d in domain.parts() {
                let r = p.restrict_domain(d);
                if !r.wrapped.is_obviously_empty() {
                    parts.push(r);
                }
            }
        }
        Map::from_parts(self.n_in, self.n_out, parts)
    }

    /// Restricts outputs to `range`.
    pub fn restrict_range(&self, range: &Set) -> Map {
        let mut parts = Vec::new();
        for p in &self.parts {
            for r in range.parts() {
                let m = p.restrict_range(r);
                if !m.wrapped.is_obviously_empty() {
                    parts.push(m);
                }
            }
        }
        Map::from_parts(self.n_in, self.n_out, parts)
    }

    /// Exact number of pairs in the relation; `None` when infinite.
    pub fn count_pairs(&self) -> Option<u64> {
        self.wrap().count_points_checked()
    }

    /// Transitive closure `R⁺` (see the `closure` module docs).
    ///
    /// The boolean flag reports whether the result is exact; when `false`
    /// the returned relation is a sound over-approximation (`R⁺ ⊆ result`).
    ///
    /// Results are memoized process-wide in a bounded cache keyed by a
    /// canonical encoding of the relation, so repeated closures of
    /// structurally identical relations (a batch run's dependence maps)
    /// compute once and share the result.
    pub fn transitive_closure(&self) -> crate::ClosureResult {
        crate::memo::global().get(self)
    }
}

impl std::fmt::Debug for Map {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{{ [{}] -> [{}] : false }}", self.n_in, self.n_out);
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{p:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(k: i64) -> Map {
        BasicMap::translation(&[k]).into()
    }

    #[test]
    fn identity_contains_diagonal() {
        let id = Map::identity(2);
        assert!(id.contains(&[3, 4], &[3, 4]));
        assert!(!id.contains(&[3, 4], &[4, 3]));
    }

    #[test]
    fn translation_and_compose() {
        let f = shift(2);
        let g = shift(3);
        let fg = f.compose(&g).unwrap();
        assert!(fg.contains(&[0], &[5]));
        assert!(!fg.contains(&[0], &[4]));
    }

    #[test]
    fn compose_with_affine_scaling() {
        // f: i -> 2i + 1, g: j -> j - 1; g∘f : i -> 2i
        let f: Map = BasicMap::from_affine(1, &[LinearExpr::new(vec![2], 1)]).into();
        let g = shift(-1);
        let gf = f.compose(&g).unwrap();
        for i in -4..4 {
            assert!(gf.contains(&[i], &[2 * i]));
            assert!(!gf.contains(&[i], &[2 * i + 1]));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let f: Map = BasicMap::from_affine(1, &[LinearExpr::new(vec![1], 7)]).into();
        let inv = f.inverse();
        assert!(inv.contains(&[10], &[3]));
        assert!(f.compose(&inv).unwrap().is_equal(&Map::identity(1)));
    }

    #[test]
    fn apply_image() {
        let f = shift(5);
        let s = Set::from(BasicSet::bounding_box(&[0], &[3]));
        let img = f.apply(&s).unwrap();
        for x in -2..12 {
            assert_eq!(img.contains(&[x]), (5..=8).contains(&x));
        }
    }

    #[test]
    fn domain_and_range() {
        let m = Map::from_parts(
            1,
            1,
            vec![BasicMap::translation(&[1]).restrict_domain(&BasicSet::bounding_box(&[0], &[4]))],
        );
        let dom = m.domain().unwrap();
        let ran = m.range().unwrap();
        assert_eq!(dom.count_points(), 5);
        assert!(ran.contains(&[5]) && !ran.contains(&[0]));
    }

    #[test]
    fn deltas_of_translation() {
        let m = shift(3).union(&shift(-1));
        let d = m.deltas().unwrap();
        assert!(d.contains(&[3]) && d.contains(&[-1]));
        assert!(!d.contains(&[0]));
        assert_eq!(d.count_points(), 2);
    }

    #[test]
    fn fixed_power() {
        let f = shift(1);
        let f3 = f.fixed_power(3).unwrap();
        assert!(f3.contains(&[0], &[3]));
        assert!(!f3.contains(&[0], &[2]));
    }

    #[test]
    fn from_pairs_membership_and_count() {
        let pairs: Vec<(&[i64], &[i64])> = vec![(&[0], &[1]), (&[1], &[2]), (&[0], &[1])];
        let m = Map::from_pairs(1, 1, pairs);
        assert!(m.contains(&[0], &[1]) && m.contains(&[1], &[2]));
        assert!(!m.contains(&[2], &[3]));
        assert_eq!(m.count_pairs(), Some(2));
    }

    #[test]
    fn subtract_and_subset() {
        let big = shift(1).union(&shift(2));
        let small = shift(1);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        let diff = big.subtract(&small);
        assert!(diff.is_equal(&shift(2)));
    }

    #[test]
    fn restrict_domain_range() {
        let f = shift(1);
        let dom = Set::from(BasicSet::bounding_box(&[0], &[9]));
        let ran = Set::from(BasicSet::bounding_box(&[5], &[7]));
        let r = f.restrict_domain(&dom).restrict_range(&ran);
        assert!(r.contains(&[4], &[5]));
        assert!(!r.contains(&[0], &[1]));
        assert_eq!(r.count_pairs(), Some(3)); // 4->5, 5->6, 6->7
    }

    #[test]
    fn compose_identity_laws() {
        // id ∘ f == f == f ∘ id, also for a non-translation affine map.
        let id = Map::identity(1);
        for f in [
            shift(4),
            Map::from(BasicMap::from_affine(1, &[LinearExpr::new(vec![3], -2)])),
            shift(1).union(&shift(-5)),
        ] {
            assert!(f.compose(&id).unwrap().is_equal(&f));
            assert!(id.compose(&f).unwrap().is_equal(&f));
        }
    }

    #[test]
    fn compose_is_associative() {
        // (f ∘ g) ∘ h == f ∘ (g ∘ h) on a mix of scaling and shifts.
        let f = Map::from(BasicMap::from_affine(1, &[LinearExpr::new(vec![2], 1)]));
        let g = shift(3).union(&shift(-1));
        let h = Map::from(BasicMap::from_affine(1, &[LinearExpr::new(vec![-1], 0)]));
        let left = f.compose(&g).unwrap().compose(&h).unwrap();
        let right = f.compose(&g.compose(&h).unwrap()).unwrap();
        assert!(left.is_equal(&right));
    }

    #[test]
    fn compose_inverse_contains_identity_on_domain() {
        // f⁻¹ ∘ f restricted to f's domain contains the identity there.
        let dom = Set::from(BasicSet::bounding_box(&[0], &[6]));
        let f = shift(2).restrict_domain(&dom);
        let roundtrip = f.compose(&f.inverse()).unwrap();
        for x in 0..=6 {
            assert!(roundtrip.contains(&[x], &[x]));
        }
        assert!(roundtrip.is_subset(&Map::identity(1)));
    }

    #[test]
    fn union_distributes_over_compose() {
        // (a ∪ b) ∘ c == (a ∘ c) ∪ (b ∘ c).
        let a = shift(1);
        let b = shift(4);
        let c = Map::from(BasicMap::from_affine(1, &[LinearExpr::new(vec![2], 0)]));
        let left = a.union(&b).compose(&c).unwrap();
        let right = a.compose(&c).unwrap().union(&b.compose(&c).unwrap());
        assert!(left.is_equal(&right));
    }
}
