//! Conjunctions of affine constraints ([`BasicSet`]).

use crate::expr::{Constraint, ConstraintKind, LinearExpr};
use crate::omega;
use crate::{div_floor, gcd};

/// A conjunction of affine constraints over `dim` integer variables.
///
/// A `BasicSet` denotes `{ x ∈ Zⁿ | ∧ constraints }`. Unlike ISL there are no
/// existentially quantified div variables; strides are expressed with
/// congruence constraints, which keeps negation (and hence set difference)
/// closed over the representation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BasicSet {
    dim: usize,
    constraints: Vec<Constraint>,
    /// Set when normalization discovered a contradiction.
    known_empty: bool,
}

impl BasicSet {
    /// Builds a basic set from constraints and normalizes it.
    ///
    /// # Panics
    ///
    /// Panics if any constraint ranges over a different number of variables
    /// than `dim`.
    pub fn new(dim: usize, constraints: Vec<Constraint>) -> Self {
        for c in &constraints {
            assert_eq!(
                c.expr.n_vars(),
                dim,
                "constraint arity {} != set dimension {dim}",
                c.expr.n_vars()
            );
        }
        let mut bs = BasicSet {
            dim,
            constraints,
            known_empty: false,
        };
        bs.normalize();
        bs
    }

    /// The whole space `Zⁿ`.
    pub fn universe(dim: usize) -> Self {
        BasicSet {
            dim,
            constraints: Vec::new(),
            known_empty: false,
        }
    }

    /// A canonical empty set of the given dimension.
    pub fn empty(dim: usize) -> Self {
        BasicSet {
            dim,
            constraints: vec![Constraint::ge(LinearExpr::constant(dim, -1))],
            known_empty: true,
        }
    }

    /// The singleton set `{ point }`.
    pub fn point(point: &[i64]) -> Self {
        let dim = point.len();
        let constraints = point
            .iter()
            .enumerate()
            .map(|(i, &v)| Constraint::eq(LinearExpr::var(dim, i).plus_const(-v)))
            .collect();
        BasicSet::new(dim, constraints)
    }

    /// The box `{ x | lo[i] <= x[i] <= hi[i] }`.
    pub fn bounding_box(lo: &[i64], hi: &[i64]) -> Self {
        assert_eq!(lo.len(), hi.len());
        let dim = lo.len();
        let mut cs = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            cs.push(Constraint::ge(LinearExpr::var(dim, i).plus_const(-lo[i])));
            cs.push(Constraint::ge(
                LinearExpr::var(dim, i).neg().plus_const(hi[i]),
            ));
        }
        BasicSet::new(dim, cs)
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints after normalization.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether normalization already proved the set empty. A `false` answer
    /// is inconclusive; use [`BasicSet::is_empty`] for an exact test.
    pub fn is_obviously_empty(&self) -> bool {
        self.known_empty
    }

    /// Exact integer emptiness test (Omega-test elimination).
    pub fn is_empty(&self) -> bool {
        if self.known_empty {
            return true;
        }
        if self.constraints.is_empty() {
            return false;
        }
        omega::is_empty(self)
    }

    /// Whether an integer point belongs to the set.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.dim);
        !self.known_empty && self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Intersection (conjunction of both constraint systems).
    pub fn intersect(&self, other: &BasicSet) -> BasicSet {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        if self.known_empty {
            return self.clone();
        }
        if other.known_empty {
            return other.clone();
        }
        let mut cs = self.constraints.clone();
        cs.extend(other.constraints.iter().cloned());
        BasicSet::new(self.dim, cs)
    }

    /// Adds one constraint and re-normalizes.
    pub fn add_constraint(&self, c: Constraint) -> BasicSet {
        let mut cs = self.constraints.clone();
        cs.push(c);
        BasicSet::new(self.dim, cs)
    }

    /// Exactly eliminates variable `v`, returning the projection as a union
    /// of basic sets over `dim - 1` variables (variable indices above `v`
    /// shift down).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::UnsupportedCongruence`] for the congruence
    /// fragment described in the crate docs.
    pub fn eliminate_var(&self, v: usize) -> crate::Result<Vec<BasicSet>> {
        omega::eliminate_var(self, v)
    }

    /// Fixes variable `v` to `value`, returning a set over `dim - 1`
    /// variables.
    pub fn fix_var(&self, v: usize, value: i64) -> BasicSet {
        assert!(v < self.dim);
        let cs = self
            .constraints
            .iter()
            .map(|c| {
                let shift = c.expr.coeff(v).checked_mul(value).expect("fix overflow");
                let mut expr = c.expr.clone().with_coeff(v, 0).plus_const(shift);
                expr = expr.drop_var(v);
                Constraint { kind: c.kind, expr }
            })
            .collect();
        BasicSet::new(self.dim - 1, cs)
    }

    /// Inserts `count` fresh unconstrained variables at position `at`.
    pub fn insert_vars(&self, at: usize, count: usize) -> BasicSet {
        let cs = self
            .constraints
            .iter()
            .map(|c| Constraint {
                kind: c.kind,
                expr: c.expr.insert_vars(at, count),
            })
            .collect();
        BasicSet {
            dim: self.dim + count,
            constraints: cs,
            known_empty: self.known_empty,
        }
    }

    /// Reorders variables: new variable `i` is old variable `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> BasicSet {
        assert_eq!(perm.len(), self.dim);
        let cs = self
            .constraints
            .iter()
            .map(|c| Constraint {
                kind: c.kind,
                expr: c.expr.permute(perm),
            })
            .collect();
        BasicSet {
            dim: self.dim,
            constraints: cs,
            known_empty: self.known_empty,
        }
    }

    /// Rational lower/upper bounds of variable `v` over the set, obtained by
    /// pairwise (Fourier) elimination of every other variable. `None` on the
    /// respective side means unbounded. The bounds are safe over-estimates:
    /// every point of the set has `lo <= x[v] <= hi`.
    ///
    /// Congruence constraints are ignored here (they only thin the set).
    pub fn var_bounds(&self, v: usize) -> (Option<i64>, Option<i64>) {
        omega::rational_var_bounds(self, v)
    }

    /// Finds one integer point of the set, if any (exact).
    pub fn sample(&self) -> Option<Vec<i64>> {
        omega::sample(self)
    }

    /// Normalization: gcd-reduce every constraint, tighten inequality
    /// constants, reduce congruence coefficients into `[0, m)`, substitute
    /// unit-coefficient equalities into the other constraints (integer
    /// Gaussian elimination), drop tautologies, detect obvious
    /// contradictions and deduplicate.
    fn normalize(&mut self) {
        let mut out: Vec<Constraint> = Vec::with_capacity(self.constraints.len());
        for c in std::mem::take(&mut self.constraints) {
            match Self::normalize_constraint(c) {
                NormalizedConstraint::True => {}
                NormalizedConstraint::False => {
                    self.known_empty = true;
                    self.constraints = vec![Constraint::ge(LinearExpr::constant(self.dim, -1))];
                    return;
                }
                NormalizedConstraint::Keep(c) => out.push(c),
            }
        }
        // Equality-driven substitution: for every equality with a unit
        // coefficient, rewrite the *other* constraints to not mention that
        // variable. This is what lets contradictions like `x = 0 ∧ x >= 1`
        // surface without a full Omega run, which keeps set difference and
        // the closure fixpoint fast.
        let mut solved: Vec<usize> = Vec::new();
        loop {
            let mut pick: Option<(usize, usize, LinearExpr)> = None;
            'scan: for (ci, c) in out.iter().enumerate() {
                if c.kind != ConstraintKind::Eq {
                    continue;
                }
                for v in 0..self.dim {
                    if solved.contains(&v) {
                        continue;
                    }
                    let a = c.expr.coeff(v);
                    if a.abs() == 1 {
                        // v = rep with rep free of v.
                        let rep = c.expr.clone().with_coeff(v, 0).scale(-a);
                        pick = Some((ci, v, rep));
                        break 'scan;
                    }
                }
            }
            let Some((ci, v, rep)) = pick else { break };
            solved.push(v);
            let mut changed: Vec<Constraint> = Vec::with_capacity(out.len());
            for (i, c) in out.iter().enumerate() {
                if i == ci || c.expr.coeff(v) == 0 {
                    changed.push(c.clone());
                    continue;
                }
                let nc = Constraint {
                    kind: c.kind,
                    expr: c.expr.substitute(v, &rep),
                };
                match Self::normalize_constraint(nc) {
                    NormalizedConstraint::True => {}
                    NormalizedConstraint::False => {
                        self.known_empty = true;
                        self.constraints = vec![Constraint::ge(LinearExpr::constant(self.dim, -1))];
                        return;
                    }
                    NormalizedConstraint::Keep(c) => changed.push(c),
                }
            }
            out = changed;
        }
        out.sort();
        out.dedup();
        // Drop inequalities strictly implied by another with the same
        // coefficient vector (keep the tighter constant).
        let mut kept: Vec<Constraint> = Vec::with_capacity(out.len());
        for c in out {
            if c.kind == ConstraintKind::Ge {
                if let Some(prev) = kept
                    .iter_mut()
                    .find(|p| p.kind == ConstraintKind::Ge && p.expr.coeffs() == c.expr.coeffs())
                {
                    // Same direction: x >= a and x >= b  ->  keep max bound,
                    // i.e. the *smaller* constant term of `expr >= 0`.
                    if c.expr.constant_term() < prev.expr.constant_term() {
                        prev.expr = c.expr;
                    }
                    continue;
                }
            }
            kept.push(c);
        }
        // Opposite-direction pair detection: e >= 0 and -e >= 0 => e = 0;
        // e >= 1 and -e >= 0 => empty.
        let mut i = 0;
        while i < kept.len() {
            if kept[i].kind == ConstraintKind::Ge {
                let negated = kept[i].expr.neg();
                if let Some(j) = kept.iter().position(|c| {
                    c.kind == ConstraintKind::Ge && c.expr.coeffs() == negated.coeffs()
                }) {
                    if j != i {
                        // a: e + p >= 0, b: -e + q >= 0  => -p <= e <= q
                        let p = kept[i].expr.constant_term();
                        let q = kept[j].expr.constant_term();
                        // feasibility of the pair requires -p <= q
                        if -p > q {
                            self.known_empty = true;
                            self.constraints =
                                vec![Constraint::ge(LinearExpr::constant(self.dim, -1))];
                            return;
                        }
                        if -p == q {
                            // collapse into an equality e = -p i.e. expr of i
                            let expr = kept[i].expr.clone();
                            let (a, b) = if i < j { (j, i) } else { (i, j) };
                            kept.remove(a);
                            kept.remove(b);
                            kept.push(Constraint::eq(expr));
                            kept.sort();
                            kept.dedup();
                            i = 0;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
        self.constraints = kept;
    }

    fn normalize_constraint(c: Constraint) -> NormalizedConstraint {
        let content = c.expr.content();
        match c.kind {
            ConstraintKind::Eq => {
                if content == 0 {
                    return if c.expr.constant_term() == 0 {
                        NormalizedConstraint::True
                    } else {
                        NormalizedConstraint::False
                    };
                }
                if c.expr.constant_term() % content != 0 {
                    return NormalizedConstraint::False;
                }
                let expr = LinearExpr::new(
                    c.expr.coeffs().iter().map(|&x| x / content).collect(),
                    c.expr.constant_term() / content,
                );
                // Canonical sign: first non-zero coefficient positive.
                let expr = match expr.first_var() {
                    Some(v) if expr.coeff(v) < 0 => expr.neg(),
                    _ => expr,
                };
                NormalizedConstraint::Keep(Constraint::eq(expr))
            }
            ConstraintKind::Ge => {
                if content == 0 {
                    return if c.expr.constant_term() >= 0 {
                        NormalizedConstraint::True
                    } else {
                        NormalizedConstraint::False
                    };
                }
                // g·e' + k >= 0  <=>  e' >= ceil(-k / g)  (integer tightening)
                let expr = LinearExpr::new(
                    c.expr.coeffs().iter().map(|&x| x / content).collect(),
                    div_floor(c.expr.constant_term(), content),
                );
                NormalizedConstraint::Keep(Constraint::ge(expr))
            }
            ConstraintKind::Mod(m) => {
                // Reduce coefficients into [0, m).
                let coeffs: Vec<i64> = c.expr.coeffs().iter().map(|&x| x.rem_euclid(m)).collect();
                let k = c.expr.constant_term().rem_euclid(m);
                let g = coeffs.iter().fold(gcd(m, k), |g, &x| gcd(g, x));
                if coeffs.iter().all(|&x| x == 0) {
                    return if k == 0 {
                        NormalizedConstraint::True
                    } else {
                        NormalizedConstraint::False
                    };
                }
                // Divide through by gcd(coeffs, k, m).
                let (coeffs, k, m) = if g > 1 {
                    (coeffs.iter().map(|&x| x / g).collect(), k / g, m / g)
                } else {
                    (coeffs, k, m)
                };
                if m == 1 {
                    return NormalizedConstraint::True;
                }
                NormalizedConstraint::Keep(Constraint::modulo(LinearExpr::new(coeffs, k), m))
            }
        }
    }
}

enum NormalizedConstraint {
    True,
    False,
    Keep(Constraint),
}

impl std::fmt::Debug for BasicSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{ dim={} : ", self.dim)?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c:?}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: i64, hi: i64) -> BasicSet {
        BasicSet::bounding_box(&[lo], &[hi])
    }

    #[test]
    fn universe_and_empty() {
        assert!(!BasicSet::universe(2).is_empty());
        assert!(BasicSet::empty(2).is_empty());
        assert!(BasicSet::universe(0).contains(&[]));
    }

    #[test]
    fn point_membership() {
        let p = BasicSet::point(&[3, -1]);
        assert!(p.contains(&[3, -1]));
        assert!(!p.contains(&[3, 0]));
    }

    #[test]
    fn gcd_tightening_of_inequalities() {
        // 2x >= 3  ->  x >= 2
        let bs = BasicSet::new(1, vec![Constraint::ge(LinearExpr::new(vec![2], -3))]);
        assert!(!bs.contains(&[1]));
        assert!(bs.contains(&[2]));
    }

    #[test]
    fn infeasible_equality_detected() {
        // 2x = 3 has no integer solution.
        let bs = BasicSet::new(1, vec![Constraint::eq(LinearExpr::new(vec![2], -3))]);
        assert!(bs.is_obviously_empty());
    }

    #[test]
    fn opposite_inequalities_collapse() {
        // x >= 2 and x <= 2  =>  x = 2
        let bs = interval(2, 2);
        assert!(bs
            .constraints()
            .iter()
            .any(|c| c.kind == ConstraintKind::Eq));
        assert!(bs.contains(&[2]));
        assert!(!bs.contains(&[1]));
    }

    #[test]
    fn contradictory_interval_is_empty() {
        let bs = interval(3, 1);
        assert!(bs.is_obviously_empty());
    }

    #[test]
    fn congruence_normalization_reduces_coefficients() {
        // 5x ≡ 3 (mod 2)  ->  x ≡ 1 (mod 2)
        let bs = BasicSet::new(1, vec![Constraint::modulo(LinearExpr::new(vec![5], -3), 2)]);
        assert!(bs.contains(&[1]));
        assert!(bs.contains(&[3]));
        assert!(!bs.contains(&[2]));
    }

    #[test]
    fn fix_var_projects_point() {
        // { (x, y) : 0 <= x <= 4, y = x + 1 } fixed at x = 2 -> { y : y = 3 }
        let bs = BasicSet::new(
            2,
            vec![
                Constraint::ge(LinearExpr::var(2, 0)),
                Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(4)),
                Constraint::eq(
                    LinearExpr::var(2, 1)
                        .sub(&LinearExpr::var(2, 0))
                        .plus_const(-1),
                ),
            ],
        );
        let fixed = bs.fix_var(0, 2);
        assert!(fixed.contains(&[3]));
        assert!(!fixed.contains(&[2]));
    }

    #[test]
    fn intersect_narrows() {
        let a = interval(0, 10);
        let b = interval(5, 20);
        let c = a.intersect(&b);
        assert!(c.contains(&[5]) && c.contains(&[10]));
        assert!(!c.contains(&[4]) && !c.contains(&[11]));
    }

    #[test]
    fn var_bounds_of_box() {
        let bs = BasicSet::bounding_box(&[-2, 5], &[7, 5]);
        assert_eq!(bs.var_bounds(0), (Some(-2), Some(7)));
        assert_eq!(bs.var_bounds(1), (Some(5), Some(5)));
        let u = BasicSet::universe(1);
        assert_eq!(u.var_bounds(0), (None, None));
    }

    #[test]
    fn sample_finds_member() {
        let bs = BasicSet::new(
            2,
            vec![
                Constraint::ge(LinearExpr::var(2, 0).plus_const(-3)), // x >= 3
                Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(9)), // x <= 9
                Constraint::modulo(LinearExpr::var(2, 0), 5),         // x ≡ 0 mod 5
                Constraint::eq2(LinearExpr::var(2, 1), &LinearExpr::var(2, 0).scale(2)),
            ],
        );
        let p = bs.sample().expect("set is non-empty");
        assert_eq!(p, vec![5, 10]);
        assert!(bs.contains(&p));
    }
}
