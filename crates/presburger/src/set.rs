//! Unions of basic sets ([`Set`]).

use crate::basic::BasicSet;
use crate::expr::Constraint;
use crate::Result;

/// A finite union of [`BasicSet`]s over a common dimension.
///
/// This is the ISL `isl_set` analogue: all set algebra (union, intersection,
/// difference, subset/equality tests) is exact.
#[derive(Clone, PartialEq, Eq)]
pub struct Set {
    dim: usize,
    parts: Vec<BasicSet>,
}

impl From<BasicSet> for Set {
    fn from(bs: BasicSet) -> Self {
        let dim = bs.dim();
        let parts = if bs.is_obviously_empty() {
            Vec::new()
        } else {
            vec![bs]
        };
        Set { dim, parts }
    }
}

impl Set {
    /// The empty set of the given dimension.
    pub fn empty(dim: usize) -> Self {
        Set {
            dim,
            parts: Vec::new(),
        }
    }

    /// The whole space `Zⁿ`.
    pub fn universe(dim: usize) -> Self {
        BasicSet::universe(dim).into()
    }

    /// A set containing exactly the given points.
    pub fn from_points<'a, I: IntoIterator<Item = &'a [i64]>>(dim: usize, points: I) -> Self {
        let mut s = Set::empty(dim);
        for p in points {
            assert_eq!(p.len(), dim);
            s = s.union(&BasicSet::point(p).into());
        }
        s
    }

    /// Builds a union from parts (all must share the dimension).
    pub fn from_parts(dim: usize, parts: Vec<BasicSet>) -> Self {
        for p in &parts {
            assert_eq!(p.dim(), dim, "part dimension mismatch");
        }
        let parts = parts
            .into_iter()
            .filter(|p| !p.is_obviously_empty())
            .collect();
        Set { dim, parts }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The disjuncts of the union.
    pub fn parts(&self) -> &[BasicSet] {
        &self.parts
    }

    /// Number of disjuncts (after dropping obviously-empty ones).
    pub fn n_parts(&self) -> usize {
        self.parts.len()
    }

    /// Whether an integer point belongs to the set.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(point))
    }

    /// Exact emptiness test.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Set union (concatenation of disjuncts plus light dedup).
    pub fn union(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in union");
        let mut parts = self.parts.clone();
        for p in &other.parts {
            if !parts.contains(p) {
                parts.push(p.clone());
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Set intersection (pairwise products of disjuncts).
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.is_obviously_empty() {
                    parts.push(c);
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Adds a constraint to every disjunct.
    pub fn add_constraint(&self, c: &Constraint) -> Set {
        let parts = self
            .parts
            .iter()
            .map(|p| p.add_constraint(c.clone()))
            .filter(|p| !p.is_obviously_empty())
            .collect();
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Exact set difference `self − other`.
    ///
    /// Uses the closed-form complement of a conjunction: for each disjunct
    /// `B = c₁ ∧ … ∧ cₖ` of `other`, `A − B = ∪ᵢ (A ∧ c₁ ∧ … ∧ cᵢ₋₁ ∧ ¬cᵢ)`
    /// (the "path" decomposition, which keeps the result disjoint per `B`).
    pub fn subtract(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in subtract");
        let mut acc = self.clone();
        for b in &other.parts {
            let mut next = Set::empty(self.dim);
            for a in &acc.parts {
                next = next.union(&subtract_basic(a, b));
            }
            acc = next;
            if acc.parts.is_empty() {
                break;
            }
        }
        acc
    }

    /// Exact subset test.
    pub fn is_subset(&self, other: &Set) -> bool {
        self.subtract(other).is_empty()
    }

    /// Exact equality test (mutual inclusion).
    pub fn is_equal(&self, other: &Set) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Merges one-dimensional disjuncts that form contiguous or
    /// overlapping plain intervals (no congruences) into single intervals
    /// — a light version of ISL's `coalesce` that keeps unions small after
    /// repeated subtraction. Other disjuncts pass through untouched.
    pub fn coalesce(&self) -> Set {
        if self.dim != 1 {
            return self.clone();
        }
        // Split disjuncts into plain intervals and the rest.
        let mut intervals: Vec<(i64, i64)> = Vec::new();
        let mut rest: Vec<BasicSet> = Vec::new();
        for p in &self.parts {
            let plain = p.constraints().iter().all(|c| {
                matches!(
                    c.kind,
                    crate::ConstraintKind::Ge | crate::ConstraintKind::Eq
                )
            });
            match (plain, p.var_bounds(0)) {
                (true, (Some(lo), Some(hi))) if lo <= hi => intervals.push((lo, hi)),
                _ => rest.push(p.clone()),
            }
        }
        intervals.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::new();
        for (lo, hi) in intervals {
            match merged.last_mut() {
                Some((_, mhi)) if lo <= *mhi + 1 => *mhi = (*mhi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        let mut parts: Vec<BasicSet> = merged
            .into_iter()
            .map(|(lo, hi)| BasicSet::bounding_box(&[lo], &[hi]))
            .collect();
        parts.extend(rest);
        Set { dim: 1, parts }
    }

    /// Rewrites the union so that disjuncts are pairwise disjoint (needed
    /// for exact counting).
    pub fn make_disjoint(&self) -> Set {
        let mut out: Vec<BasicSet> = Vec::new();
        let mut seen = Set::empty(self.dim);
        for p in &self.parts {
            let fresh = Set::from(p.clone()).subtract(&seen);
            out.extend(fresh.parts.iter().cloned());
            seen = seen.union(&Set::from(p.clone()));
        }
        Set {
            dim: self.dim,
            parts: out,
        }
    }

    /// Projects out variable `v` exactly.
    ///
    /// # Errors
    ///
    /// See [`BasicSet::eliminate_var`].
    pub fn eliminate_var(&self, v: usize) -> Result<Set> {
        let mut parts = Vec::new();
        for p in &self.parts {
            parts.extend(p.eliminate_var(v)?);
        }
        Ok(Set {
            dim: self.dim - 1,
            parts,
        })
    }

    /// Fixes variable `v` to `value` in every disjunct.
    pub fn fix_var(&self, v: usize, value: i64) -> Set {
        let parts = self
            .parts
            .iter()
            .map(|p| p.fix_var(v, value))
            .filter(|p| !p.is_obviously_empty())
            .collect();
        Set {
            dim: self.dim - 1,
            parts,
        }
    }

    /// Inserts fresh unconstrained variables at `at` in every disjunct.
    pub fn insert_vars(&self, at: usize, count: usize) -> Set {
        Set {
            dim: self.dim + count,
            parts: self
                .parts
                .iter()
                .map(|p| p.insert_vars(at, count))
                .collect(),
        }
    }

    /// Finds one member point, if any.
    pub fn sample(&self) -> Option<Vec<i64>> {
        self.parts.iter().find_map(|p| p.sample())
    }

    /// Safe outer bounds of variable `v` over the whole union
    /// (`None` = unbounded on that side).
    pub fn var_bounds(&self, v: usize) -> (Option<i64>, Option<i64>) {
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        let mut first = true;
        for p in &self.parts {
            if p.is_empty() {
                continue;
            }
            let (l, h) = p.var_bounds(v);
            if first {
                lo = l;
                hi = h;
                first = false;
            } else {
                lo = match (lo, l) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    _ => None,
                };
                hi = match (hi, h) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
            }
        }
        if first {
            // Empty set: degenerate bounds.
            (Some(0), Some(-1))
        } else {
            (lo, hi)
        }
    }

    /// Exact number of integer points (see the `count` module docs);
    /// `None` when the set is infinite.
    pub fn count_points_checked(&self) -> Option<u64> {
        crate::count::count(self)
    }

    /// Exact number of integer points.
    ///
    /// # Panics
    ///
    /// Panics if the set is infinite. Use
    /// [`Set::count_points_checked`] when unsure.
    pub fn count_points(&self) -> u64 {
        self.count_points_checked()
            .expect("count_points on an infinite set")
    }
}

/// `A − B` for basic sets, via the path decomposition of `¬B`.
fn subtract_basic(a: &BasicSet, b: &BasicSet) -> Set {
    if b.is_obviously_empty() {
        return a.clone().into();
    }
    let mut parts: Vec<BasicSet> = Vec::new();
    let mut prefix = a.clone();
    for c in b.constraints() {
        for neg in c.negate() {
            let piece = prefix.add_constraint(neg);
            if !piece.is_obviously_empty() {
                parts.push(piece);
            }
        }
        prefix = prefix.add_constraint(c.clone());
        if prefix.is_obviously_empty() {
            break;
        }
    }
    Set {
        dim: a.dim(),
        parts,
    }
}

impl std::fmt::Debug for Set {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{{ dim={} : false }}", self.dim);
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{p:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinearExpr;

    fn interval(lo: i64, hi: i64) -> Set {
        BasicSet::bounding_box(&[lo], &[hi]).into()
    }

    #[test]
    fn union_and_membership() {
        let s = interval(0, 3).union(&interval(10, 12));
        assert!(s.contains(&[2]) && s.contains(&[11]));
        assert!(!s.contains(&[5]));
    }

    #[test]
    fn subtract_interval() {
        // [0,10] - [3,5] = [0,2] ∪ [6,10]
        let s = interval(0, 10).subtract(&interval(3, 5));
        for x in 0..=10 {
            assert_eq!(s.contains(&[x]), !(3..=5).contains(&x), "x = {x}");
        }
        assert_eq!(s.count_points(), 8);
    }

    #[test]
    fn subtract_with_congruence() {
        // [0,9] - { x ≡ 0 mod 2 } = odd numbers in [0,9]
        let evens = Set::from(BasicSet::new(
            1,
            vec![Constraint::modulo(LinearExpr::var(1, 0), 2)],
        ));
        let s = interval(0, 9).subtract(&evens);
        for x in 0..=9 {
            assert_eq!(s.contains(&[x]), x % 2 == 1, "x = {x}");
        }
        assert_eq!(s.count_points(), 5);
    }

    #[test]
    fn subset_and_equality() {
        assert!(interval(2, 4).is_subset(&interval(0, 10)));
        assert!(!interval(0, 10).is_subset(&interval(2, 4)));
        let a = interval(0, 5).union(&interval(3, 9));
        let b = interval(0, 9);
        assert!(a.is_equal(&b));
    }

    #[test]
    fn make_disjoint_preserves_count() {
        let a = interval(0, 5).union(&interval(3, 9)); // overlap [3,5]
        let d = a.make_disjoint();
        assert_eq!(d.count_points(), 10);
        // After disjointification, summing per-part counts matches.
        let per_part: u64 = d
            .parts()
            .iter()
            .map(|p| Set::from(p.clone()).count_points())
            .sum();
        assert_eq!(per_part, 10);
    }

    #[test]
    fn empty_behaviour() {
        let e = Set::empty(2);
        assert!(e.is_empty());
        assert!(e.is_subset(&e));
        assert_eq!(e.count_points(), 0);
        assert!(Set::universe(1).subtract(&Set::universe(1)).is_empty());
    }

    #[test]
    fn from_points_roundtrip() {
        let pts: Vec<&[i64]> = vec![&[1, 2], &[3, 4], &[1, 2]];
        let s = Set::from_points(2, pts);
        assert!(s.contains(&[1, 2]) && s.contains(&[3, 4]));
        assert_eq!(s.count_points(), 2);
    }

    #[test]
    fn eliminate_var_on_union() {
        // ([0,2] x [5,5]) ∪ ([4,6] x [7,7]) project second dim.
        let a = BasicSet::bounding_box(&[0, 5], &[2, 5]);
        let b = BasicSet::bounding_box(&[4, 7], &[6, 7]);
        let s = Set::from(a).union(&b.into());
        let p = s.eliminate_var(1).unwrap();
        for x in -2..=8 {
            assert_eq!(
                p.contains(&[x]),
                (0..=2).contains(&x) || (4..=6).contains(&x)
            );
        }
    }

    #[test]
    fn var_bounds_union() {
        let s = interval(0, 3).union(&interval(10, 12));
        assert_eq!(s.var_bounds(0), (Some(0), Some(12)));
    }

    #[test]
    fn coalesce_merges_adjacent_intervals() {
        let s = interval(0, 3)
            .union(&interval(4, 7))
            .union(&interval(6, 9))
            .union(&interval(20, 25));
        let c = s.coalesce();
        assert_eq!(c.n_parts(), 2);
        assert!(c.is_equal(&s));
        assert_eq!(c.count_points(), 16);
    }

    #[test]
    fn coalesce_leaves_strided_parts_alone() {
        let evens = Set::from(BasicSet::new(
            1,
            vec![
                Constraint::modulo(LinearExpr::var(1, 0), 2),
                Constraint::ge(LinearExpr::var(1, 0)),
                Constraint::ge(LinearExpr::var(1, 0).neg().plus_const(10)),
            ],
        ));
        let s = interval(0, 3).union(&evens);
        let c = s.coalesce();
        assert!(c.is_equal(&s));
        // The strided part survives as its own disjunct.
        assert_eq!(c.n_parts(), 2);
    }

    #[test]
    fn coalesce_noop_on_higher_dims() {
        let s = Set::from(BasicSet::bounding_box(&[0, 0], &[2, 2]));
        assert_eq!(s.coalesce(), s);
    }
}
