//! Exact integer-point counting (the Barvinok `card` substitute).
//!
//! Sets in the qubit-mapping workload are low-dimensional (≤ 3) and bounded,
//! so counting proceeds by: disjointification of the union, then recursive
//! enumeration of all but the innermost variable using safe rational bounds,
//! with a closed-form interval/congruence count (`omega::count_1d`) at the
//! innermost level. The cost is `O(width^(d-1))` per disjunct, which is
//! microseconds at the sizes the mapper produces.

use crate::basic::BasicSet;
use crate::omega;
use crate::set::Set;

/// Exact number of integer points in `set`; `None` when infinite.
pub fn count(set: &Set) -> Option<u64> {
    let disjoint = set.make_disjoint();
    let mut total: u64 = 0;
    for part in disjoint.parts() {
        total = total
            .checked_add(count_basic(part)?)
            .expect("count overflow");
    }
    Some(total)
}

/// Exact number of integer points in a basic set; `None` when infinite.
pub fn count_basic(bs: &BasicSet) -> Option<u64> {
    if bs.is_obviously_empty() {
        return Some(0);
    }
    match bs.dim() {
        0 => Some(1),
        1 => omega::count_1d(bs),
        _ => {
            // Choose the outer variable with the narrowest range to
            // enumerate; keep the rest for recursion.
            let mut best: Option<(usize, i64, i64)> = None;
            for v in 0..bs.dim() - 1 {
                let (lo, hi) = bs.var_bounds(v);
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    let width = hi.saturating_sub(lo);
                    if best.is_none_or(|(_, l, h)| width < h.saturating_sub(l)) {
                        best = Some((v, lo, hi));
                    }
                }
            }
            // If no outer variable is bounded, the innermost might still
            // make the set empty; check emptiness before declaring infinite.
            let (v, lo, hi) = match best {
                Some(b) => b,
                None => {
                    let (lo, hi) = bs.var_bounds(bs.dim() - 1);
                    match (lo, hi) {
                        (Some(lo), Some(hi)) => (bs.dim() - 1, lo, hi),
                        _ => return if bs.is_empty() { Some(0) } else { None },
                    }
                }
            };
            if lo > hi {
                return Some(0);
            }
            let mut total: u64 = 0;
            for x in lo..=hi {
                let slice = bs.fix_var(v, x);
                total = total
                    .checked_add(count_basic(&slice)?)
                    .expect("count overflow");
            }
            Some(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Constraint, LinearExpr};

    #[test]
    fn count_box() {
        let b = BasicSet::bounding_box(&[0, 0], &[4, 9]);
        assert_eq!(count_basic(&b), Some(50));
    }

    #[test]
    fn count_triangle() {
        // { (i, j) : 0 <= i <= j <= 9 } -> 55 points
        let t = BasicSet::new(
            2,
            vec![
                Constraint::ge(LinearExpr::var(2, 0)),
                Constraint::ge2(LinearExpr::var(2, 1), &LinearExpr::var(2, 0)),
                Constraint::ge(LinearExpr::var(2, 1).neg().plus_const(9)),
            ],
        );
        assert_eq!(count_basic(&t), Some(55));
    }

    #[test]
    fn count_with_stride() {
        // { (i, j) : 0 <= i <= 9, j = 2i, i ≡ 1 mod 3 } -> i in {1, 4, 7}
        let s = BasicSet::new(
            2,
            vec![
                Constraint::ge(LinearExpr::var(2, 0)),
                Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(9)),
                Constraint::eq2(LinearExpr::var(2, 1), &LinearExpr::var(2, 0).scale(2)),
                Constraint::modulo(LinearExpr::var(2, 0).plus_const(-1), 3),
            ],
        );
        assert_eq!(count_basic(&s), Some(3));
    }

    #[test]
    fn count_infinite_reported() {
        assert_eq!(count_basic(&BasicSet::universe(2)), None);
        let half = BasicSet::new(1, vec![Constraint::ge(LinearExpr::var(1, 0))]);
        assert_eq!(count_basic(&half), None);
    }

    #[test]
    fn count_empty_unbounded_directions() {
        // { (i, j) : i >= 0, i <= -1 } is empty even though j is unbounded.
        let e = BasicSet::new(
            2,
            vec![
                Constraint::ge(LinearExpr::var(2, 0)),
                Constraint::ge(LinearExpr::var(2, 0).neg().plus_const(-1)),
            ],
        );
        assert_eq!(count_basic(&e), Some(0));
    }

    #[test]
    fn union_counting_handles_overlap() {
        let a = BasicSet::bounding_box(&[0], &[9]);
        let b = BasicSet::bounding_box(&[5], &[14]);
        let u = Set::from(a).union(&b.into());
        assert_eq!(count(&u), Some(15));
    }

    #[test]
    fn brute_force_cross_check_3d() {
        // { (i,j,k) : 0<=i<=4, i<=j<=i+2, k = i + j, k ≡ 0 mod 2 }
        let s = BasicSet::new(
            3,
            vec![
                Constraint::ge(LinearExpr::var(3, 0)),
                Constraint::ge(LinearExpr::var(3, 0).neg().plus_const(4)),
                Constraint::ge2(LinearExpr::var(3, 1), &LinearExpr::var(3, 0)),
                Constraint::ge2(LinearExpr::var(3, 0).plus_const(2), &LinearExpr::var(3, 1)),
                Constraint::eq2(
                    LinearExpr::var(3, 2),
                    &LinearExpr::var(3, 0).add(&LinearExpr::var(3, 1)),
                ),
                Constraint::modulo(LinearExpr::var(3, 2), 2),
            ],
        );
        let mut brute = 0;
        for i in -1..=6 {
            for j in -1..=8 {
                for k in -2..=14 {
                    if s.contains(&[i, j, k]) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_basic(&s), Some(brute));
    }
}
