//! Transitive closure of integer relations (`R⁺`).
//!
//! Follows the structure of Verdoolaege–Cohen–Beletska, *Transitive closures
//! of affine integer tuple relations and their overapproximations* (SAS'11):
//!
//! 1. a **candidate** closure is constructed cheaply (translation rule for
//!    single-disjunct translations, delta-hull rule for 1-D relations with
//!    strictly forward steps);
//! 2. the candidate is **verified**: `R ⊆ C` and `C∘C ⊆ C` establish
//!    soundness (`C ⊇ R⁺`), and `C ⊆ R ∪ (R ∘ C)` establishes exactness
//!    (`C = R⁺`) whenever steps strictly advance some dimension;
//! 3. if no candidate verifies, an **iterative fixpoint** with a budget is
//!    attempted (exact for bounded-depth relations);
//! 4. otherwise a sound, flagged **over-approximation** built from the delta
//!    box hull and the relation's domain/range is returned.

use crate::expr::{Constraint, LinearExpr};
use crate::map::{BasicMap, Map};
use crate::set::Set;
use crate::{gcd, Result};

/// Result of [`Map::transitive_closure`]: the relation plus an exactness
/// flag. When `exact` is `false` the relation is a sound over-approximation
/// (`R⁺ ⊆ map`).
#[derive(Clone, Debug)]
pub struct ClosureResult {
    /// The computed closure (or over-approximation of it).
    pub map: Map,
    /// Whether `map` is exactly `R⁺`.
    pub exact: bool,
}

/// Iteration budget for the fixpoint fallback.
const MAX_FIXPOINT_ITERS: usize = 48;
/// Disjunct budget: beyond this the fixpoint gives up.
const MAX_PARTS: usize = 128;
/// Relations wider than this skip the exact strategies entirely — both the
/// candidate verification and the fixpoint are superlinear in the disjunct
/// count, so wide unions go straight to the over-approximation.
const MAX_INPUT_PARTS: usize = 48;
/// Candidates wider than this are too expensive to verify.
const MAX_CANDIDATE_PARTS: usize = 64;

/// Computes `R⁺` (see module docs).
pub fn transitive_closure(r: &Map) -> ClosureResult {
    assert_eq!(r.n_in(), r.n_out(), "closure needs equal arities");
    if r.is_empty() {
        return ClosureResult {
            map: Map::empty(r.n_in(), r.n_out()),
            exact: true,
        };
    }
    if r.parts().len() <= MAX_INPUT_PARTS {
        // Strategy 1: verified candidate.
        if let Some(c) = candidate_closure(r) {
            if c.parts().len() <= MAX_CANDIDATE_PARTS {
                if let Ok(Some(exact)) = verify_candidate(r, &c) {
                    return ClosureResult { map: c, exact };
                }
            }
        }
        // Strategy 2: iterative fixpoint (exact when it converges).
        if let Some(map) = iterative_closure(r) {
            return ClosureResult { map, exact: true };
        }
    }
    // Strategy 3: sound over-approximation.
    ClosureResult {
        map: over_approximation(r),
        exact: false,
    }
}

/// Builds a candidate closure, or `None` when no rule applies.
fn candidate_closure(r: &Map) -> Option<Map> {
    if let Some(c) = translation_candidate(r) {
        return Some(c);
    }
    if r.n_in() == 1 {
        return delta_hull_candidate_1d(r);
    }
    None
}

/// Single-disjunct translation rule: `R = { x → x + d : x ∈ D }` gives the
/// candidate `{ x → x + k·d : k ≥ 1, x ∈ D, x + (k-1)·d ∈ D }`, expressed
/// without `k` through the pivot dimension.
fn translation_candidate(r: &Map) -> Option<Map> {
    if r.parts().len() != 1 {
        return None;
    }
    let d = extract_translation(&r.parts()[0])?;
    let dim = r.n_in();
    if d.iter().all(|&x| x == 0) {
        // Idempotent relation: R⁺ = R.
        return Some(r.clone());
    }
    let p = d.iter().position(|&x| x != 0)?;
    let dp = d[p];
    let n = 2 * dim;
    let step_p = |i: usize| LinearExpr::var(n, dim + i).sub(&LinearExpr::var(n, i));
    let mut cs: Vec<Constraint> = Vec::new();
    // Pivot advances by at least one step, in multiples of d_p.
    if dp > 0 {
        cs.push(Constraint::ge(step_p(p).plus_const(-dp)));
    } else {
        cs.push(Constraint::ge(step_p(p).neg().plus_const(dp)));
    }
    if dp.abs() >= 2 {
        cs.push(Constraint::modulo(step_p(p), dp.abs()));
    }
    // All dimensions move proportionally: d_p·(y_i − x_i) = d_i·(y_p − x_p).
    for i in 0..dim {
        if i == p {
            continue;
        }
        cs.push(Constraint::eq2(step_p(i).scale(dp), &step_p(p).scale(d[i])));
    }
    let kernel = BasicMap::new(dim, dim, cs);
    // x must be a valid start (∈ dom R) and y a valid end (∈ ran R).
    let dom = r.domain().ok()?;
    let ran = r.range().ok()?;
    Some(Map::from(kernel).restrict_domain(&dom).restrict_range(&ran))
}

/// Extracts the constant translation vector of a basic map, if it is one.
fn extract_translation(bm: &BasicMap) -> Option<Vec<i64>> {
    let dim = bm.n_in();
    let deltas: Map = Map::from(bm.clone());
    let ds = deltas.deltas().ok()?;
    // A translation has a single delta point.
    let sample = ds.sample()?;
    let point = Set::from_points(dim, std::iter::once(sample.as_slice()));
    ds.is_equal(&point).then_some(sample)
}

/// 1-D delta-hull rule: when every step strictly advances (all deltas > 0 or
/// all < 0), the candidate is `(y − x)` bounded by the minimal step and
/// congruent modulo the gcd of all steps.
fn delta_hull_candidate_1d(r: &Map) -> Option<Map> {
    let ds = r.deltas().ok()?;
    let (lo, hi) = ds.var_bounds(0);
    let forward = matches!(lo, Some(l) if l > 0);
    let backward = matches!(hi, Some(h) if h < 0);
    if !forward && !backward {
        return None;
    }
    // gcd of all deltas: enumerate them (deltas of a bounded 1-D relation
    // form a bounded set; bail out when too wide).
    let (l, h) = (lo?, hi?);
    if h.saturating_sub(l) > 4096 {
        return None;
    }
    let mut g = 0i64;
    for x in l..=h {
        if ds.contains(&[x]) {
            g = gcd(g, x);
        }
    }
    if g == 0 {
        return None;
    }
    let n = 2;
    let step = LinearExpr::var(n, 1).sub(&LinearExpr::var(n, 0));
    let mut cs = Vec::new();
    if forward {
        cs.push(Constraint::ge(step.clone().plus_const(-l)));
    } else {
        cs.push(Constraint::ge(step.clone().neg().plus_const(h)));
    }
    if g >= 2 {
        cs.push(Constraint::modulo(step, g));
    }
    let kernel = BasicMap::new(1, 1, cs);
    let dom = r.domain().ok()?;
    let ran = r.range().ok()?;
    Some(Map::from(kernel).restrict_domain(&dom).restrict_range(&ran))
}

/// Verifies a candidate closure.
///
/// Returns `Ok(Some(true))` when `C = R⁺` exactly, `Ok(Some(false))` when
/// `C ⊇ R⁺` (sound over-approximation), and `Ok(None)` when soundness could
/// not be established.
fn verify_candidate(r: &Map, c: &Map) -> Result<Option<bool>> {
    // Soundness: R ⊆ C and C∘C ⊆ C imply R⁺ ⊆ C.
    if !r.is_subset(c) {
        return Ok(None);
    }
    let cc = c.compose(c)?;
    if !cc.is_subset(c) {
        return Ok(None);
    }
    // Exactness: every element of C decomposes as R or R then C. Because
    // our candidates strictly advance a dimension, the decomposition is
    // well-founded and C ⊆ R ∪ (R ∘ C) gives C ⊆ R⁺.
    let rc = r.compose(c)?;
    let cover = r.union(&rc);
    Ok(Some(c.is_subset(&cover)))
}

/// Iterative fixpoint `P ← R ∪ (P ∘ R)` with budgets; exact on convergence.
///
/// Every step is guarded: the pairwise composition product, the composed
/// result width and the accumulator width are all bounded, because both
/// `compose` and `subtract` are superlinear in disjunct counts.
fn iterative_closure(r: &Map) -> Option<Map> {
    const MAX_COMPOSE_PRODUCT: usize = 1024;
    let mut acc = r.clone();
    for _ in 0..MAX_FIXPOINT_ITERS {
        if acc.parts().len() > MAX_PARTS
            || acc.parts().len() * r.parts().len() > MAX_COMPOSE_PRODUCT
        {
            return None;
        }
        let next = acc.compose(r).ok()?;
        if next.parts().len() > 4 * MAX_PARTS {
            return None;
        }
        let fresh = next.subtract(&acc);
        if fresh.is_empty() {
            return Some(acc);
        }
        acc = acc.union(&fresh);
    }
    None
}

/// Sound over-approximation from the delta box hull:
/// `{ x → y : x ∈ hull(dom R), y ∈ hull(ran R), y − x respects
/// per-dimension step direction bounds }`.
///
/// Domain/range restrictions use the exact unions when they are narrow and
/// fall back to bounding boxes otherwise (still sound, O(1) disjuncts).
fn over_approximation(r: &Map) -> Map {
    let dim = r.n_in();
    let n = 2 * dim;
    let mut cs: Vec<Constraint> = Vec::new();
    if let Ok(ds) = r.deltas() {
        for i in 0..dim {
            let (lo, hi) = ds.var_bounds(i);
            let step = LinearExpr::var(n, dim + i).sub(&LinearExpr::var(n, i));
            if let Some(l) = lo {
                if l >= 0 {
                    // Every step advances by at least l >= 0.
                    cs.push(Constraint::ge(step.clone().plus_const(-l.max(0))));
                }
            }
            if let Some(h) = hi {
                if h <= 0 {
                    cs.push(Constraint::ge(step.neg().plus_const(h.min(0))));
                }
            }
        }
    }
    let kernel: Map = BasicMap::new(dim, dim, cs).into();
    let hull = |s: &Set| -> Set {
        if s.parts().len() <= 8 {
            return s.clone();
        }
        let mut lo = Vec::with_capacity(s.dim());
        let mut hi = Vec::with_capacity(s.dim());
        for v in 0..s.dim() {
            match s.var_bounds(v) {
                (Some(l), Some(h)) => {
                    lo.push(l);
                    hi.push(h);
                }
                _ => return Set::universe(s.dim()), // unbounded: no restriction
            }
        }
        crate::BasicSet::bounding_box(&lo, &hi).into()
    };
    match (r.domain(), r.range()) {
        (Ok(dom), Ok(ran)) => kernel
            .restrict_domain(&hull(&dom))
            .restrict_range(&hull(&ran)),
        _ => kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicSet;

    fn bounded_shift(k: i64, lo: i64, hi: i64) -> Map {
        Map::from(
            BasicMap::translation(&[k]).restrict_domain(&BasicSet::bounding_box(&[lo], &[hi])),
        )
    }

    #[test]
    fn closure_of_unit_shift() {
        // R = { t -> t+1 : 0 <= t <= 9 }: R+ = { t -> t' : t < t' <= 10, 0<=t<=9 }
        let r = bounded_shift(1, 0, 9);
        let c = r.transitive_closure();
        assert!(c.exact);
        assert!(c.map.contains(&[0], &[10]));
        assert!(c.map.contains(&[3], &[4]));
        assert!(!c.map.contains(&[3], &[3]));
        assert!(!c.map.contains(&[0], &[11]));
        assert_eq!(c.map.count_pairs(), Some(55)); // sum 1..10
    }

    #[test]
    fn closure_of_stride_two() {
        let r = bounded_shift(2, 0, 8);
        let c = r.transitive_closure();
        assert!(c.exact);
        assert!(c.map.contains(&[0], &[2]));
        assert!(c.map.contains(&[0], &[10]));
        assert!(!c.map.contains(&[0], &[3]));
        assert!(!c.map.contains(&[1], &[2]));
    }

    #[test]
    fn closure_of_mixed_steps_is_exact_when_gcd_covers() {
        // Steps {1, 3} on [0, 20]: closure deltas are all n >= 1.
        let r = bounded_shift(1, 0, 19).union(&bounded_shift(3, 0, 17));
        let c = r.transitive_closure();
        assert!(c.exact);
        assert!(c.map.contains(&[0], &[2])); // 1+1
        assert!(c.map.contains(&[0], &[20]));
        assert!(!c.map.contains(&[5], &[5]));
    }

    #[test]
    fn closure_flags_overapproximation() {
        // Steps {3, 5}: 4 is not a sum of 3s and 5s, so the hull candidate
        // is inexact; any sound result must still contain all true pairs.
        let r = bounded_shift(3, 0, 40).union(&bounded_shift(5, 0, 40));
        let c = r.transitive_closure();
        assert!(c.map.contains(&[0], &[3]));
        assert!(c.map.contains(&[0], &[8]));
        assert!(c.map.contains(&[0], &[11]));
        if c.exact {
            assert!(!c.map.contains(&[0], &[4]));
        }
    }

    #[test]
    fn closure_of_finite_pairs_via_fixpoint() {
        // A small DAG: 0->1, 1->2, 2->3.
        let pairs: Vec<(&[i64], &[i64])> = vec![(&[0], &[1]), (&[1], &[2]), (&[2], &[3])];
        let r = Map::from_pairs(1, 1, pairs);
        let c = r.transitive_closure();
        assert!(c.exact);
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            assert!(c.map.contains(&[a], &[b]), "{a} -> {b}");
        }
        assert!(!c.map.contains(&[1], &[0]));
        assert_eq!(c.map.count_pairs(), Some(6));
    }

    #[test]
    fn closure_2d_translation() {
        // R = { (i,j) -> (i+1, j+2) : 0 <= i <= 5, 0 <= j <= 10 }
        let dom = BasicSet::bounding_box(&[0, 0], &[5, 10]);
        let r = Map::from(BasicMap::translation(&[1, 2]).restrict_domain(&dom));
        let c = r.transitive_closure();
        assert!(c.map.contains(&[0, 0], &[1, 2]));
        assert!(c.map.contains(&[0, 0], &[3, 6]));
        assert!(!c.map.contains(&[0, 0], &[2, 3]));
        if c.exact {
            // Paths must stay within steps of the domain.
            assert!(!c.map.contains(&[5, 10], &[6, 12]) || dom.contains(&[5, 10]));
        }
    }

    #[test]
    fn closure_empty_relation() {
        let r = Map::empty(2, 2);
        let c = r.transitive_closure();
        assert!(c.exact);
        assert!(c.map.is_empty());
    }

    #[test]
    fn overapprox_is_superset_of_truth() {
        // Random-ish finite relation; compare closure against brute-force
        // reachability.
        let pairs: Vec<(&[i64], &[i64])> = vec![
            (&[0], &[2]),
            (&[2], &[3]),
            (&[3], &[7]),
            (&[1], &[3]),
            (&[7], &[9]),
        ];
        let r = Map::from_pairs(1, 1, pairs.clone());
        let c = r.transitive_closure();
        // Brute force reachability on 0..=9.
        let mut reach = [[false; 10]; 10];
        for (a, b) in &pairs {
            reach[a[0] as usize][b[0] as usize] = true;
        }
        for k in 0..10 {
            for i in 0..10 {
                for j in 0..10 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for i in 0..10i64 {
            for j in 0..10i64 {
                if reach[i as usize][j as usize] {
                    assert!(c.map.contains(&[i], &[j]), "missing {i} -> {j}");
                } else if c.exact {
                    assert!(!c.map.contains(&[i], &[j]), "extra {i} -> {j}");
                }
            }
        }
    }

    #[test]
    fn closure_contains_relation() {
        // R ⊆ R⁺ for both exact and mixed-step relations.
        for r in [
            bounded_shift(1, 0, 9),
            bounded_shift(1, 0, 9).union(&bounded_shift(3, 0, 7)),
        ] {
            let c = r.transitive_closure();
            assert!(r.is_subset(&c.map));
        }
    }

    #[test]
    fn closure_is_transitive() {
        // R⁺ ∘ R⁺ ⊆ R⁺: two closure steps never leave the closure.
        let r = bounded_shift(1, 0, 9);
        let c = r.transitive_closure();
        let two_steps = c.map.compose(&c.map).unwrap();
        assert!(two_steps.is_subset(&c.map));
    }

    #[test]
    fn closure_unfolding_identity() {
        // R⁺ == R ∪ (R ∘ R⁺) for an exact closure.
        let r = bounded_shift(1, 0, 9);
        let c = r.transitive_closure();
        assert!(c.exact);
        let unfolded = r.union(&r.compose(&c.map).unwrap());
        assert!(unfolded.is_equal(&c.map));
    }

    #[test]
    fn closure_is_idempotent() {
        // (R⁺)⁺ == R⁺, and closing a closed relation stays exact.
        let r = bounded_shift(1, 0, 9);
        let c = r.transitive_closure();
        let cc = c.map.transitive_closure();
        assert!(cc.exact);
        assert!(cc.map.is_equal(&c.map));
    }

    #[test]
    fn closure_commutes_with_inverse() {
        // (R⁻¹)⁺ == (R⁺)⁻¹.
        let r = bounded_shift(2, 0, 8);
        let closed_inverse = r.inverse().transitive_closure();
        let inverse_closed = r.transitive_closure().map.inverse();
        assert!(closed_inverse.map.is_equal(&inverse_closed));
    }
}
