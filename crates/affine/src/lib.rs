//! QRANE-style affine lifting and transitive-dependence analysis.
//!
//! This crate implements the paper's §III-C/§IV pipeline:
//!
//! 1. **Lifting** ([`lift_interactions`]): the two-qubit interaction trace
//!    of a circuit is grouped into *macro-gates* — runs whose time stamps
//!    and qubit operands follow affine progressions `a·i + b` (the QRANE
//!    representation: iteration domain, access relations, schedule);
//! 2. **Dependence relation** ([`dependence_map`]): all pairs of gate
//!    instances that share a qubit, `t₁ < t₂`, expressed as a Presburger
//!    relation on the 1-D time space (the paper's `Rdep` mapped onto the
//!    schedule);
//! 3. **Transitive closure + weights** ([`DependenceAnalysis`]): `R⁺` via
//!    [`presburger::Map::transitive_closure`] and the per-gate dependence
//!    weight `ω(g) = card{ h | (g,h) ∈ R⁺ }` (Eq. 1), with `card` provided
//!    by the exact point counter (the Barvinok substitute).
//!
//! Irregular circuits that defeat the affine representation (poor
//! compression, inexact closure) automatically fall back to exact bitset
//! reachability on the concrete dependence DAG — the same semantics, and
//! the oracle the affine path is cross-validated against in tests.
//!
//! In the mapping stack, [`DependenceAnalysis`] is the typed artifact the
//! `qlosure` crate's `DependenceWeightsPass` produces for the pass
//! pipeline; [`DependenceAnalysis::describe`] renders the one-line
//! summary used in per-pass reports.
//!
//! # Example
//!
//! ```
//! use affine::{DependenceAnalysis, WeightMode};
//! use circuit::Circuit;
//!
//! // A linear-nearest-neighbour sweep: perfectly affine.
//! let mut c = Circuit::new(8);
//! for i in 0..7 {
//!     c.cx(i, i + 1);
//! }
//! let analysis = DependenceAnalysis::new(&c, WeightMode::Affine);
//! // Gate i blocks all later gates in the chain.
//! assert_eq!(analysis.weight(0), 6);
//! assert_eq!(analysis.weight(6), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deps;
mod lift;
mod weights;

pub use deps::dependence_map;
pub use lift::{lift_interactions, AffineFn, Interaction, Lifting, MacroGate};
pub use weights::{DependenceAnalysis, WeightMode, WeightPath};
