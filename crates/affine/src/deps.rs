//! The polyhedral dependence relation `Rdep` on the time space.

use crate::lift::{Lifting, MacroGate};
use presburger::{BasicMap, Constraint, LinearExpr, Map};

/// Builds the paper's dependence relation `Rdep` as a Presburger relation
/// `{ [t₁] → [t₂] }` on the 1-D logical time space: gate instances at times
/// `t₁ < t₂` that share a qubit operand (flow, anti, output and read
/// conflicts alike — all have the same transitive closure).
///
/// One basic relation is emitted per (statement, statement, operand,
/// operand) combination whose operand value ranges intersect; each encodes
///
/// * membership of `t₁` / `t₂` in the statements' strided time domains
///   (bounds plus congruence constraints),
/// * the precedence `t₁ < t₂`, and
/// * the affine qubit-coincidence equation scaled through both schedules.
pub fn dependence_map(lifting: &Lifting) -> Map {
    let mut parts: Vec<BasicMap> = Vec::new();
    for s1 in &lifting.statements {
        for s2 in &lifting.statements {
            for (k, f1) in [(0, &s1.op_a), (1, &s1.op_b)] {
                for (m, f2) in [(0, &s2.op_a), (1, &s2.op_b)] {
                    let _ = (k, m);
                    let (lo1, hi1) = f1.range(s1.n);
                    let (lo2, hi2) = f2.range(s2.n);
                    if hi1 < lo2 || hi2 < lo1 {
                        continue; // operand ranges cannot coincide
                    }
                    if let Some(bm) = pair_relation(s1, f1, s2, f2) {
                        parts.push(bm);
                    }
                }
            }
        }
    }
    Map::from_parts(1, 1, parts)
}

/// The dependence pieces between one operand of `s1` and one of `s2`.
fn pair_relation(
    s1: &MacroGate,
    f1: &crate::lift::AffineFn,
    s2: &MacroGate,
    f2: &crate::lift::AffineFn,
) -> Option<BasicMap> {
    // Variables: (t1, t2).
    let n = 2;
    let t1 = LinearExpr::var(n, 0);
    let t2 = LinearExpr::var(n, 1);
    let mut cs: Vec<Constraint> = Vec::new();
    // t1 in dom(s1): base <= t1 <= base + dt*(n-1), t1 ≡ base (mod dt).
    domain_constraints(&mut cs, &t1, s1);
    domain_constraints(&mut cs, &t2, s2);
    // Precedence.
    cs.push(Constraint::ge2(t2.clone(), &t1.clone().plus_const(1)));
    // Qubit coincidence: f1(i1) = f2(i2) with i = (t - base) / dt.
    // Scale by dt1*dt2 (both >= 1):
    //   a1*dt2*(t1 - b1t) + c1*dt1*dt2 = a2*dt1*(t2 - b2t) + c2*dt1*dt2
    let (dt1, dt2) = (s1.time.step.max(1), s2.time.step.max(1));
    let lhs = t1
        .clone()
        .plus_const(-s1.time.base)
        .scale(f1.step * dt2)
        .plus_const(f1.base * dt1 * dt2);
    let rhs = t2
        .clone()
        .plus_const(-s2.time.base)
        .scale(f2.step * dt1)
        .plus_const(f2.base * dt1 * dt2);
    cs.push(Constraint::eq2(lhs, &rhs));
    let bm = BasicMap::new(1, 1, cs);
    (!bm.wrapped().is_obviously_empty()).then_some(bm)
}

fn domain_constraints(cs: &mut Vec<Constraint>, t: &LinearExpr, s: &MacroGate) {
    let dt = s.time.step.max(1);
    let first = s.time.base;
    let last = s.time.at(s.n - 1);
    cs.push(Constraint::ge(t.clone().plus_const(-first)));
    cs.push(Constraint::ge(t.neg().plus_const(last)));
    if dt >= 2 {
        cs.push(Constraint::modulo(t.clone().plus_const(-first), dt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::lift_interactions;
    use circuit::Circuit;

    /// Brute-force conflict relation on the interaction trace.
    fn brute_rdep(c: &Circuit) -> Vec<(i64, i64)> {
        let itx: Vec<(u32, u32)> = c.interactions().map(|(_, a, b)| (a, b)).collect();
        let mut out = Vec::new();
        for i in 0..itx.len() {
            for j in i + 1..itx.len() {
                let (a1, b1) = itx[i];
                let (a2, b2) = itx[j];
                if a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2 {
                    out.push((i as i64, j as i64));
                }
            }
        }
        out
    }

    fn check_exact(c: &Circuit) {
        let l = lift_interactions(c);
        let m = dependence_map(&l);
        let expected = brute_rdep(c);
        let n = l.n_interactions() as i64;
        for t1 in 0..n {
            for t2 in 0..n {
                let inside = m.contains(&[t1], &[t2]);
                let truth = expected.contains(&(t1, t2));
                assert_eq!(inside, truth, "({t1}, {t2}) in {}-gate circuit", n);
            }
        }
    }

    #[test]
    fn chain_dependences_exact() {
        let mut c = Circuit::new(6);
        for i in 0..5 {
            c.cx(i, i + 1);
        }
        check_exact(&c);
    }

    #[test]
    fn strided_access_dependences_exact() {
        // cx(i, 2i+1): instances share qubits sparsely (q1 of instance 3 is
        // 3 = q2 of instance 1).
        let mut c = Circuit::new(16);
        for i in 0..6u32 {
            c.cx(i, 2 * i + 1);
        }
        check_exact(&c);
    }

    #[test]
    fn disjoint_statements_have_no_cross_deps() {
        let mut c = Circuit::new(10);
        for i in 0..3u32 {
            c.cx(i, i + 1); // block on qubits 0..4
        }
        for i in 5..8u32 {
            c.cx(i, i + 1); // block on qubits 5..9
        }
        check_exact(&c);
        let l = lift_interactions(&c);
        let m = dependence_map(&l);
        // No dependence may cross the two blocks.
        assert!(!m.contains(&[0], &[3]));
        assert!(!m.contains(&[2], &[5]));
    }

    #[test]
    fn interleaved_statements_exact() {
        let mut c = Circuit::new(9);
        for i in 0..3u32 {
            c.cx(i, i + 1);
            c.cx(5 + i, 4 + i);
        }
        check_exact(&c);
    }

    #[test]
    fn reversed_sweep_dependences_exact() {
        let mut c = Circuit::new(6);
        for i in (0..5u32).rev() {
            c.cx(i, i + 1);
        }
        check_exact(&c);
    }

    #[test]
    fn irregular_circuit_still_exact() {
        let mut c = Circuit::new(8);
        c.cx(0, 5);
        c.cx(3, 1);
        c.cx(5, 3);
        c.cx(1, 7);
        c.cx(0, 3);
        check_exact(&c);
    }
}
