//! Dependence weights ω via transitive closure.

use crate::deps::dependence_map;
use crate::lift::lift_interactions;
use circuit::{Circuit, DependenceGraph, Gate};
use presburger::Set;

/// Which engine computes the ω weights.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightMode {
    /// Decide per circuit: use the affine path when lifting finds enough
    /// structure (compression ≥ 4 and few statements), otherwise the graph
    /// path.
    #[default]
    Auto,
    /// Force the polyhedral path (lift → `Rdep` → `R⁺` → `card`).
    Affine,
    /// Force exact bitset reachability on the concrete dependence DAG.
    Graph,
}

/// Which engine actually produced the weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightPath {
    /// Polyhedral closure, exact.
    AffineExact,
    /// Polyhedral closure, flagged over-approximation (weights are an
    /// upper bound on the true transitive successor counts).
    AffineOverApproximate,
    /// Concrete bitset reachability (always exact).
    Graph,
}

/// Per-gate dependence weights `ω(g)` over the two-qubit interaction trace
/// of a circuit (the paper's Eq. 1).
///
/// Routing only consults weights of two-qubit gates; weights are indexed by
/// *gate index* in the original circuit (non-two-qubit gates weigh 0).
#[derive(Clone, Debug)]
pub struct DependenceAnalysis {
    weights: Vec<u64>,
    path: WeightPath,
    compression: f64,
    n_statements: usize,
}

impl DependenceAnalysis {
    /// Analyzes `circuit` under the given mode.
    pub fn new(circuit: &Circuit, mode: WeightMode) -> Self {
        let lifting = lift_interactions(circuit);
        let compression = lifting.compression();
        let n_statements = lifting.statements.len();
        let try_affine = match mode {
            WeightMode::Affine => true,
            WeightMode::Graph => false,
            WeightMode::Auto => compression >= 4.0 && n_statements <= 256,
        };
        if try_affine {
            if let Some((weights, exact)) = affine_weights(circuit, &lifting) {
                return DependenceAnalysis {
                    weights,
                    path: if exact {
                        WeightPath::AffineExact
                    } else {
                        WeightPath::AffineOverApproximate
                    },
                    compression,
                    n_statements,
                };
            }
        }
        DependenceAnalysis {
            weights: graph_weights(circuit),
            path: WeightPath::Graph,
            compression,
            n_statements,
        }
    }

    /// ω of the gate at `gate_index` (0 for non-two-qubit gates).
    pub fn weight(&self, gate_index: u32) -> u64 {
        self.weights.get(gate_index as usize).copied().unwrap_or(0)
    }

    /// All weights, indexed by gate index.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Which engine produced the weights.
    pub fn path(&self) -> WeightPath {
        self.path
    }

    /// Lifting compression ratio (interactions per macro-gate).
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Number of macro-gates the lifter produced.
    pub fn n_statements(&self) -> usize {
        self.n_statements
    }

    /// Total weight mass `Σ ω(g)` — a cheap integrity metric for reports
    /// (two analyses of the same circuit with the same mode always agree).
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// One-line artifact summary for pass-pipeline reports: which engine
    /// produced the weights, the lifting compression, statement count and
    /// total weight mass.
    pub fn describe(&self) -> String {
        let path = match self.path {
            WeightPath::AffineExact => "affine-exact",
            WeightPath::AffineOverApproximate => "affine-overapprox",
            WeightPath::Graph => "graph",
        };
        format!(
            "weights[{path}] compression={:.1} statements={} Σω={}",
            self.compression,
            self.n_statements,
            self.total_weight()
        )
    }
}

/// The polyhedral path: `ω(t) = card(R⁺({t}))` per interaction time.
fn affine_weights(circuit: &Circuit, lifting: &crate::lift::Lifting) -> Option<(Vec<u64>, bool)> {
    let rdep = dependence_map(lifting);
    if rdep.parts().len() > 512 {
        return None; // closure over this many disjuncts will not verify
    }
    let closure = rdep.transitive_closure();
    let mut weights = vec![0u64; circuit.gates().len()];
    for (t, itx) in lifting.interactions.iter().enumerate() {
        let singleton = Set::from_points(1, std::iter::once([t as i64].as_slice()));
        let successors = closure.map.apply(&singleton).ok()?;
        weights[itx.gate as usize] = successors.count_points_checked()?;
    }
    Some((weights, closure.exact))
}

/// The concrete path: bitset reachability over the two-qubit interaction
/// DAG.
fn graph_weights(circuit: &Circuit) -> Vec<u64> {
    // Build a shadow circuit holding only the two-qubit gates so that the
    // DAG's transitive counts line up with interaction indices.
    let mut shadow = Circuit::new(circuit.n_qubits());
    let mut gate_of: Vec<u32> = Vec::new();
    for (gate, a, b) in circuit.interactions() {
        shadow.push(Gate::two_q(circuit.gates()[gate].kind.clone(), a, b));
        gate_of.push(gate as u32);
    }
    let dag = DependenceGraph::new(&shadow);
    let counts = dag.transitive_successor_counts();
    let mut weights = vec![0u64; circuit.gates().len()];
    for (i, &gate) in gate_of.iter().enumerate() {
        weights[gate as usize] = counts[i];
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u32) -> Circuit {
        let mut c = Circuit::new(n as usize + 1);
        for i in 0..n {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn graph_weights_on_chain() {
        let c = chain(5);
        let a = DependenceAnalysis::new(&c, WeightMode::Graph);
        assert_eq!(a.path(), WeightPath::Graph);
        assert_eq!(a.weights(), &[4, 3, 2, 1, 0]);
    }

    #[test]
    fn affine_weights_match_graph_on_chain() {
        let c = chain(7);
        let graph = DependenceAnalysis::new(&c, WeightMode::Graph);
        let affine = DependenceAnalysis::new(&c, WeightMode::Affine);
        assert!(matches!(
            affine.path(),
            WeightPath::AffineExact | WeightPath::AffineOverApproximate
        ));
        if affine.path() == WeightPath::AffineExact {
            assert_eq!(affine.weights(), graph.weights());
        } else {
            // Over-approximation must dominate the exact counts.
            for (o, e) in affine.weights().iter().zip(graph.weights()) {
                assert!(o >= e);
            }
        }
    }

    #[test]
    fn affine_weights_match_graph_on_disjoint_blocks() {
        let mut c = Circuit::new(12);
        for i in 0..5u32 {
            c.cx(i, i + 1);
        }
        for i in 6..11u32 {
            c.cx(i, i + 1);
        }
        let graph = DependenceAnalysis::new(&c, WeightMode::Graph);
        let affine = DependenceAnalysis::new(&c, WeightMode::Affine);
        for g in 0..c.gates().len() as u32 {
            assert!(
                affine.weight(g) >= graph.weight(g),
                "gate {g}: affine {} < graph {}",
                affine.weight(g),
                graph.weight(g)
            );
        }
        if affine.path() == WeightPath::AffineExact {
            assert_eq!(affine.weights(), graph.weights());
        }
    }

    #[test]
    fn single_qubit_gates_weigh_zero() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.h(2);
        let a = DependenceAnalysis::new(&c, WeightMode::Graph);
        assert_eq!(a.weight(0), 0);
        assert_eq!(a.weight(2), 0);
    }

    #[test]
    fn auto_mode_picks_graph_for_irregular() {
        // Pseudo-random interactions: compression stays low.
        let mut c = Circuit::new(16);
        let mut s = 1u64;
        for _ in 0..60 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (s >> 33) % 16;
            let b = (s >> 13) % 16;
            if a != b {
                c.cx(a as u32, b as u32);
            }
        }
        let a = DependenceAnalysis::new(&c, WeightMode::Auto);
        assert_eq!(a.path(), WeightPath::Graph);
        assert!(a.compression() < 4.0);
    }

    #[test]
    fn auto_mode_picks_affine_for_regular() {
        let c = chain(40);
        let a = DependenceAnalysis::new(&c, WeightMode::Auto);
        assert!(matches!(
            a.path(),
            WeightPath::AffineExact | WeightPath::AffineOverApproximate
        ));
        assert!(a.compression() >= 4.0);
        assert_eq!(a.n_statements(), 1);
    }

    #[test]
    fn describe_names_the_engine_and_totals() {
        let c = chain(5);
        let a = DependenceAnalysis::new(&c, WeightMode::Graph);
        let line = a.describe();
        assert!(line.starts_with("weights[graph]"), "got: {line}");
        assert!(line.contains("Σω=10"), "4+3+2+1+0 = 10; got: {line}");
        assert_eq!(a.total_weight(), 10);
        let affine = DependenceAnalysis::new(&c, WeightMode::Affine);
        assert!(affine.describe().starts_with("weights[affine"));
    }

    #[test]
    fn weights_respect_eq1_semantics() {
        // Fan-out: gate 0 feeds two independent chains; its weight is the
        // total number of downstream gates.
        let mut c = Circuit::new(6);
        c.cx(0, 1); // g0
        c.cx(1, 2); // depends on g0
        c.cx(0, 3); // depends on g0
        c.cx(3, 4); // depends on g2
        let a = DependenceAnalysis::new(&c, WeightMode::Graph);
        assert_eq!(a.weight(0), 3);
        assert_eq!(a.weight(1), 0);
        assert_eq!(a.weight(2), 1);
        assert_eq!(a.weight(3), 0);
    }
}
