//! Lifting gate traces into macro-gates with affine access relations.

use circuit::Circuit;

/// A one-dimensional affine function `i ↦ base + step·i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineFn {
    /// Value at `i = 0`.
    pub base: i64,
    /// Increment per iteration.
    pub step: i64,
}

impl AffineFn {
    /// Evaluates the function.
    pub fn at(&self, i: i64) -> i64 {
        self.base + self.step * i
    }

    /// The value range over `0..n` as `(min, max)`.
    pub fn range(&self, n: i64) -> (i64, i64) {
        let last = self.at(n - 1);
        (self.base.min(last), self.base.max(last))
    }
}

/// One two-qubit interaction of a circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interaction {
    /// Index of the originating gate in the circuit's gate list.
    pub gate: u32,
    /// First operand (logical qubit).
    pub a: u32,
    /// Second operand (logical qubit).
    pub b: u32,
}

/// A macro-gate (QRANE "statement"): `n` gate instances whose logical time
/// and qubit operands follow affine progressions.
///
/// Instance `i ∈ [0, n)` executes at time `time.at(i)` and acts on qubits
/// `(op_a.at(i), op_b.at(i))` — the iteration domain, schedule, and access
/// relations of the affine representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacroGate {
    /// Trip count (`>= 1`).
    pub n: i64,
    /// Schedule: logical time of instance `i`.
    pub time: AffineFn,
    /// Access relation of the first operand.
    pub op_a: AffineFn,
    /// Access relation of the second operand.
    pub op_b: AffineFn,
    /// The concrete interaction indices covered, in iteration order.
    pub members: Vec<u32>,
}

/// The result of lifting a circuit's interaction trace.
#[derive(Clone, Debug)]
pub struct Lifting {
    /// The interaction trace (one entry per two-qubit gate, in order).
    /// Interaction `t` is the gate at logical time `t`.
    pub interactions: Vec<Interaction>,
    /// The macro-gates covering the trace, each member exactly once.
    pub statements: Vec<MacroGate>,
}

impl Lifting {
    /// Number of interactions (logical time steps).
    pub fn n_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// Compression ratio: interactions per macro-gate (1.0 = no structure
    /// found; higher = more affine regularity).
    pub fn compression(&self) -> f64 {
        if self.statements.is_empty() {
            1.0
        } else {
            self.interactions.len() as f64 / self.statements.len() as f64
        }
    }
}

/// Extracts the two-qubit interaction trace of `circuit` and groups it
/// into macro-gates.
///
/// Runs are committed only when **three** elements form an arithmetic
/// progression in time and in both operands (the same discipline trace
/// compressors use for stride detection). This lets interleaved statements
/// — e.g. two sweeps alternating gate by gate, or the period-`k` blocks a
/// decomposed adder produces — untangle correctly instead of adopting
/// accidental strides from a neighbouring statement. Established runs then
/// extend on exact prediction of `(t, a, b)`; elements that never find a
/// progression become singleton macro-gates.
///
/// Runs and unpaired singles expire once no element extended them within
/// `max_gap` interactions, bounding the interleaving window.
pub fn lift_interactions(circuit: &Circuit) -> Lifting {
    lift_with_gap(circuit, 24)
}

/// [`lift_interactions`] with an explicit interleaving window.
pub fn lift_with_gap(circuit: &Circuit, max_gap: usize) -> Lifting {
    let interactions: Vec<Interaction> = circuit
        .interactions()
        .map(|(gate, a, b)| Interaction {
            gate: gate as u32,
            a,
            b,
        })
        .collect();
    let max_gap = max_gap as i64;
    let mut runs: Vec<Run> = Vec::new();
    let mut singles: Vec<Single> = Vec::new();
    let mut closed: Vec<MacroGate> = Vec::new();
    for (t, itx) in interactions.iter().enumerate() {
        let t = t as i64;
        let (a, b) = (itx.a as i64, itx.b as i64);
        // 1. Extend an established run whose prediction matches exactly
        //    (most recent first).
        let mut placed = false;
        for run in runs.iter_mut().rev() {
            if run.predicts(t, a, b) {
                run.extend(t, a, b, itx.gate);
                placed = true;
                break;
            }
        }
        // 2. Commit a new run when (s2, s1, g) is a three-term progression.
        if !placed {
            'outer: for i in (0..singles.len()).rev() {
                let s1 = singles[i];
                let (dt, da, db) = (t - s1.t, a - s1.a, b - s1.b);
                if dt <= 0 {
                    continue;
                }
                for j in (0..singles.len()).rev() {
                    if j == i {
                        continue;
                    }
                    let s2 = singles[j];
                    if s1.t - s2.t == dt && s1.a - s2.a == da && s1.b - s2.b == db {
                        let run = Run::commit(s2, s1, t, a, b, itx.gate, dt, da, db);
                        // Remove the two consumed singles (larger index first).
                        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                        singles.remove(hi);
                        singles.remove(lo);
                        runs.push(run);
                        placed = true;
                        break 'outer;
                    }
                }
            }
        }
        // 3. Otherwise remember the element as a single.
        if !placed {
            singles.push(Single {
                t,
                a,
                b,
                gate: itx.gate,
            });
        }
        // Expire runs and singles that fell out of the window.
        let mut i = 0;
        while i < runs.len() {
            if t - runs[i].last_time >= max_gap {
                closed.push(runs.swap_remove(i).into_macro_gate());
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < singles.len() {
            if t - singles[i].t >= max_gap {
                closed.push(singles.swap_remove(i).into_macro_gate());
            } else {
                i += 1;
            }
        }
    }
    closed.extend(runs.into_iter().map(Run::into_macro_gate));
    closed.extend(singles.into_iter().map(Single::into_macro_gate));
    // Deterministic order: by first time stamp.
    closed.sort_by_key(|m| m.time.base);
    Lifting {
        interactions,
        statements: closed,
    }
}

/// An element awaiting a progression partner.
#[derive(Clone, Copy, Debug)]
struct Single {
    t: i64,
    a: i64,
    b: i64,
    gate: u32,
}

impl Single {
    fn into_macro_gate(self) -> MacroGate {
        MacroGate {
            n: 1,
            time: AffineFn {
                base: self.t,
                step: 1,
            },
            op_a: AffineFn {
                base: self.a,
                step: 0,
            },
            op_b: AffineFn {
                base: self.b,
                step: 0,
            },
            members: vec![self.gate],
        }
    }
}

/// A committed run (length >= 3, strides fixed).
#[derive(Debug)]
struct Run {
    first_time: i64,
    last_time: i64,
    dt: i64,
    first_a: i64,
    first_b: i64,
    last_a: i64,
    last_b: i64,
    da: i64,
    db: i64,
    members: Vec<u32>,
}

impl Run {
    #[allow(clippy::too_many_arguments)]
    fn commit(
        s2: Single,
        s1: Single,
        t: i64,
        a: i64,
        b: i64,
        gate: u32,
        dt: i64,
        da: i64,
        db: i64,
    ) -> Self {
        Run {
            first_time: s2.t,
            last_time: t,
            dt,
            first_a: s2.a,
            first_b: s2.b,
            last_a: a,
            last_b: b,
            da,
            db,
            members: vec![s2.gate, s1.gate, gate],
        }
    }

    fn predicts(&self, t: i64, a: i64, b: i64) -> bool {
        t == self.last_time + self.dt && a == self.last_a + self.da && b == self.last_b + self.db
    }

    fn extend(&mut self, t: i64, a: i64, b: i64, gate: u32) {
        self.last_time = t;
        self.last_a = a;
        self.last_b = b;
        self.members.push(gate);
    }

    fn into_macro_gate(self) -> MacroGate {
        let n = self.members.len() as i64;
        MacroGate {
            n,
            time: AffineFn {
                base: self.first_time,
                step: self.dt,
            },
            op_a: AffineFn {
                base: self.first_a,
                step: self.da,
            },
            op_b: AffineFn {
                base: self.first_b,
                step: self.db,
            },
            members: self.members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_chain_lifts_to_one_statement() {
        // cx(i, i+1) for i in 0..7: one macro-gate, strides (1, 1, 1).
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
        }
        let l = lift_interactions(&c);
        assert_eq!(l.statements.len(), 1);
        let s = &l.statements[0];
        assert_eq!(s.n, 7);
        assert_eq!(s.time, AffineFn { base: 0, step: 1 });
        assert_eq!(s.op_a, AffineFn { base: 0, step: 1 });
        assert_eq!(s.op_b, AffineFn { base: 1, step: 1 });
        assert!(l.compression() >= 7.0);
    }

    #[test]
    fn qrane_paper_example() {
        // The trace from the paper's §III-C: CX q[i], q[2i+1] for i in 0..4.
        let mut c = Circuit::new(8);
        c.cx(0, 1);
        c.cx(1, 3);
        c.cx(2, 5);
        c.cx(3, 7);
        let l = lift_interactions(&c);
        assert_eq!(l.statements.len(), 1);
        let s = &l.statements[0];
        assert_eq!(s.op_a, AffineFn { base: 0, step: 1 });
        assert_eq!(s.op_b, AffineFn { base: 1, step: 2 });
    }

    #[test]
    fn interleaved_statements_untangle() {
        // Two interleaved progressions: (0,1),(4,5),(1,2),(5,6),(2,3),(6,7)
        let mut c = Circuit::new(8);
        for i in 0..3u32 {
            c.cx(i, i + 1);
            c.cx(4 + i, 5 + i);
        }
        let l = lift_interactions(&c);
        assert_eq!(l.statements.len(), 2);
        for s in &l.statements {
            assert_eq!(s.n, 3);
            assert_eq!(s.time.step, 2);
        }
    }

    #[test]
    fn irregular_trace_degenerates_to_singletons() {
        let mut c = Circuit::new(8);
        c.cx(0, 5);
        c.cx(3, 1);
        c.cx(6, 2);
        c.cx(1, 7);
        let l = lift_interactions(&c);
        // No two consecutive pairs share strides beyond the free second
        // element, so runs stay length <= 2.
        assert!(l.statements.len() >= 2);
        let covered: usize = l.statements.iter().map(|s| s.members.len()).sum();
        assert_eq!(covered, 4);
    }

    #[test]
    fn members_partition_the_trace() {
        let mut c = Circuit::new(10);
        for i in 0..4 {
            c.cx(i, i + 1);
        }
        c.h(3);
        for i in 0..4 {
            c.cx(9 - i, 8 - i);
        }
        let l = lift_interactions(&c);
        let mut seen: Vec<u32> = l
            .statements
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        seen.sort_unstable();
        let expected: Vec<u32> = l.interactions.iter().map(|i| i.gate).collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn affine_fn_range() {
        let f = AffineFn { base: 10, step: -2 };
        assert_eq!(f.at(3), 4);
        assert_eq!(f.range(4), (4, 10));
        let g = AffineFn { base: 1, step: 3 };
        assert_eq!(g.range(3), (1, 7));
    }

    #[test]
    fn single_qubit_gates_are_transparent() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.h(0);
        c.h(1);
        c.cx(1, 2);
        c.h(2);
        c.cx(2, 3);
        let l = lift_interactions(&c);
        // Times are interaction positions, not raw gate indices.
        assert_eq!(l.n_interactions(), 3);
        assert_eq!(l.statements.len(), 1);
        assert_eq!(l.statements[0].time.step, 1);
    }
}
