//! OpenQASM 2.0 front-end for the Qlosure qubit mapper.
//!
//! The Qlosure paper consumes circuits in their QASM representation
//! (Cross et al., *Open quantum assembly language*). This crate provides a
//! self-contained lexer, parser, abstract syntax tree and emitter for the
//! OpenQASM 2.0 subset exercised by the QUEKO and QASMBench workloads:
//!
//! * `OPENQASM 2.0;` headers and `include "qelib1.inc";` (resolved against
//!   a built-in copy of the standard gate library);
//! * `qreg` / `creg` declarations;
//! * gate applications with optional parameter expressions (`rz(pi/4) q[0];`);
//! * `measure`, `barrier`, `reset`;
//! * user-defined `gate` bodies (recorded and expandable).
//!
//! # Example
//!
//! ```
//! use qasm::parse;
//!
//! let src = r#"
//! OPENQASM 2.0;
//! include "qelib1.inc";
//! qreg q[3];
//! creg c[3];
//! h q[0];
//! cx q[0], q[1];
//! cx q[1], q[2];
//! measure q -> c;
//! "#;
//! let program = parse(src)?;
//! assert_eq!(program.qubit_count(), 3);
//! assert_eq!(program.instructions().len(), 6); // h, cx, cx, 3x measure
//! # Ok::<(), qasm::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod emit;
mod lexer;
mod parser;

pub use ast::{GateDecl, Instruction, Program, QubitRef};
pub use emit::emit;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, ParseError};
