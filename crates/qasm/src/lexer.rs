//! Tokenizer for OpenQASM 2.0 source text.

use std::fmt;

/// The kind of a lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`qreg`, `cx`, `measure`, ...).
    Ident(String),
    /// An unsigned integer literal.
    Int(u64),
    /// A floating-point literal.
    Real(f64),
    /// A double-quoted string literal (contents without quotes).
    Str(String),
    /// `OPENQASM` header keyword (case-sensitive per the spec).
    OpenQasm,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semicolon,
    /// `,`.
    Comma,
    /// `->`.
    Arrow,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `^`.
    Caret,
    /// `==`.
    EqEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Real(v) => write!(f, "real `{v}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::OpenQasm => write!(f, "`OPENQASM`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: usize,
}

/// A streaming tokenizer over QASM source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the entire input, ending with an [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a message plus line number for unrecognized characters or
    /// malformed literals.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (String, usize)> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, (String, usize)> {
        self.skip_trivia();
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
            });
        };
        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'^' => {
                self.bump();
                TokenKind::Caret
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    return Err(("expected `==`".into(), line));
                }
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(c) => s.push(c as char),
                        None => return Err(("unterminated string".into(), line)),
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() || c == b'.' => self.lex_number(line)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s == "OPENQASM" {
                    TokenKind::OpenQasm
                } else {
                    TokenKind::Ident(s)
                }
            }
            other => {
                return Err((format!("unexpected character `{}`", other as char), line));
            }
        };
        Ok(Token { kind, line })
    }

    fn lex_number(&mut self, line: usize) -> Result<TokenKind, (String, usize)> {
        let start = self.pos;
        let mut is_real = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    is_real = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_real = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        if is_real {
            text.parse::<f64>()
                .map(TokenKind::Real)
                .map_err(|e| (format!("bad real literal `{text}`: {e}"), line))
        } else {
            text.parse::<u64>()
                .map(TokenKind::Int)
                .map_err(|e| (format!("bad integer literal `{text}`: {e}"), line))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_header() {
        assert_eq!(
            kinds("OPENQASM 2.0;"),
            vec![
                TokenKind::OpenQasm,
                TokenKind::Real(2.0),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_gate_application() {
        assert_eq!(
            kinds("cx q[0], q[1];"),
            vec![
                TokenKind::Ident("cx".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::RBracket,
                TokenKind::Comma,
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(1),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_minus() {
        assert_eq!(
            kinds("measure q -> c; rz(-1.5) q[0];")[4],
            TokenKind::Semicolon
        );
        let ks = kinds("a -> b - c");
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Minus));
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let toks = Lexer::new("// header\nh q[0];\n// end\ncx q[0], q[1];")
            .tokenize()
            .unwrap();
        assert_eq!(toks[0].line, 2);
        let cx = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("cx".into()))
            .unwrap();
        assert_eq!(cx.line, 4);
    }

    #[test]
    fn lexes_scientific_notation() {
        assert_eq!(kinds("1.5e-3")[0], TokenKind::Real(0.0015));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Lexer::new("h q[0]; @").tokenize().is_err());
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
    }
}
