//! OpenQASM 2.0 emission.

use crate::ast::{Instruction, Program};
use std::fmt::Write as _;

/// Renders a [`Program`] back to OpenQASM 2.0 source text.
///
/// The output always carries the standard header and a `qelib1.inc` include;
/// gate declarations are not re-emitted (programs are expected to be
/// expanded to primitive gates before serialization — see
/// [`Program::expanded`]).
pub fn emit(program: &Program) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    for (name, size) in program.qregs() {
        let _ = writeln!(out, "qreg {name}[{size}];");
    }
    for (name, size) in program.cregs() {
        let _ = writeln!(out, "creg {name}[{size}];");
    }
    for instr in program.instructions() {
        emit_instruction(&mut out, instr);
    }
    out
}

fn emit_instruction(out: &mut String, instr: &Instruction) {
    match instr {
        Instruction::Gate {
            name,
            params,
            qubits,
            condition,
        } => {
            if let Some((creg, value)) = condition {
                let _ = write!(out, "if ({creg} == {value}) ");
            }
            let _ = write!(out, "{name}");
            if !params.is_empty() {
                let rendered: Vec<String> = params.iter().map(|p| format_param(*p)).collect();
                let _ = write!(out, "({})", rendered.join(", "));
            }
            let operands: Vec<String> = qubits.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, " {};", operands.join(", "));
        }
        Instruction::Measure { qubit, bit } => {
            let _ = writeln!(out, "measure {qubit} -> {}[{}];", bit.0, bit.1);
        }
        Instruction::Barrier(qs) => {
            let operands: Vec<String> = qs.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "barrier {};", operands.join(", "));
        }
        Instruction::Reset(q) => {
            let _ = writeln!(out, "reset {q};");
        }
    }
}

/// Formats a parameter, preferring exact fractions of π for readability.
fn format_param(value: f64) -> String {
    let pi = std::f64::consts::PI;
    for denom in [1i32, 2, 3, 4, 6, 8, 16, 32] {
        for num in -32..=32i32 {
            if num == 0 {
                continue;
            }
            let candidate = pi * f64::from(num) / f64::from(denom);
            if (candidate - value).abs() < 1e-12 {
                return match (num, denom) {
                    (1, 1) => "pi".to_string(),
                    (-1, 1) => "-pi".to_string(),
                    (n, 1) => format!("{n}*pi"),
                    (1, d) => format!("pi/{d}"),
                    (-1, d) => format!("-pi/{d}"),
                    (n, d) => format!("{n}*pi/{d}"),
                };
            }
        }
    }
    if value == 0.0 {
        "0".to_string()
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn round_trip_simple_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                   h q[0];\ncx q[0], q[1];\nrz(pi/4) q[2];\nbarrier q[0], q[1], q[2];\n\
                   measure q[0] -> c[0];\nreset q[1];\n";
        let p1 = parse(src).unwrap();
        let emitted = emit(&p1);
        let p2 = parse(&emitted).unwrap();
        assert_eq!(p1.instructions(), p2.instructions());
        assert_eq!(p1.qregs(), p2.qregs());
    }

    #[test]
    fn pi_fractions_render_exactly() {
        assert_eq!(format_param(std::f64::consts::PI), "pi");
        assert_eq!(format_param(-std::f64::consts::PI), "-pi");
        assert_eq!(format_param(std::f64::consts::FRAC_PI_2), "pi/2");
        assert_eq!(format_param(std::f64::consts::PI * 3.0 / 4.0), "3*pi/4");
        assert_eq!(format_param(0.0), "0");
        assert_eq!(format_param(0.37), "0.37");
    }

    #[test]
    fn conditions_survive_round_trip() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n\
                   if (c == 1) x q[0];\n";
        let p1 = parse(src).unwrap();
        let p2 = parse(&emit(&p1)).unwrap();
        assert_eq!(p1.instructions(), p2.instructions());
    }
}
