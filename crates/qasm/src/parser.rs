//! Recursive-descent parser for OpenQASM 2.0.

use crate::ast::{Expr, GateBodyStmt, GateDecl, Instruction, Program, QubitRef};
use crate::lexer::{Lexer, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Parse failure with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line number of the failure.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Names and arities of the `qelib1.inc` standard library plus the OpenQASM
/// builtins; used to validate applications of gates that have no local
/// declaration. Maps name to `(n_params, n_qubits)`.
fn qelib1_signatures() -> HashMap<&'static str, (usize, usize)> {
    let table: &[(&str, usize, usize)] = &[
        ("U", 3, 1),
        ("CX", 0, 2),
        ("u3", 3, 1),
        ("u2", 2, 1),
        ("u1", 1, 1),
        ("u", 3, 1),
        ("p", 1, 1),
        ("cx", 0, 2),
        ("id", 0, 1),
        ("x", 0, 1),
        ("y", 0, 1),
        ("z", 0, 1),
        ("h", 0, 1),
        ("s", 0, 1),
        ("sdg", 0, 1),
        ("t", 0, 1),
        ("tdg", 0, 1),
        ("sx", 0, 1),
        ("sxdg", 0, 1),
        ("rx", 1, 1),
        ("ry", 1, 1),
        ("rz", 1, 1),
        ("cz", 0, 2),
        ("cy", 0, 2),
        ("ch", 0, 2),
        ("swap", 0, 2),
        ("ccx", 0, 3),
        ("cswap", 0, 3),
        ("crx", 1, 2),
        ("cry", 1, 2),
        ("crz", 1, 2),
        ("cu1", 1, 2),
        ("cp", 1, 2),
        ("cu3", 3, 2),
        ("cu", 4, 2),
        ("rxx", 1, 2),
        ("ryy", 1, 2),
        ("rzz", 1, 2),
        ("rccx", 0, 3),
        ("rc3x", 0, 4),
        ("c3x", 0, 4),
        ("c4x", 0, 5),
        ("csx", 0, 2),
    ];
    table.iter().map(|&(n, p, q)| (n, (p, q))).collect()
}

/// Parses OpenQASM 2.0 source into a [`Program`].
///
/// Register-level gate applications (`h q;`, `cx a, b;`,
/// `measure q -> c;`) are broadcast into per-qubit instructions.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number for syntax errors, unknown
/// gates, arity mismatches and out-of-range register indices.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src)
        .tokenize()
        .map_err(|(m, l)| ParseError::new(m, l))?;
    Parser {
        tokens,
        pos: 0,
        program: Program::new(),
        qelib: qelib1_signatures(),
    }
    .parse_program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
    qelib: HashMap<&'static str, (usize, usize)>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(ParseError::new(
                format!("expected {kind}, found {}", t.kind),
                t.line,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize), ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.line)),
            other => Err(ParseError::new(
                format!("expected identifier, found {other}"),
                t.line,
            )),
        }
    }

    fn expect_int(&mut self) -> Result<(u64, usize), ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) => Ok((v, t.line)),
            other => Err(ParseError::new(
                format!("expected integer, found {other}"),
                t.line,
            )),
        }
    }

    fn parse_program(mut self) -> Result<Program, ParseError> {
        // Optional header.
        if self.peek().kind == TokenKind::OpenQasm {
            self.bump();
            let t = self.bump();
            match t.kind {
                TokenKind::Real(_) | TokenKind::Int(_) => {}
                other => {
                    return Err(ParseError::new(
                        format!("expected version number, found {other}"),
                        t.line,
                    ))
                }
            }
            self.expect(&TokenKind::Semicolon)?;
        }
        while self.peek().kind != TokenKind::Eof {
            self.parse_statement()?;
        }
        Ok(self.program)
    }

    fn parse_statement(&mut self) -> Result<(), ParseError> {
        let t = self.peek().clone();
        let TokenKind::Ident(word) = &t.kind else {
            return Err(ParseError::new(
                format!("expected statement, found {}", t.kind),
                t.line,
            ));
        };
        match word.as_str() {
            "include" => {
                self.bump();
                let inc = self.bump();
                match inc.kind {
                    TokenKind::Str(name) if name == "qelib1.inc" => {}
                    TokenKind::Str(name) => {
                        return Err(ParseError::new(
                            format!(
                                "cannot resolve include \"{name}\" (only qelib1.inc is built in)"
                            ),
                            inc.line,
                        ));
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("expected string after include, found {other}"),
                            inc.line,
                        ))
                    }
                }
                self.expect(&TokenKind::Semicolon)?;
            }
            "qreg" | "creg" => {
                let is_q = word == "qreg";
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let (size, line) = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                if size == 0 {
                    return Err(ParseError::new("register size must be positive", line));
                }
                if is_q {
                    self.program.add_qreg(name, size as usize);
                } else {
                    self.program.add_creg(name, size as usize);
                }
            }
            "gate" => self.parse_gate_decl(false)?,
            "opaque" => self.parse_gate_decl(true)?,
            "barrier" => {
                self.bump();
                let args = self.parse_argument_list()?;
                self.expect(&TokenKind::Semicolon)?;
                let mut qubits = Vec::new();
                for arg in args {
                    qubits.extend(self.broadcast_one(&arg)?);
                }
                self.program.push(Instruction::Barrier(qubits));
            }
            "measure" => {
                self.bump();
                let src = self.parse_argument()?;
                self.expect(&TokenKind::Arrow)?;
                let dst = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon)?;
                self.push_measure(&src, &dst)?;
            }
            "reset" => {
                self.bump();
                let arg = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon)?;
                for q in self.broadcast_one(&arg)? {
                    self.program.push(Instruction::Reset(q));
                }
            }
            "if" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let (creg, _) = self.expect_ident()?;
                self.expect(&TokenKind::EqEq)?;
                let (value, _) = self.expect_int()?;
                self.expect(&TokenKind::RParen)?;
                // The conditioned operation must be a gate application or
                // measurement; parse it and attach the condition.
                let before = self.program.instructions().len();
                self.parse_statement()?;
                let after = self.program.instructions().len();
                for i in before..after {
                    // Conditions attach to gates; other ops keep them
                    // implicit (mapping ignores classical control anyway).
                    if let Instruction::Gate { condition, .. } =
                        &mut self.program_instruction_mut(i)
                    {
                        *condition = Some((creg.clone(), value));
                    }
                }
            }
            _ => self.parse_gate_application()?,
        }
        Ok(())
    }

    fn program_instruction_mut(&mut self, i: usize) -> &mut Instruction {
        // Small helper because Program hides its fields.
        // Safe: index comes from instructions().len() bounds.
        self.program.instruction_mut(i)
    }

    fn parse_gate_decl(&mut self, opaque: bool) -> Result<(), ParseError> {
        self.bump(); // gate | opaque
        let (name, _) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    let (p, _) = self.expect_ident()?;
                    params.push(p);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut qubits = Vec::new();
        loop {
            let (q, _) = self.expect_ident()?;
            qubits.push(q);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        let body = if opaque {
            self.expect(&TokenKind::Semicolon)?;
            None
        } else {
            self.expect(&TokenKind::LBrace)?;
            let mut body = Vec::new();
            while self.peek().kind != TokenKind::RBrace {
                body.push(self.parse_gate_body_stmt()?);
            }
            self.expect(&TokenKind::RBrace)?;
            Some(body)
        };
        self.program.add_gate_decl(GateDecl {
            name,
            params,
            qubits,
            body,
        });
        Ok(())
    }

    fn parse_gate_body_stmt(&mut self) -> Result<GateBodyStmt, ParseError> {
        let (name, line) = self.expect_ident()?;
        if name == "barrier" {
            let mut qs = Vec::new();
            loop {
                let (q, _) = self.expect_ident()?;
                qs.push(q);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::Semicolon)?;
            return Ok(GateBodyStmt::Barrier(qs));
        }
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    params.push(self.parse_expr()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut qubits = Vec::new();
        loop {
            let (q, _) = self.expect_ident()?;
            qubits.push(q);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon)?;
        let _ = line;
        Ok(GateBodyStmt::Gate {
            name,
            params,
            qubits,
        })
    }

    fn parse_gate_application(&mut self) -> Result<(), ParseError> {
        let (name, line) = self.expect_ident()?;
        let mut exprs = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    exprs.push(self.parse_expr()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let args = self.parse_argument_list()?;
        self.expect(&TokenKind::Semicolon)?;
        // Arity check against local declarations or qelib1.
        let expected = self
            .program
            .find_gate_decl(&name)
            .map(|d| (d.params.len(), d.qubits.len()))
            .or_else(|| self.qelib.get(name.as_str()).copied());
        let Some((n_params, n_qubits)) = expected else {
            return Err(ParseError::new(format!("unknown gate `{name}`"), line));
        };
        if exprs.len() != n_params {
            return Err(ParseError::new(
                format!(
                    "gate `{name}` expects {n_params} parameter(s), got {}",
                    exprs.len()
                ),
                line,
            ));
        }
        if args.len() != n_qubits {
            return Err(ParseError::new(
                format!(
                    "gate `{name}` expects {n_qubits} qubit(s), got {}",
                    args.len()
                ),
                line,
            ));
        }
        let empty = HashMap::new();
        let params = exprs
            .iter()
            .map(|e| e.eval(&empty))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|m| ParseError::new(m, line))?;
        // Broadcast register arguments.
        let expanded = self.broadcast_many(&args, line)?;
        for qubits in expanded {
            self.program.push(Instruction::Gate {
                name: name.clone(),
                params: params.clone(),
                qubits,
                condition: None,
            });
        }
        Ok(())
    }

    fn push_measure(&mut self, src: &Argument, dst: &Argument) -> Result<(), ParseError> {
        let qs = self.broadcast_one(src)?;
        match dst {
            Argument::Indexed(reg, idx, line) => {
                if qs.len() != 1 {
                    return Err(ParseError::new(
                        "register measured into a single bit",
                        *line,
                    ));
                }
                self.program.push(Instruction::Measure {
                    qubit: qs.into_iter().next().expect("one qubit"),
                    bit: (reg.clone(), *idx),
                });
            }
            Argument::Whole(reg, line) => {
                let size = self
                    .program
                    .cregs()
                    .iter()
                    .find(|(n, _)| n == reg)
                    .map(|(_, s)| *s)
                    .ok_or_else(|| {
                        ParseError::new(format!("unknown classical register `{reg}`"), *line)
                    })?;
                if qs.len() != size {
                    return Err(ParseError::new(
                        format!(
                            "measure broadcast size mismatch: {} qubits into {size} bits",
                            qs.len()
                        ),
                        *line,
                    ));
                }
                for (i, q) in qs.into_iter().enumerate() {
                    self.program.push(Instruction::Measure {
                        qubit: q,
                        bit: (reg.clone(), i),
                    });
                }
            }
        }
        Ok(())
    }

    /// Expands a mixed list of whole-register / indexed arguments into the
    /// per-qubit operand lists, implementing OpenQASM broadcast semantics.
    fn broadcast_many(
        &self,
        args: &[Argument],
        line: usize,
    ) -> Result<Vec<Vec<QubitRef>>, ParseError> {
        // Determine broadcast width: all whole registers must agree.
        let mut width: Option<usize> = None;
        for arg in args {
            if let Argument::Whole(reg, l) = arg {
                let size = self
                    .program
                    .qregs()
                    .iter()
                    .find(|(n, _)| n == reg)
                    .map(|(_, s)| *s)
                    .ok_or_else(|| {
                        ParseError::new(format!("unknown quantum register `{reg}`"), *l)
                    })?;
                match width {
                    None => width = Some(size),
                    Some(w) if w == size => {}
                    Some(w) => {
                        return Err(ParseError::new(
                            format!("broadcast size mismatch: {w} vs {size}"),
                            *l,
                        ))
                    }
                }
            }
        }
        let width = width.unwrap_or(1);
        let mut out = Vec::with_capacity(width);
        for i in 0..width {
            let mut operands = Vec::with_capacity(args.len());
            for arg in args {
                operands.push(match arg {
                    Argument::Indexed(reg, idx, l) => self.check_qubit(reg, *idx, *l)?,
                    Argument::Whole(reg, l) => self.check_qubit(reg, i, *l)?,
                });
            }
            // Reject duplicate operands (e.g. cx q[0], q[0]).
            for a in 0..operands.len() {
                for b in a + 1..operands.len() {
                    if operands[a] == operands[b] {
                        return Err(ParseError::new(
                            format!("duplicate qubit operand {}", operands[a]),
                            line,
                        ));
                    }
                }
            }
            out.push(operands);
        }
        Ok(out)
    }

    fn broadcast_one(&self, arg: &Argument) -> Result<Vec<QubitRef>, ParseError> {
        match arg {
            Argument::Indexed(reg, idx, line) => Ok(vec![self.check_qubit(reg, *idx, *line)?]),
            Argument::Whole(reg, line) => {
                let size = self
                    .program
                    .qregs()
                    .iter()
                    .find(|(n, _)| n == reg)
                    .map(|(_, s)| *s)
                    .ok_or_else(|| {
                        ParseError::new(format!("unknown quantum register `{reg}`"), *line)
                    })?;
                Ok((0..size)
                    .map(|i| QubitRef {
                        reg: reg.clone(),
                        index: i,
                    })
                    .collect())
            }
        }
    }

    fn check_qubit(&self, reg: &str, idx: usize, line: usize) -> Result<QubitRef, ParseError> {
        let size = self
            .program
            .qregs()
            .iter()
            .find(|(n, _)| n == reg)
            .map(|(_, s)| *s)
            .ok_or_else(|| ParseError::new(format!("unknown quantum register `{reg}`"), line))?;
        if idx >= size {
            return Err(ParseError::new(
                format!("index {idx} out of range for `{reg}[{size}]`"),
                line,
            ));
        }
        Ok(QubitRef {
            reg: reg.into(),
            index: idx,
        })
    }

    fn parse_argument_list(&mut self) -> Result<Vec<Argument>, ParseError> {
        let mut args = vec![self.parse_argument()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            args.push(self.parse_argument()?);
        }
        Ok(args)
    }

    fn parse_argument(&mut self) -> Result<Argument, ParseError> {
        let (name, line) = self.expect_ident()?;
        if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let (idx, _) = self.expect_int()?;
            self.expect(&TokenKind::RBracket)?;
            Ok(Argument::Indexed(name, idx as usize, line))
        } else {
            Ok(Argument::Whole(name, line))
        }
    }

    // Expression parsing: precedence climbing.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_additive()
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => '+',
                TokenKind::Minus => '-',
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => '*',
                TokenKind::Slash => '/',
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        let mut base = self.parse_atom()?;
        if self.peek().kind == TokenKind::Caret {
            self.bump();
            let exp = self.parse_unary()?; // right-associative
            base = Expr::Binary {
                op: '^',
                lhs: Box::new(base),
                rhs: Box::new(exp),
            };
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Int(v) => Ok(Expr::Num(v as f64)),
            TokenKind::Real(v) => Ok(Expr::Num(v)),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name == "pi" {
                    return Ok(Expr::Pi);
                }
                if self.peek().kind == TokenKind::LParen
                    && matches!(name.as_str(), "sin" | "cos" | "tan" | "exp" | "ln" | "sqrt")
                {
                    self.bump();
                    let arg = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Call(name, Box::new(arg)));
                }
                Ok(Expr::Var(name))
            }
            other => Err(ParseError::new(
                format!("expected expression, found {other}"),
                t.line,
            )),
        }
    }
}

#[derive(Clone, Debug)]
enum Argument {
    /// `reg[idx]` with the source line.
    Indexed(String, usize, usize),
    /// `reg` with the source line.
    Whole(String, usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse_ok(body: &str) -> Program {
        parse(&format!("{HEADER}{body}")).expect("parses")
    }

    #[test]
    fn parses_registers_and_gates() {
        let p = parse_ok("qreg q[4]; creg c[4]; h q[0]; cx q[0], q[2];");
        assert_eq!(p.qubit_count(), 4);
        assert_eq!(p.instructions().len(), 2);
    }

    #[test]
    fn broadcasts_single_qubit_gate_over_register() {
        let p = parse_ok("qreg q[3]; h q;");
        assert_eq!(p.instructions().len(), 3);
    }

    #[test]
    fn broadcasts_measure() {
        let p = parse_ok("qreg q[2]; creg c[2]; measure q -> c;");
        assert_eq!(p.instructions().len(), 2);
        match &p.instructions()[1] {
            Instruction::Measure { qubit, bit } => {
                assert_eq!(qubit.index, 1);
                assert_eq!(bit.1, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parameter_expressions() {
        let p = parse_ok("qreg q[1]; rz(pi/4) q[0]; u3(0.1, -pi, 2*pi) q[0];");
        match &p.instructions()[0] {
            Instruction::Gate { params, .. } => {
                assert!((params[0] - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.instructions()[1] {
            Instruction::Gate { params, .. } => {
                assert_eq!(params.len(), 3);
                assert!((params[1] + std::f64::consts::PI).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_gate_declaration_and_expands() {
        let p = parse_ok(
            "qreg q[2];\n\
             gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }\n\
             gate entangle(t) a, b { rz(t/2) a; cx a, b; }\n\
             entangle(pi) q[0], q[1];",
        );
        assert_eq!(p.gate_decls().len(), 2);
        let e = p.expanded().unwrap();
        assert_eq!(e.instructions().len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse(&format!("{HEADER}qreg q[1]; bogus q[0];")).unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = parse(&format!("{HEADER}qreg q[2]; cx q[0];")).unwrap_err();
        assert!(err.to_string().contains("expects 2 qubit(s)"));
        let err = parse(&format!("{HEADER}qreg q[1]; rz q[0];")).unwrap_err();
        assert!(err.to_string().contains("parameter"));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let err = parse(&format!("{HEADER}qreg q[2]; h q[2];")).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_duplicate_operands() {
        let err = parse(&format!("{HEADER}qreg q[2]; cx q[1], q[1];")).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn parses_conditionals() {
        let p = parse_ok("qreg q[1]; creg c[1]; if (c == 1) x q[0];");
        match &p.instructions()[0] {
            Instruction::Gate { condition, .. } => {
                assert_eq!(condition, &Some(("c".to_string(), 1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_barrier_and_reset() {
        let p = parse_ok("qreg q[3]; barrier q; reset q[1];");
        assert!(matches!(&p.instructions()[0], Instruction::Barrier(qs) if qs.len() == 3));
        assert!(matches!(&p.instructions()[1], Instruction::Reset(_)));
    }

    #[test]
    fn pairwise_register_broadcast() {
        let p = parse_ok("qreg a[2]; qreg b[2]; cx a, b;");
        assert_eq!(p.instructions().len(), 2);
    }

    #[test]
    fn rejects_mismatched_broadcast() {
        let err = parse(&format!("{HEADER}qreg a[2]; qreg b[3]; cx a, b;")).unwrap_err();
        assert!(err.to_string().contains("broadcast size mismatch"));
    }

    #[test]
    fn rejects_unknown_include() {
        let err = parse("OPENQASM 2.0;\ninclude \"other.inc\";").unwrap_err();
        assert!(err.to_string().contains("cannot resolve include"));
    }
}
