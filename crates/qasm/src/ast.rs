//! Abstract syntax tree for OpenQASM 2.0 programs.

use std::collections::HashMap;
use std::fmt;

/// A reference to a single qubit: register name plus element index.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QubitRef {
    /// Register name.
    pub reg: String,
    /// Element index within the register.
    pub index: usize,
}

impl fmt::Display for QubitRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.reg, self.index)
    }
}

/// A parameter expression (evaluated lazily so user-defined gate bodies can
/// reference formal parameters).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// The constant π.
    Pi,
    /// A named formal parameter.
    Var(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// One of `+ - * / ^`.
        op: char,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Built-in unary function call (`sin`, `cos`, `tan`, `exp`, `ln`,
    /// `sqrt`).
    Call(String, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression in the environment `env` (formal parameter
    /// values). Unknown variables evaluate to an error.
    pub fn eval(&self, env: &HashMap<String, f64>) -> Result<f64, String> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Pi => Ok(std::f64::consts::PI),
            Expr::Var(name) => env
                .get(name)
                .copied()
                .ok_or_else(|| format!("unbound parameter `{name}`")),
            Expr::Neg(e) => Ok(-e.eval(env)?),
            Expr::Binary { op, lhs, rhs } => {
                let (a, b) = (lhs.eval(env)?, rhs.eval(env)?);
                Ok(match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    '/' => a / b,
                    '^' => a.powf(b),
                    other => return Err(format!("unknown operator `{other}`")),
                })
            }
            Expr::Call(name, arg) => {
                let v = arg.eval(env)?;
                Ok(match name.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => return Err(format!("unknown function `{other}`")),
                })
            }
        }
    }
}

/// One statement of a user-defined gate body.
#[derive(Clone, Debug, PartialEq)]
pub enum GateBodyStmt {
    /// Nested gate application over formal qubit names.
    Gate {
        /// Gate name.
        name: String,
        /// Parameter expressions over the formal parameters.
        params: Vec<Expr>,
        /// Formal qubit argument names.
        qubits: Vec<String>,
    },
    /// `barrier` over formal qubit names.
    Barrier(Vec<String>),
}

/// A user-defined (or `opaque`) gate declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct GateDecl {
    /// Gate name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Formal qubit argument names.
    pub qubits: Vec<String>,
    /// Body statements (`None` for `opaque` declarations).
    pub body: Option<Vec<GateBodyStmt>>,
}

/// A fully resolved program instruction (registers broadcast and indices
/// flattened happen at the [`Program`] level; instructions keep symbolic
/// register references).
#[derive(Clone, Debug, PartialEq)]
pub enum Instruction {
    /// A gate application.
    Gate {
        /// Gate name.
        name: String,
        /// Evaluated parameter values.
        params: Vec<f64>,
        /// Qubit operands.
        qubits: Vec<QubitRef>,
        /// Classical condition `if (creg == value)`, when present.
        condition: Option<(String, u64)>,
    },
    /// `measure qubit -> bit;`
    Measure {
        /// Measured qubit.
        qubit: QubitRef,
        /// Target classical bit (register, index).
        bit: (String, usize),
    },
    /// `barrier q, ...;`
    Barrier(Vec<QubitRef>),
    /// `reset q;`
    Reset(QubitRef),
}

impl Instruction {
    /// The qubit operands of the instruction.
    pub fn qubits(&self) -> Vec<&QubitRef> {
        match self {
            Instruction::Gate { qubits, .. } => qubits.iter().collect(),
            Instruction::Measure { qubit, .. } => vec![qubit],
            Instruction::Barrier(qs) => qs.iter().collect(),
            Instruction::Reset(q) => vec![q],
        }
    }
}

/// A parsed OpenQASM 2.0 program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    qregs: Vec<(String, usize)>,
    cregs: Vec<(String, usize)>,
    gate_decls: Vec<GateDecl>,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declares a quantum register.
    pub fn add_qreg(&mut self, name: impl Into<String>, size: usize) {
        self.qregs.push((name.into(), size));
    }

    /// Declares a classical register.
    pub fn add_creg(&mut self, name: impl Into<String>, size: usize) {
        self.cregs.push((name.into(), size));
    }

    /// Records a gate declaration.
    pub fn add_gate_decl(&mut self, decl: GateDecl) {
        self.gate_decls.push(decl);
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) {
        self.instructions.push(instr);
    }

    /// Quantum registers in declaration order.
    pub fn qregs(&self) -> &[(String, usize)] {
        &self.qregs
    }

    /// Classical registers in declaration order.
    pub fn cregs(&self) -> &[(String, usize)] {
        &self.cregs
    }

    /// User-defined gate declarations.
    pub fn gate_decls(&self) -> &[GateDecl] {
        &self.gate_decls
    }

    /// Program instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Mutable access to one instruction (used by the parser to attach
    /// classical conditions after the fact).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn instruction_mut(&mut self, i: usize) -> &mut Instruction {
        &mut self.instructions[i]
    }

    /// Total number of qubits across all quantum registers.
    pub fn qubit_count(&self) -> usize {
        self.qregs.iter().map(|(_, n)| n).sum()
    }

    /// Flattens a qubit reference to a global index (registers are laid out
    /// in declaration order). `None` when the reference is out of range.
    pub fn flatten(&self, q: &QubitRef) -> Option<usize> {
        let mut base = 0;
        for (name, size) in &self.qregs {
            if *name == q.reg {
                return (q.index < *size).then_some(base + q.index);
            }
            base += size;
        }
        None
    }

    /// Looks up a user-defined gate declaration by name.
    pub fn find_gate_decl(&self, name: &str) -> Option<&GateDecl> {
        self.gate_decls.iter().find(|g| g.name == name)
    }

    /// Returns a program with every user-defined gate application expanded
    /// recursively into primitive applications.
    ///
    /// Gates without a body (opaque or primitives from `qelib1.inc`) are
    /// kept as-is. `barrier`s inside gate bodies expand over the actual
    /// qubit operands.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound formal names or when the expansion
    /// exceeds a nesting depth of 64 (cyclic definitions).
    pub fn expanded(&self) -> Result<Program, String> {
        let mut out = Program {
            qregs: self.qregs.clone(),
            cregs: self.cregs.clone(),
            gate_decls: self.gate_decls.clone(),
            instructions: Vec::new(),
        };
        for instr in &self.instructions {
            self.expand_into(instr, &mut out.instructions, 0)?;
        }
        Ok(out)
    }

    fn expand_into(
        &self,
        instr: &Instruction,
        out: &mut Vec<Instruction>,
        depth: usize,
    ) -> Result<(), String> {
        if depth > 64 {
            return Err("gate expansion exceeds depth 64 (cyclic definition?)".into());
        }
        let Instruction::Gate {
            name,
            params,
            qubits,
            condition,
        } = instr
        else {
            out.push(instr.clone());
            return Ok(());
        };
        let Some(decl) = self.find_gate_decl(name) else {
            out.push(instr.clone());
            return Ok(());
        };
        let Some(body) = &decl.body else {
            out.push(instr.clone());
            return Ok(());
        };
        if decl.params.len() != params.len() || decl.qubits.len() != qubits.len() {
            return Err(format!(
                "gate `{name}` applied with {}/{} params/qubits, declared {}/{}",
                params.len(),
                qubits.len(),
                decl.params.len(),
                decl.qubits.len()
            ));
        }
        let env: HashMap<String, f64> = decl
            .params
            .iter()
            .cloned()
            .zip(params.iter().copied())
            .collect();
        let qmap: HashMap<&str, &QubitRef> = decl
            .qubits
            .iter()
            .map(String::as_str)
            .zip(qubits.iter())
            .collect();
        for stmt in body {
            match stmt {
                GateBodyStmt::Gate {
                    name: inner,
                    params: ps,
                    qubits: qs,
                } => {
                    let params = ps
                        .iter()
                        .map(|e| e.eval(&env))
                        .collect::<Result<Vec<_>, _>>()?;
                    let qubits = qs
                        .iter()
                        .map(|q| {
                            qmap.get(q.as_str())
                                .copied()
                                .cloned()
                                .ok_or_else(|| format!("unbound qubit `{q}` in gate `{name}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let nested = Instruction::Gate {
                        name: inner.clone(),
                        params,
                        qubits,
                        condition: condition.clone(),
                    };
                    self.expand_into(&nested, out, depth + 1)?;
                }
                GateBodyStmt::Barrier(qs) => {
                    let qubits = qs
                        .iter()
                        .map(|q| {
                            qmap.get(q.as_str())
                                .copied()
                                .cloned()
                                .ok_or_else(|| format!("unbound qubit `{q}` in gate `{name}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    out.push(Instruction::Barrier(qubits));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(reg: &str, index: usize) -> QubitRef {
        QubitRef {
            reg: reg.into(),
            index,
        }
    }

    #[test]
    fn flatten_respects_declaration_order() {
        let mut p = Program::new();
        p.add_qreg("a", 3);
        p.add_qreg("b", 2);
        assert_eq!(p.flatten(&q("a", 0)), Some(0));
        assert_eq!(p.flatten(&q("a", 2)), Some(2));
        assert_eq!(p.flatten(&q("b", 0)), Some(3));
        assert_eq!(p.flatten(&q("b", 2)), None);
        assert_eq!(p.flatten(&q("c", 0)), None);
        assert_eq!(p.qubit_count(), 5);
    }

    #[test]
    fn expr_eval() {
        let env: HashMap<String, f64> = [("theta".to_string(), 2.0)].into();
        // -theta * pi / 4 + sin(0)
        let e = Expr::Binary {
            op: '+',
            lhs: Box::new(Expr::Binary {
                op: '/',
                lhs: Box::new(Expr::Binary {
                    op: '*',
                    lhs: Box::new(Expr::Neg(Box::new(Expr::Var("theta".into())))),
                    rhs: Box::new(Expr::Pi),
                }),
                rhs: Box::new(Expr::Num(4.0)),
            }),
            rhs: Box::new(Expr::Call("sin".into(), Box::new(Expr::Num(0.0)))),
        };
        let v = e.eval(&env).unwrap();
        assert!((v + std::f64::consts::PI / 2.0).abs() < 1e-12);
        assert!(Expr::Var("missing".into()).eval(&env).is_err());
    }

    #[test]
    fn expansion_substitutes_params_and_qubits() {
        let mut p = Program::new();
        p.add_qreg("q", 2);
        p.add_gate_decl(GateDecl {
            name: "mygate".into(),
            params: vec!["t".into()],
            qubits: vec!["a".into(), "b".into()],
            body: Some(vec![
                GateBodyStmt::Gate {
                    name: "rz".into(),
                    params: vec![Expr::Binary {
                        op: '*',
                        lhs: Box::new(Expr::Var("t".into())),
                        rhs: Box::new(Expr::Num(2.0)),
                    }],
                    qubits: vec!["a".into()],
                },
                GateBodyStmt::Gate {
                    name: "cx".into(),
                    params: vec![],
                    qubits: vec!["a".into(), "b".into()],
                },
            ]),
        });
        p.push(Instruction::Gate {
            name: "mygate".into(),
            params: vec![0.5],
            qubits: vec![q("q", 1), q("q", 0)],
            condition: None,
        });
        let e = p.expanded().unwrap();
        assert_eq!(e.instructions().len(), 2);
        match &e.instructions()[0] {
            Instruction::Gate {
                name,
                params,
                qubits,
                ..
            } => {
                assert_eq!(name, "rz");
                assert_eq!(params, &vec![1.0]);
                assert_eq!(qubits, &vec![q("q", 1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &e.instructions()[1] {
            Instruction::Gate { name, qubits, .. } => {
                assert_eq!(name, "cx");
                assert_eq!(qubits, &vec![q("q", 1), q("q", 0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expansion_detects_cycles() {
        let mut p = Program::new();
        p.add_qreg("q", 1);
        p.add_gate_decl(GateDecl {
            name: "loop".into(),
            params: vec![],
            qubits: vec!["a".into()],
            body: Some(vec![GateBodyStmt::Gate {
                name: "loop".into(),
                params: vec![],
                qubits: vec!["a".into()],
            }]),
        });
        p.push(Instruction::Gate {
            name: "loop".into(),
            params: vec![],
            qubits: vec![q("q", 0)],
            condition: None,
        });
        assert!(p.expanded().is_err());
    }
}
