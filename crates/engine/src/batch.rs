//! Typed mapping batches: rosters of (circuit × device × mapper) jobs,
//! verified execution, and the JSON trajectory report.

use crate::pool::BatchEngine;
use circuit::{verify_routing, Circuit};
use qlosure::{Mapper, MappingResult};
use std::sync::Arc;
use std::time::Instant;
use topology::CouplingGraph;

/// One mapping job of a batch roster.
///
/// Circuits, devices and mappers are `Arc`-shared so a roster that maps
/// many circuits onto the same device (or one circuit onto many devices)
/// carries no duplicated data — the device's adjacency/neighbor tables are
/// one allocation, and its distance matrix is resolved once through
/// [`CouplingGraph::shared_distances`].
#[derive(Clone)]
pub struct MapJob {
    /// Human-readable label carried into reports (e.g. `"queko54-d100-s0"`).
    pub label: String,
    /// The logical circuit to route.
    pub circuit: Arc<Circuit>,
    /// The target device.
    pub device: Arc<CouplingGraph>,
    /// The mapper to run.
    pub mapper: Arc<dyn Mapper + Send + Sync>,
}

/// The verified outcome of one [`MapJob`].
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Deterministic job ID: the index in the submitted roster.
    pub id: usize,
    /// The job's label.
    pub label: String,
    /// Mapper name.
    pub mapper: String,
    /// Device name.
    pub device: String,
    /// SWAPs inserted.
    pub swaps: usize,
    /// Routed depth (unit-gate model).
    pub depth: usize,
    /// Wall-clock mapping time of this job (timing field).
    pub seconds: f64,
    /// Time the job spent waiting between batch enqueue and worker pickup
    /// (timing field).
    pub queue_seconds: f64,
    /// The pass composition the job ran (`"weights → identity → qlosure"`;
    /// empty for opaque, non-pipeline mappers).
    pub pipeline: String,
    /// Per-pass wall-clock timings (`stage:name`, seconds) in execution
    /// order; empty for opaque mappers.
    pub passes: Vec<(String, f64)>,
    /// The full mapping result.
    pub result: MappingResult,
}

/// A completed batch: per-job reports in roster order plus wall-clock
/// totals for the parallel-trajectory record. (Serialization to the
/// `BENCH_*.json` artifacts lives in the bench harness —
/// `bench_support::report` — which owns the one JSON format.)
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Worker count the batch ran with.
    pub threads: usize,
    /// End-to-end wall-clock of the batch (timing field).
    pub wall_seconds: f64,
    /// Per-job reports, ordered by [`JobReport::id`].
    pub jobs: Vec<JobReport>,
}

impl BatchReport {
    /// Total per-job compute time — the sequential-equivalent cost.
    pub fn cpu_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.seconds).sum()
    }

    /// Observed speedup: sequential-equivalent time over batch wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cpu_seconds() / self.wall_seconds
        } else {
            1.0
        }
    }
}

impl BatchEngine {
    /// Executes a mapping roster: every job is routed, **verified** (a
    /// routing that fails [`circuit::verify_routing`] is a mapper bug and
    /// panics — never an acceptable data point), timed, and reported in
    /// roster order.
    ///
    /// Per-device distance matrices warm through the shared topology
    /// cache on first use: when several workers hit the same cold device,
    /// one runs the all-pairs BFS and the rest share its result, so the
    /// batch never duplicates that work and `wall_seconds` covers the
    /// true end-to-end cost, warm-up included.
    pub fn run_jobs(&self, jobs: Vec<MapJob>) -> BatchReport {
        let start = Instant::now();
        let ids: Vec<usize> = (0..jobs.len()).collect();
        let jobs_ref = &jobs;
        let reports = self.execute(ids, |&id| {
            let job = &jobs_ref[id];
            // Jobs are all enqueued when the batch starts, so pickup time
            // relative to `start` is the queueing delay.
            let queue_seconds = start.elapsed().as_secs_f64();
            let t0 = Instant::now();
            // Pipeline-based mappers run through their pass composition so
            // the report carries per-pass timings; the result is identical
            // to `Mapper::map` (the map adapter is the same pipeline).
            let timed = qlosure::run_mapper_timed(job.mapper.as_ref(), &job.circuit, &job.device);
            let (result, pipeline, passes) = (timed.result, timed.pipeline, timed.passes);
            let seconds = t0.elapsed().as_secs_f64();
            verify_routing(
                &job.circuit,
                &result.routed,
                &|a, b| job.device.is_adjacent(a, b),
                &result.initial_layout,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "{} produced invalid routing on {}: {e}",
                    job.mapper.name(),
                    job.label
                )
            });
            JobReport {
                id,
                label: job.label.clone(),
                mapper: job.mapper.name().to_string(),
                device: job.device.name().to_string(),
                swaps: result.swaps,
                depth: result.routed.depth(),
                seconds,
                queue_seconds,
                pipeline,
                passes,
                result,
            }
        });
        BatchReport {
            threads: self.threads(),
            wall_seconds: start.elapsed().as_secs_f64(),
            jobs: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlosure::QlosureMapper;
    use topology::backends;

    fn roster(n: usize) -> Vec<MapJob> {
        let device = Arc::new(backends::king_grid(4, 4));
        let mapper: Arc<dyn Mapper + Send + Sync> = Arc::new(QlosureMapper::default());
        (0..n)
            .map(|i| {
                let mut c = Circuit::new(16);
                let mut s = i as u64 + 1;
                for _ in 0..30 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = ((s >> 33) % 16) as u32;
                    let b = ((s >> 13) % 16) as u32;
                    if a != b {
                        c.cx(a, b);
                    }
                }
                MapJob {
                    label: format!("rand-{i}"),
                    circuit: Arc::new(c),
                    device: device.clone(),
                    mapper: mapper.clone(),
                }
            })
            .collect()
    }

    #[test]
    fn run_jobs_verifies_orders_and_times() {
        let report = BatchEngine::with_threads(2).run_jobs(roster(6));
        assert_eq!(report.jobs.len(), 6);
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.id, i);
            assert_eq!(j.label, format!("rand-{i}"));
            assert!(j.seconds >= 0.0);
            assert!(j.queue_seconds >= 0.0);
            assert_eq!(j.depth, j.result.routed.depth());
            // Qlosure is pipeline-based: the report carries the pass
            // composition and one timing entry per pass.
            assert_eq!(j.pipeline, "weights → identity → qlosure");
            let labels: Vec<&str> = j.passes.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(
                labels,
                vec!["analysis:weights", "layout:identity", "routing:qlosure"]
            );
            assert!(j.passes.iter().all(|&(_, s)| s >= 0.0));
        }
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn thread_count_does_not_change_mapping_results() {
        let one = BatchEngine::with_threads(1).run_jobs(roster(5));
        let four = BatchEngine::with_threads(4).run_jobs(roster(5));
        for (a, b) in one.jobs.iter().zip(&four.jobs) {
            assert_eq!(a.result, b.result, "job {} diverged", a.label);
            assert_eq!(a.swaps, b.swaps);
        }
    }

    #[test]
    fn speedup_is_cpu_over_wall() {
        let report = BatchReport {
            threads: 4,
            wall_seconds: 0.5,
            jobs: Vec::new(),
        };
        assert_eq!(report.cpu_seconds(), 0.0);
        assert_eq!(report.speedup(), 0.0);
        let degenerate = BatchReport {
            threads: 1,
            wall_seconds: 0.0,
            jobs: Vec::new(),
        };
        assert_eq!(degenerate.speedup(), 1.0);
    }
}
