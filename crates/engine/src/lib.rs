//! # Parallel batch-mapping engine
//!
//! The paper's pitch is *scalable* dependence-driven mapping; this crate is
//! the throughput layer that makes the harness live up to it. A
//! [`BatchEngine`] takes a roster of mapping jobs (circuit × device ×
//! mapper) and executes them on a hand-rolled work-stealing thread pool —
//! no external crates, just `std::thread` + sharded `Mutex<VecDeque>`
//! queues — while the per-device caches in [`topology`] (shared all-pairs
//! distance matrices) and `presburger` (memoized transitive closures) keep
//! redundant work out of the hot path.
//!
//! ## Determinism contract
//!
//! Every job carries a deterministic ID (its index in the submitted
//! roster), results are returned **in roster order regardless of thread
//! count or completion order**, and each job's computation is a pure
//! function of its inputs (all mappers seed their own RNGs). Consequently:
//!
//! * `ENGINE_THREADS=1` reproduces today's sequential results bit-for-bit
//!   (jobs run in roster order on the caller's thread, no pool);
//! * for any thread count, the outputs are *identical* to the 1-thread run
//!   — parallelism changes wall-clock time and nothing else. The
//!   differential suite (`tests/differential.rs`) enforces this.
//!
//! ## Thread-count knob
//!
//! [`BatchEngine::from_env`] reads the `ENGINE_THREADS` environment
//! variable (falling back to [`std::thread::available_parallelism`]);
//! [`BatchEngine::with_threads`] pins it programmatically.
//!
//! ```
//! use engine::BatchEngine;
//!
//! let engine = BatchEngine::with_threads(4);
//! let squares = engine.execute((0u64..32).collect(), |&x| x * x);
//! assert_eq!(squares[7], 49); // roster order, whatever the thread count
//! ```
//!
//! ## Streaming intake
//!
//! Long-lived consumers (the `qlosure-service` daemon) that receive jobs
//! one at a time use [`BatchEngine::stream`] instead of
//! [`BatchEngine::execute`]: a persistent [`StreamEngine`] with a bounded
//! intake queue, non-blocking submission, cancellation of queued jobs,
//! and graceful drain-on-shutdown semantics (see the [`stream`](StreamEngine)
//! docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod pool;
mod stream;

pub use batch::{BatchReport, JobReport, MapJob};
pub use pool::BatchEngine;
pub use stream::{StreamEngine, SubmitError};
