//! The work-stealing job pool.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A parallel batch executor over a fixed worker count.
///
/// See the [crate docs](crate) for the determinism contract. The pool is
/// created per [`BatchEngine::execute`] call (jobs are known up front, so
/// there is no long-lived pool to manage): jobs are sharded round-robin
/// over per-worker deques, each worker drains its own deque front-to-back
/// and, when empty, steals from the *back* of its neighbours' deques —
/// stealing the jobs the owner would reach last minimizes contention on
/// the deque locks.
#[derive(Clone, Copy, Debug)]
pub struct BatchEngine {
    threads: usize,
}

impl BatchEngine {
    /// An engine sized by the `ENGINE_THREADS` environment variable,
    /// falling back to [`std::thread::available_parallelism`].
    ///
    /// Unparseable or zero values emit a one-line stderr warning and fall
    /// back to the default; there is no panic path, so harnesses can
    /// always start.
    pub fn from_env() -> BatchEngine {
        let raw = std::env::var("ENGINE_THREADS").ok();
        let (from_env, warning) = parse_engine_threads(raw.as_deref());
        if let Some(warning) = warning {
            eprintln!("{warning}");
            obs::event(
                obs::Level::Warn,
                "engine",
                &warning,
                &[("var", "ENGINE_THREADS")],
            );
        }
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        BatchEngine { threads }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> BatchEngine {
        BatchEngine {
            threads: threads.max(1),
        }
    }

    /// The worker count this engine runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job and returns the results **in roster
    /// order**, regardless of thread count or completion order.
    ///
    /// With one thread the jobs run sequentially on the caller's thread in
    /// roster order — bit-for-bit the pre-engine sequential behavior, with
    /// no pool machinery in the way.
    ///
    /// # Panics
    ///
    /// If `f` panics on any job the batch panics (a worker's panic is
    /// propagated when its thread is joined at scope exit).
    pub fn execute<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return jobs.iter().map(f).collect();
        }
        // Deterministic job IDs: index in the roster. Shard round-robin so
        // every worker starts with a contiguous-by-stride slice.
        let shards: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let slots: Vec<Mutex<&mut Option<R>>> = results.iter_mut().map(Mutex::new).collect();
        let (jobs_ref, f_ref, shards_ref, slots_ref) = (&jobs, &f, &shards, &slots);
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || loop {
                    let job_id = pop_own(shards_ref, w).or_else(|| steal(shards_ref, w));
                    let Some(id) = job_id else { return };
                    let r = f_ref(&jobs_ref[id]);
                    **slots_ref[id].lock().expect("result slot") = Some(r);
                });
            }
        });
        drop(slots);
        results
            .into_iter()
            .map(|r| r.expect("every job ran exactly once"))
            .collect()
    }
}

/// The testable core of the `ENGINE_THREADS` parsing: returns the parsed
/// worker count (when valid) and the warning line to print (when the
/// variable is set but invalid — `0` or unparseable). An unset variable
/// yields `(None, None)`: silent default.
fn parse_engine_threads(raw: Option<&str>) -> (Option<usize>, Option<String>) {
    match raw {
        None => (None, None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => (Some(n), None),
            _ => (
                None,
                Some(format!(
                    "warning: ignoring invalid ENGINE_THREADS={v:?} \
                     (expected a positive integer); using all cores"
                )),
            ),
        },
    }
}

/// Pops the next job of worker `w`'s own shard.
fn pop_own(shards: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    shards[w].lock().expect("shard lock").pop_front()
}

/// Steals a job from the back of another worker's shard.
///
/// All jobs are seeded before any worker starts and nothing enqueues new
/// ones, so "every shard observed empty" is a stable termination signal.
fn steal(shards: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    let n = shards.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(id) = shards[victim].lock().expect("shard lock").pop_back() {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_roster_order() {
        for threads in [1, 2, 4, 8] {
            let engine = BatchEngine::with_threads(threads);
            let out = engine.execute((0u64..100).collect(), |&x| x * 3);
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let engine = BatchEngine::with_threads(8);
        let out = engine.execute((0..257).collect::<Vec<i32>>(), |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        // A job whose output depends only on its input, as the contract
        // requires: identical results at every worker count.
        let jobs: Vec<u64> = (0..64).collect();
        let reference = BatchEngine::with_threads(1).execute(jobs.clone(), |&x| {
            x.wrapping_mul(6364136223846793005).wrapping_add(1)
        });
        for threads in [2, 3, 4, 16] {
            let out = BatchEngine::with_threads(threads).execute(jobs.clone(), |&x| {
                x.wrapping_mul(6364136223846793005).wrapping_add(1)
            });
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn imbalanced_jobs_are_stolen() {
        // One shard gets all the heavy jobs; with stealing the batch still
        // completes and returns ordered results.
        let engine = BatchEngine::with_threads(4);
        let out = engine.execute((0usize..40).collect(), |&i| {
            if i % 4 == 0 {
                // Busy-ish work concentrated on shard 0.
                (0..20_000u64).fold(i as u64, |a, x| a.wrapping_add(x * x))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 40);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn empty_and_tiny_rosters_work() {
        let engine = BatchEngine::with_threads(4);
        let empty: Vec<u8> = engine.execute(Vec::new(), |&x: &u8| x);
        assert!(empty.is_empty());
        assert_eq!(engine.execute(vec![9u8], |&x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let engine = BatchEngine::with_threads(64);
        assert_eq!(engine.execute(vec![1, 2, 3], |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(BatchEngine::with_threads(0).threads(), 1);
    }

    #[test]
    fn engine_threads_parsing_warns_on_invalid_never_panics() {
        // Unset: silent default.
        assert_eq!(parse_engine_threads(None), (None, None));
        // Valid values parse without a warning.
        assert_eq!(parse_engine_threads(Some("1")), (Some(1), None));
        assert_eq!(parse_engine_threads(Some("16")), (Some(16), None));
        // Zero and garbage fall back with a one-line warning.
        for bad in ["0", "abc", "-3", "4.5", ""] {
            let (threads, warning) = parse_engine_threads(Some(bad));
            assert_eq!(threads, None, "ENGINE_THREADS={bad:?} must not parse");
            let warning = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(warning.contains("ENGINE_THREADS"), "got: {warning}");
            assert!(warning.contains(bad), "warning names the value: {warning}");
            assert!(!warning.contains('\n'), "one line only: {warning}");
        }
    }
}
